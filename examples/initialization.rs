//! Use case 3 (paper §8, Table 6): initialize the optimizer from the
//! minimum of the interpolated reconstructed landscape.
//!
//! ```sh
//! cargo run --release --example initialization
//! ```

use oscar::core::prelude::*;
use oscar::optim::prelude::*;
use oscar::problems::ising::IsingProblem;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let problem = IsingProblem::random_3_regular(16, &mut rng);
    let eval = problem.qaoa_evaluator();

    let grid = Grid2d::small_p1(30, 40);
    let truth = Landscape::from_qaoa(grid, &eval);
    let report = Reconstructor::default().reconstruct_fraction(&truth, 0.12, &mut rng);
    println!(
        "reconstruction: {} circuit queries, NRMSE {:.4}",
        report.samples_used, report.nrmse
    );

    let mut run = |name: &str, optimizer: &dyn Optimizer| {
        let mut circuit_obj = |p: &[f64]| eval.expectation(&[p[0]], &[p[1]]);
        let random_init = [rng.gen_range(-0.7..0.7), rng.gen_range(-1.5..1.5)];
        let cmp = compare_initialization(
            optimizer,
            &report.landscape,
            report.samples_used,
            &mut circuit_obj,
            random_init,
        );
        println!("\n{name}:");
        println!(
            "  random init ({:+.2}, {:+.2}): {} queries -> {:.4}",
            random_init[0], random_init[1], cmp.random_queries, cmp.random_fx
        );
        println!(
            "  OSCAR init  ({:+.2}, {:+.2}): {} queries -> {:.4}  (+{} recon queries = {})",
            cmp.suggested_init[0],
            cmp.suggested_init[1],
            cmp.oscar_queries,
            cmp.oscar_fx,
            cmp.reconstruction_queries,
            cmp.oscar_total_queries()
        );
        (cmp.random_queries, cmp.oscar_total_queries())
    };

    let adam = Adam {
        max_iter: 500,
        grad_tol: 1e-3,
        ..Adam::default()
    };
    let (adam_rand, adam_oscar) = run("ADAM", &adam);
    let cobyla = Cobyla::default();
    let (_cob_rand, _cob_oscar) = run("COBYLA", &cobyla);

    println!("\nTable 6's pattern: OSCAR init pays off for query-hungry optimizers");
    println!("(ADAM: {adam_rand} vs {adam_oscar} total queries), while for frugal");
    println!("optimizers like COBYLA the reconstruction overhead can dominate —");
    println!("but those reconstruction queries parallelize across QPUs.");
}
