//! VQE workload (paper Tables 2–4): reconstruct energy landscapes of the
//! H2 molecule under the UCCSD ansatz, and verify the reconstruction's
//! minimum tracks the true ground-state energy.
//!
//! ```sh
//! cargo run --release --example vqe_molecules
//! ```

use oscar::core::prelude::*;
use oscar::cs::prelude::*;
use oscar::problems::ansatz::Ansatz;
use oscar::problems::molecules::{ground_state_energy, h2_hamiltonian};
use rand::SeedableRng;

fn main() {
    let h = h2_hamiltonian();
    let gs = ground_state_energy(&h);
    println!("H2 (2-qubit parity mapping): exact ground energy {gs:.6} Ha");

    // A 2-D slice of the 3-parameter UCCSD landscape: vary the two
    // single-excitation parameters, fix the double at 0.
    let ansatz = Ansatz::uccsd_h2();
    let axis = Axis::new(-std::f64::consts::PI, std::f64::consts::PI, 40);
    let grid = Grid2d::new(axis, axis);
    let truth = Landscape::generate(grid, |a, b| ansatz.expectation(&[a, b, 0.0], &h));
    println!(
        "energy slice over (theta_1, theta_2): min {:.6}, max {:.6}",
        truth.min(),
        truth.max()
    );

    // Frequency-domain sparsity (Table 4's evidence).
    let frac = dct_energy_fraction_99(truth.values(), grid.rows(), grid.cols());
    println!(
        "DCT coefficients needed for 99% of the energy: {:.3}% of {}",
        frac * 100.0,
        grid.len()
    );

    // OSCAR reconstruction from 12% of the slice.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let report = Reconstructor::default().reconstruct_fraction(&truth, 0.12, &mut rng);
    println!(
        "reconstruction from {} samples: NRMSE {:.4}",
        report.samples_used, report.nrmse
    );

    let (true_min, (t1, t2)) = truth.argmin();
    // DCT-basis reconstructions can ring at the grid border; search the
    // interior for the minimum (one-cell trim), as one would in practice.
    let recon = &report.landscape;
    let mut recon_min = f64::INFINITY;
    let (mut r1, mut r2) = (0.0, 0.0);
    for row in 1..grid.rows() - 1 {
        for col in 1..grid.cols() - 1 {
            if recon.at(row, col) < recon_min {
                recon_min = recon.at(row, col);
                r1 = grid.beta.value(row);
                r2 = grid.gamma.value(col);
            }
        }
    }
    println!("true slice minimum  {true_min:.6} at ({t1:+.3}, {t2:+.3})");
    println!("recon slice minimum {recon_min:.6} at ({r1:+.3}, {r2:+.3})");

    // The reconstructed minimum location evaluates (on the true energy
    // function) close to the true slice minimum.
    let at_recon = ansatz.expectation(&[r1, r2, 0.0], &h);
    println!("true energy at reconstructed minimum: {at_recon:.6}");
    assert!(
        (at_recon - true_min).abs() < 0.05,
        "reconstructed minimum should locate a near-optimal point"
    );
    assert!(report.nrmse < 0.1, "reconstruction should be accurate");
    println!("ok");
}
