//! Quickstart: reconstruct a QAOA MaxCut landscape from 15% of its points.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use oscar::core::prelude::*;
use oscar::problems::ising::IsingProblem;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // 1. A 12-qubit MaxCut problem on a random 3-regular graph.
    let problem = IsingProblem::random_3_regular(12, &mut rng);
    println!(
        "problem: MaxCut, {} qubits, {} edges, optimum {}",
        problem.num_qubits(),
        problem.graph().num_edges(),
        problem.optimal_cost()
    );

    // 2. Ground truth by dense grid search (what OSCAR avoids): the
    //    paper's p=1 grid has 5,000 points; we use a 40x60 grid here.
    let grid = Grid2d::small_p1(40, 60);
    let eval = problem.qaoa_evaluator();
    let truth = Landscape::from_qaoa(grid, &eval);
    println!("grid search: {} circuit evaluations", grid.len());

    // 3. OSCAR: sample 15% of the points at random and reconstruct.
    let oscar = Reconstructor::default();
    let report = oscar.reconstruct_fraction(&truth, 0.15, &mut rng);
    println!(
        "OSCAR: {} samples ({:.0}% of grid), NRMSE = {:.4}, speedup = {:.1}x",
        report.samples_used,
        100.0 * report.samples_used as f64 / grid.len() as f64,
        report.nrmse,
        grid.len() as f64 / report.samples_used as f64
    );

    // 4. The reconstructed minimum is close to the true one.
    let (true_min, (tb, tg)) = truth.argmin();
    let (recon_min, (rb, rg)) = report.landscape.argmin();
    println!("true minimum    {true_min:.4} at (beta, gamma) = ({tb:.3}, {tg:.3})");
    println!("recon minimum   {recon_min:.4} at (beta, gamma) = ({rb:.3}, {rg:.3})");

    assert!(report.nrmse < 0.1, "reconstruction should be accurate");
    println!("ok");
}
