//! Use case 2 (paper §7): test optimizer configurations on the
//! interpolated reconstructed landscape — optimizer queries become spline
//! evaluations instead of circuit batches.
//!
//! ```sh
//! cargo run --release --example optimizer_debugging
//! ```

use oscar::core::prelude::*;
use oscar::optim::prelude::*;
use oscar::problems::ising::IsingProblem;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let problem = IsingProblem::random_3_regular(14, &mut rng);
    let eval = problem.qaoa_evaluator();

    // Ground truth (for validation) and an OSCAR reconstruction from 15%.
    let grid = Grid2d::small_p1(30, 40);
    let truth = Landscape::from_qaoa(grid, &eval);
    let report = Reconstructor::default().reconstruct_fraction(&truth, 0.15, &mut rng);
    println!(
        "reconstruction: {} samples, NRMSE {:.4}",
        report.samples_used, report.nrmse
    );

    // Real circuit objective: every query executes the QAOA circuit.
    let mut circuit_queries = 0usize;
    let mut circuit_obj = |p: &[f64]| {
        circuit_queries += 1;
        eval.expectation(&[p[0]], &[p[1]])
    };

    // Compare ADAM on the interpolated reconstruction vs real execution.
    let adam = Adam {
        max_iter: 200,
        ..Adam::default()
    };
    let x0 = [0.12, 0.45];
    let cmp = compare_paths(&adam, &report.landscape, &mut circuit_obj, x0);
    println!("\nADAM from ({:.2}, {:.2}):", x0[0], x0[1]);
    println!(
        "  on reconstruction: endpoint ({:+.3}, {:+.3}), value {:.4}, {} spline queries",
        cmp.on_reconstruction.x[0],
        cmp.on_reconstruction.x[1],
        cmp.on_reconstruction.fx,
        cmp.on_reconstruction.queries
    );
    println!(
        "  on circuit:        endpoint ({:+.3}, {:+.3}), value {:.4}, {} circuit queries",
        cmp.on_circuit.x[0], cmp.on_circuit.x[1], cmp.on_circuit.fx, cmp.on_circuit.queries
    );
    println!("  endpoint distance: {:.4}", cmp.endpoint_distance);

    // Optimizer selection on the reconstruction only (Figure 13): try
    // ADAM vs COBYLA without touching the QPU again.
    let cobyla = Cobyla::default();
    let adam_run = optimize_on_reconstruction(&adam, &report.landscape, x0);
    let cobyla_run = optimize_on_reconstruction(&cobyla, &report.landscape, x0);
    println!("\noptimizer selection on the reconstruction:");
    println!(
        "  ADAM:   final {:.4} after {} queries",
        adam_run.fx, adam_run.queries
    );
    println!(
        "  COBYLA: final {:.4} after {} queries",
        cobyla_run.fx, cobyla_run.queries
    );

    assert!(cmp.endpoint_distance < 0.5, "paths should agree");
    println!("\nok: optimizer behaviour on the reconstruction predicts real behaviour.");
}
