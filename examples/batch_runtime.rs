//! Batch runtime in ~60 lines: submit a sweep of reconstruction jobs —
//! exact, noisy-device, and ZNE-mitigated variants with different
//! stage-3 optimizers — collect handles out of order, cancel a job,
//! and watch the landscape cache dedupe repeated instances (including
//! ZNE's per-factor sub-landscapes, shared with the raw noisy jobs).
//!
//! Run with: `cargo run --release --example batch_runtime`
//! (try `OSCAR_THREADS=4` to size the worker pool explicitly).

use oscar::core::grid::Grid2d;
use oscar::executor::device::DeviceSpec;
use oscar::problems::ising::IsingProblem;
use oscar::runtime::descent::Descent;
use oscar::runtime::job::JobSpec;
use oscar::runtime::mitigation::Mitigation;
use oscar::runtime::scheduler::{BatchRuntime, Priority, RuntimeConfig};
use oscar::runtime::source::LandscapeSource;
use rand::SeedableRng;

fn main() {
    // Two MaxCut instances; each is reconstructed under four sampling
    // seeds — a typical "how stable is my reconstruction?" sweep. Half
    // the jobs run against exact landscapes, half against a noisy
    // simulated IBM Perth whose per-point noise is counter-based; the
    // noisy half alternates raw and Richardson-ZNE-mitigated stage 1,
    // and the optimizer cycles through the `Descent` lineup — every
    // result stays bit-reproducible no matter the interleaving.
    let problems: Vec<IsingProblem> = (0..2u64)
        .map(|k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10 + k);
            IsingProblem::random_3_regular(10, &mut rng)
        })
        .collect();
    let grid = Grid2d::small_p1(20, 28);
    let perth = DeviceSpec::by_name("ibm perth").expect("known device");

    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 16,
        ..RuntimeConfig::default()
    });

    let handles: Vec<_> = problems
        .iter()
        .flat_map(|p| {
            (0..4u64).map(|seed| {
                let descent = Descent::OPTIMIZERS[seed as usize % Descent::OPTIMIZERS.len()];
                let spec = JobSpec::new(p.clone(), grid, 0.2, seed).with_descent(descent);
                // Odd seeds: noisy source, dispatched ahead of the
                // exact jobs via priority (results are unaffected by
                // dispatch order — only latency is). Every other noisy
                // job mitigates with Richardson ZNE; its factor-1
                // landscape is the raw jobs' landscape, shared in cache.
                if seed % 2 == 1 {
                    let mitigation = if seed % 4 == 1 {
                        Mitigation::zne_richardson()
                    } else {
                        Mitigation::None
                    };
                    let noisy = spec
                        .with_source(LandscapeSource::noisy(perth.clone()))
                        .with_landscape_seed(7)
                        .with_mitigation(mitigation);
                    runtime.submit_with_priority(noisy, Priority::High)
                } else {
                    runtime.submit(spec)
                }
            })
        })
        .collect();

    println!(
        "submitted {} jobs to {} executors",
        handles.len(),
        runtime.concurrency()
    );

    // One more job we change our mind about: cancelling while it is
    // still queued drops it without running; if it sneaked onto an
    // executor first, its result is simply delivered as usual.
    let extra = runtime.submit_with_priority(
        JobSpec::new(problems[0].clone(), grid, 0.2, 99),
        Priority::Low,
    );
    let dropped = extra.cancel();
    println!(
        "extra job {}: {}",
        extra.id(),
        if dropped {
            "cancelled while queued"
        } else {
            "already running; result will arrive"
        }
    );
    match extra.wait() {
        Ok(r) => println!("extra job completed anyway: nrmse {:.4}", r.nrmse),
        Err(lost) => println!("extra job never ran: {lost}"),
    }

    for handle in handles {
        // `wait` returns Err(JobLost) if the job was cancelled, the
        // runtime shut down early, or the job panicked — report it
        // instead of aborting the whole sweep.
        match handle.wait() {
            Ok(r) => println!(
                "job {:>2}: nrmse {:.4}  best {:.3} @ ({:+.3}, {:+.3})  {} ({:.1} ms)",
                r.job_id,
                r.nrmse,
                r.best_value,
                r.best_point[0],
                r.best_point[1],
                if r.landscape_cache_hit {
                    "cache hit "
                } else {
                    "cache miss"
                },
                r.wall.as_secs_f64() * 1e3,
            ),
            Err(lost) => eprintln!("job {} lost: {lost}", lost.job_id()),
        }
    }

    let cache = runtime.cache_stats();
    let pool = oscar::par::pool::global().stats();
    println!(
        "\nlandscape cache: {} hits / {} misses \
         (2 instances x {{exact, noisy raw, noisy ZNE}} served 8 jobs; \
         the ZNE jobs' factor-1 landscapes are the raw noisy entries)",
        cache.hits, cache.misses
    );
    println!(
        "worker pool: budget {}, spawned {} (persistent; steady state spawns none)",
        pool.threads, pool.threads_spawned
    );
}
