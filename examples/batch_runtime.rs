//! Batch runtime in ~40 lines: submit a sweep of reconstruction jobs,
//! collect handles out of order, and watch the landscape cache dedupe
//! repeated instances.
//!
//! Run with: `cargo run --release --example batch_runtime`
//! (try `OSCAR_THREADS=4` to size the worker pool explicitly).

use oscar::core::grid::Grid2d;
use oscar::problems::ising::IsingProblem;
use oscar::runtime::job::JobSpec;
use oscar::runtime::scheduler::{BatchRuntime, RuntimeConfig};
use rand::SeedableRng;

fn main() {
    // Two MaxCut instances; each is reconstructed under four sampling
    // seeds — a typical "how stable is my reconstruction?" sweep.
    let problems: Vec<IsingProblem> = (0..2u64)
        .map(|k| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10 + k);
            IsingProblem::random_3_regular(10, &mut rng)
        })
        .collect();
    let grid = Grid2d::small_p1(20, 28);

    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 8,
    });

    let handles: Vec<_> = problems
        .iter()
        .flat_map(|p| {
            (0..4u64).map(|seed| runtime.submit(JobSpec::new(p.clone(), grid, 0.2, seed)))
        })
        .collect();

    println!(
        "submitted {} jobs to {} executors",
        handles.len(),
        runtime.concurrency()
    );
    for handle in handles {
        // `wait` returns Err(JobLost) only if the runtime shut down (or
        // an executor died) before the job ran; it is alive here.
        let r = handle.wait().expect("runtime outlives every handle");
        println!(
            "job {:>2}: nrmse {:.4}  best {:.3} @ ({:+.3}, {:+.3})  {} ({:.1} ms)",
            r.job_id,
            r.nrmse,
            r.best_value,
            r.best_point[0],
            r.best_point[1],
            if r.landscape_cache_hit {
                "cache hit "
            } else {
                "cache miss"
            },
            r.wall.as_secs_f64() * 1e3,
        );
    }

    let cache = runtime.cache_stats();
    let pool = oscar::par::pool::global().stats();
    println!(
        "\nlandscape cache: {} hits / {} misses (2 instances served 8 jobs)",
        cache.hits, cache.misses
    );
    println!(
        "worker pool: budget {}, spawned {} (persistent; steady state spawns none)",
        pool.threads, pool.threads_spawned
    );
}
