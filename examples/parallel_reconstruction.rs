//! Parallel multi-QPU reconstruction with noise compensation (paper §5).
//!
//! Samples are split across two simulated QPUs with different noise
//! levels. Uncompensated mixing produces an "artificial" landscape; the
//! linear-regression Noise Compensation Model (NCM), trained on 1% of
//! points executed on both devices, restores the reference device's
//! landscape. Eager reconstruction drops queue-tail stragglers.
//!
//! ```sh
//! cargo run --release --example parallel_reconstruction
//! ```

use oscar::core::prelude::*;
use oscar::executor::prelude::*;
use oscar::mitigation::model::NoiseModel;
use oscar::problems::ising::IsingProblem;
use oscar_cs::measure::SamplePattern;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let problem = IsingProblem::random_3_regular(12, &mut rng);

    // Figure 8's setting: QPU-1 (reference) 0.1%/0.5%, QPU-2 0.3%/0.7%.
    let qpu1 = QpuDevice::new(
        "qpu-1",
        &problem,
        1,
        NoiseModel::depolarizing(0.001, 0.005),
        LatencyModel::cloud_queue(),
        1,
    );
    let qpu2 = QpuDevice::new(
        "qpu-2",
        &problem,
        1,
        NoiseModel::depolarizing(0.003, 0.007),
        LatencyModel::cloud_queue(),
        2,
    );

    let grid = Grid2d::small_p1(30, 40);
    // Target landscape: what QPU-1 alone would produce.
    let target = Landscape::generate(grid, |b, g| qpu1.execute(&[b], &[g]));

    // Sample 10% of the grid, half on each QPU.
    let pattern = SamplePattern::random(grid.rows(), grid.cols(), 0.10, &mut rng);
    let jobs: Vec<Job> = pattern
        .indices()
        .iter()
        .enumerate()
        .map(|(i, &flat)| {
            let (b, g) = grid.point(flat);
            Job {
                index: i,
                betas: vec![b],
                gammas: vec![g],
            }
        })
        .collect();
    let outcomes = execute_split(&[&qpu1, &qpu2], &[0.5, 0.5], &jobs);
    println!(
        "collected {} samples across 2 QPUs, simulated makespan {:.1} s",
        outcomes.len(),
        makespan(&outcomes)
    );

    // Train the NCM on 1% of the grid executed on BOTH devices.
    let train = SamplePattern::random(grid.rows(), grid.cols(), 0.01, &mut rng);
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for &flat in train.indices() {
        let (b, g) = grid.point(flat);
        xs.push(qpu2.execute(&[b], &[g]));
        ys.push(qpu1.execute(&[b], &[g]));
    }
    let ncm = NoiseCompensationModel::fit(&xs, &ys);
    println!(
        "NCM: slope {:.3}, intercept {:.3}, R^2 {:.4} (trained on {} pairs)",
        ncm.slope(),
        ncm.intercept(),
        ncm.r_squared(),
        xs.len()
    );

    // Reconstruct with and without compensation.
    let oscar = Reconstructor::default();
    let raw: Vec<f64> = outcomes.iter().map(|o| o.value).collect();
    let compensated: Vec<f64> = outcomes
        .iter()
        .map(|o| {
            if o.device == 1 {
                ncm.transform(o.value)
            } else {
                o.value
            }
        })
        .collect();
    let (l_raw, _) = oscar.reconstruct(&grid, &pattern, &raw);
    let (l_ncm, _) = oscar.reconstruct(&grid, &pattern, &compensated);
    let e_raw = nrmse(target.values(), l_raw.values());
    let e_ncm = nrmse(target.values(), l_ncm.values());
    println!("NRMSE vs QPU-1 landscape: uncompensated {e_raw:.4}, with NCM {e_ncm:.4}");

    // Eager reconstruction: drop the latency tail at 60% of the makespan.
    let deadline = makespan(&outcomes) * 0.6;
    let kept = within_timeout(&outcomes, deadline);
    let kept_idx: Vec<usize> = kept.iter().map(|o| pattern.indices()[o.index]).collect();
    let eager_pattern = SamplePattern::from_indices(grid.rows(), grid.cols(), kept_idx);
    let eager_vals: Vec<f64> = kept
        .iter()
        .map(|o| {
            if o.device == 1 {
                ncm.transform(o.value)
            } else {
                o.value
            }
        })
        .collect();
    let (l_eager, _) = oscar.reconstruct(&grid, &eager_pattern, &eager_vals);
    let e_eager = nrmse(target.values(), l_eager.values());
    println!(
        "eager: kept {}/{} samples by t={deadline:.1} s, NRMSE {e_eager:.4}",
        kept.len(),
        outcomes.len()
    );

    assert!(e_ncm < e_raw, "NCM should reduce the error");
    println!("\nok: NCM preserves the reference device's noise signature.");
}
