//! Use case 1 (paper §6): benchmark ZNE configurations on reconstructed
//! landscapes instead of full grid searches.
//!
//! Richardson extrapolation on scales {1,2,3} amplifies shot noise into
//! "salt-like" jaggedness; linear extrapolation on {1,3} stays smooth.
//! OSCAR's reconstructions preserve that difference, so the mitigation
//! configuration can be chosen from a 30% sample of the landscape.
//!
//! ```sh
//! cargo run --release --example noise_mitigation_tuning
//! ```

use oscar::core::prelude::*;
use oscar::executor::prelude::*;
use oscar::mitigation::model::NoiseModel;
use oscar::problems::ising::IsingProblem;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let problem = IsingProblem::random_3_regular(12, &mut rng);

    // Figure 9's setting: depolarizing noise (1q 0.001, 2q 0.02) with
    // finite shots so extrapolation-amplified shot noise is visible.
    let noise = NoiseModel::depolarizing(0.001, 0.02).with_shots(2048);
    let device = QpuDevice::new("noisy-qpu", &problem, 1, noise, LatencyModel::instant(), 1);

    let grid = Grid2d::small_p1(20, 28);
    println!(
        "generating unmitigated / Richardson / linear landscapes on a {}x{} grid...",
        grid.rows(),
        grid.cols()
    );
    let set = ZneLandscapes::generate(&device, grid);

    let original = set.metrics();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let reconstructed = set.reconstructed_metrics(&Reconstructor::default(), 0.3, &mut rng);

    println!(
        "\n{:<22}{:>14}{:>14}{:>14}",
        "metric", "unmitigated", "Richardson", "linear"
    );
    let row = |name: &str, m: &MitigationMetrics, f: fn(&LandscapeMetrics) -> f64| {
        println!(
            "{:<22}{:>14.4}{:>14.4}{:>14.4}",
            name,
            f(&m.unmitigated),
            f(&m.richardson),
            f(&m.linear)
        );
    };
    println!("-- original landscapes --");
    row("second derivative", &original, |m| m.second_derivative);
    row("variance of gradient", &original, |m| {
        m.variance_of_gradients
    });
    row("variance", &original, |m| m.variance);
    println!("-- OSCAR reconstructions (30% samples) --");
    row("second derivative", &reconstructed, |m| m.second_derivative);
    row("variance of gradient", &reconstructed, |m| {
        m.variance_of_gradients
    });
    row("variance", &reconstructed, |m| m.variance);

    // The actionable conclusion (Figure 10): Richardson is far rougher.
    assert!(original.richardson.second_derivative > original.linear.second_derivative);
    assert!(reconstructed.richardson.second_derivative > reconstructed.linear.second_derivative);
    println!("\nconclusion: Richardson ZNE adds jaggedness; prefer linear extrapolation here.");
}
