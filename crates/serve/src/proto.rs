//! The `oscar-serve` wire protocol: request parsing, error codes, and
//! result serialization.
//!
//! One JSON object per line in each direction. Every request carries a
//! `"verb"`; every reply carries `"ok"` — `true` with verb-specific
//! fields, or `false` with an [`ErrorCode`] under `"error"`, a
//! human-readable `"message"`, and (for admission rejects) a
//! `"retry_after_ms"` hint. Malformed input of any kind — bad JSON, a
//! missing field, an unknown verb, an out-of-range parameter — maps to
//! a structured error reply on the same connection; the daemon never
//! answers a request with silence or a disconnect.
//!
//! [`SubmitReq`] is the single source of truth for how wire parameters
//! become a [`JobSpec`]: [`SubmitReq::to_spec`] mirrors the
//! `oscar-batch` job-list mapping (instance from
//! `StdRng::seed_from_u64(instance_seed)`, grid from `small_p1`), so a
//! daemon-side job is *the same spec* a local run would build — the
//! foundation of the bit-identical-results guarantee the fault suite
//! asserts via [`result_checksum`].

use crate::json::Json;
use oscar_core::grid::{Grid2d, Shape};
use oscar_executor::device::DeviceSpec;
use oscar_problems::ising::IsingProblem;
use oscar_problems::workload::{Molecule, ProblemInstance, ProblemKind};
use oscar_runtime::descent::Descent;
use oscar_runtime::job::{default_vqe_shape, JobResult, JobSpec};
use oscar_runtime::mitigation::Mitigation;
use oscar_runtime::scheduler::Priority;
use oscar_runtime::source::LandscapeSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Largest problem the service admits (state vectors are `2^qubits`
/// doubles; 16 qubits keeps a hostile submit under a megabyte of
/// simulator state).
pub const MAX_QUBITS: usize = 16;

/// Largest grid side the service admits (`rows * cols` circuit
/// evaluations per landscape).
pub const MAX_GRID_SIDE: usize = 128;

/// Largest tensor rank (parameter count) an N-D `shape` may declare.
pub const MAX_SHAPE_RANK: usize = 16;

/// Largest total landscape point count an N-D `shape` may declare
/// (one circuit evaluation per point; 2-D grids are already bounded by
/// [`MAX_GRID_SIDE`]²).
pub const MAX_SHAPE_POINTS: usize = 65_536;

/// Structured protocol error codes (the `"error"` field of a reject).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The request was well-formed JSON but semantically invalid
    /// (missing field, out-of-range value, unknown device/mode name).
    BadRequest,
    /// The `"verb"` field named no known verb.
    UnknownVerb,
    /// The referenced job id is not (or no longer) registered.
    UnknownJob,
    /// Admission reject: the pending queue is at capacity. Carries
    /// `retry_after_ms`.
    Overloaded,
    /// Admission reject: this client is at its live-job quota. Carries
    /// `retry_after_ms`.
    QuotaExceeded,
    /// Admission reject: the daemon is draining and accepts no new work.
    Draining,
    /// The job was cancelled before it ran; no result exists.
    Cancelled,
    /// The job's deadline expired before it ran; no result exists.
    Expired,
    /// The job was lost (it panicked, or the runtime shut down with it
    /// queued); no result exists.
    JobLost,
    /// The request line exceeded the per-line byte bound.
    LineTooLong,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::UnknownJob => "unknown-job",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::QuotaExceeded => "quota-exceeded",
            ErrorCode::Draining => "draining",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Expired => "expired",
            ErrorCode::JobLost => "job-lost",
            ErrorCode::LineTooLong => "line-too-long",
        }
    }
}

/// A request that failed validation: the code plus a human-readable
/// message for the reply.
#[derive(Clone, Debug)]
pub struct RequestError {
    /// The structured code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn bad(message: impl Into<String>) -> Self {
        RequestError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }
}

/// A validated `submit` request (see the module docs for defaulting).
#[derive(Clone, Debug)]
pub struct SubmitReq {
    /// The workload family (wire field `problem`: `maxcut`, `sk`,
    /// `h2`, or `lih`; defaults to `maxcut`).
    pub problem: ProblemKind,
    /// Qubit count of the random Ising instance (even, `4..=16`).
    /// Fixed by the molecule — and forbidden on the wire — for VQE
    /// workloads.
    pub qubits: usize,
    /// QAOA depth `p` (wire field `depth`, `>= 1`, QAOA-only;
    /// defaults to 1). Depth ≥ 2 landscapes are N-D tensors and
    /// require `shape`.
    pub depth: usize,
    /// Per-axis point counts of an N-D landscape (wire field `shape`).
    /// Required for depth ≥ 2 QAOA (`2 * depth` axes, betas first);
    /// optional for molecules (defaults to the molecule's standard
    /// scan); forbidden for depth-1 QAOA, which uses `rows`/`cols`.
    pub shape: Option<Vec<usize>>,
    /// Seed generating the problem instance (defaults to `seed`).
    pub instance_seed: u64,
    /// Sampling-pattern / SPSA seed.
    pub seed: u64,
    /// Grid rows (beta axis), `2..=128`. Depth-1 QAOA only (0
    /// otherwise).
    pub rows: usize,
    /// Grid columns (gamma axis), `2..=128`. Depth-1 QAOA only (0
    /// otherwise).
    pub cols: usize,
    /// Sampling budget as a fraction of grid points in `(0, 1]`.
    pub fraction: f64,
    /// Stage-1 noise-realization seed (defaults to `seed`; ignored for
    /// the exact source).
    pub landscape_seed: u64,
    /// Noisy-device name (`None` = exact noiseless simulation).
    pub device: Option<String>,
    /// Shot-count override for the noisy device.
    pub shots: Option<usize>,
    /// Mitigation mode.
    pub mitigation: Mitigation,
    /// Stage-3 optimizer.
    pub descent: Descent,
    /// Explicit dispatch priority (`None` = derive from the deadline,
    /// or Normal).
    pub priority: Option<Priority>,
    /// Start deadline relative to admission, in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl SubmitReq {
    /// A minimal depth-1 MaxCut request with every optional axis at
    /// its default.
    pub fn new(qubits: usize, seed: u64, rows: usize, cols: usize, fraction: f64) -> Self {
        SubmitReq {
            problem: ProblemKind::MaxCut,
            qubits,
            depth: 1,
            shape: None,
            instance_seed: seed,
            seed,
            rows,
            cols,
            fraction,
            landscape_seed: seed,
            device: None,
            shots: None,
            mitigation: Mitigation::None,
            descent: Descent::NelderMead,
            priority: None,
            deadline_ms: None,
        }
    }

    /// A depth-`p` QAOA request over an N-D tensor: `counts` holds the
    /// per-axis point counts, `2 * depth` of them, betas first.
    pub fn deep_qaoa(
        problem: ProblemKind,
        qubits: usize,
        depth: usize,
        seed: u64,
        counts: Vec<usize>,
        fraction: f64,
    ) -> Self {
        SubmitReq {
            problem,
            depth,
            shape: Some(counts),
            rows: 0,
            cols: 0,
            ..SubmitReq::new(qubits, seed, 0, 0, fraction)
        }
    }

    /// A molecular VQE request on the molecule's default scan shape.
    pub fn vqe(molecule: Molecule, seed: u64, fraction: f64) -> Self {
        SubmitReq {
            problem: ProblemKind::Molecule(molecule),
            qubits: molecule.num_qubits(),
            rows: 0,
            cols: 0,
            ..SubmitReq::new(molecule.num_qubits(), seed, 0, 0, fraction)
        }
    }

    /// Parses and validates the fields of a `submit` object.
    pub fn from_json(obj: &Json) -> Result<SubmitReq, RequestError> {
        let problem = match obj.get("problem") {
            None | Some(Json::Null) => ProblemKind::MaxCut,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| RequestError::bad("'problem' must be a string"))?;
                ProblemKind::by_name(name).ok_or_else(|| {
                    RequestError::bad(format!(
                        "unknown problem '{name}' (one of: {})",
                        ProblemKind::names().join(", ")
                    ))
                })?
            }
        };
        let seed = req_u64(obj, "seed")?;
        let fraction = obj
            .get("fraction")
            .and_then(Json::as_f64)
            .ok_or_else(|| RequestError::bad("missing or invalid 'fraction'"))?;
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(RequestError::bad("'fraction' must be in (0, 1]"));
        }
        let depth = match opt_u64(obj, "depth")? {
            None => 1,
            Some(_) if problem.is_molecule() => {
                return Err(RequestError::bad(
                    "'depth' applies only to QAOA problems ('maxcut', 'sk')",
                ))
            }
            Some(0) => return Err(RequestError::bad("'depth' must be at least 1")),
            Some(d) => d as usize,
        };
        let shape = match obj.get("shape") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| RequestError::bad("'shape' must be an array of axis sizes"))?;
                if arr.is_empty() || arr.len() > MAX_SHAPE_RANK {
                    return Err(RequestError::bad(format!(
                        "'shape' must have 1..={MAX_SHAPE_RANK} axes"
                    )));
                }
                let mut counts = Vec::with_capacity(arr.len());
                let mut points = 1usize;
                for entry in arr {
                    let n = entry.as_u64().ok_or_else(|| {
                        RequestError::bad("'shape' entries must be non-negative integers")
                    })? as usize;
                    if !(2..=MAX_GRID_SIDE).contains(&n) {
                        return Err(RequestError::bad(format!(
                            "'shape' axes must be in 2..={MAX_GRID_SIDE}"
                        )));
                    }
                    points = points.saturating_mul(n);
                    counts.push(n);
                }
                if points > MAX_SHAPE_POINTS {
                    return Err(RequestError::bad(format!(
                        "'shape' declares {points} landscape points, over the {MAX_SHAPE_POINTS} cap"
                    )));
                }
                Some(counts)
            }
        };
        let (qubits, rows, cols) = match problem {
            ProblemKind::Molecule(m) => {
                // The molecule fixes the register and parameter count;
                // 2-D grid fields have no N-D meaning.
                for field in ["qubits", "rows", "cols"] {
                    if !matches!(obj.get(field), None | Some(Json::Null)) {
                        return Err(RequestError::bad(format!(
                            "'{field}' does not apply to molecular problems"
                        )));
                    }
                }
                if let Some(counts) = &shape {
                    if counts.len() != m.num_params() {
                        return Err(RequestError::bad(format!(
                            "'shape' for '{}' needs {} axes (one per ansatz parameter)",
                            m.name(),
                            m.num_params()
                        )));
                    }
                }
                (m.num_qubits(), 0, 0)
            }
            ProblemKind::MaxCut | ProblemKind::SkModel => {
                let qubits = req_u64(obj, "qubits")? as usize;
                if !(4..=MAX_QUBITS).contains(&qubits) || !qubits.is_multiple_of(2) {
                    return Err(RequestError::bad(format!(
                        "'qubits' must be even and in 4..={MAX_QUBITS}"
                    )));
                }
                if depth == 1 {
                    if shape.is_some() {
                        return Err(RequestError::bad(
                            "'shape' needs 'depth' >= 2; depth-1 QAOA uses 'rows'/'cols'",
                        ));
                    }
                    let rows = req_u64(obj, "rows")? as usize;
                    let cols = req_u64(obj, "cols")? as usize;
                    for (name, v) in [("rows", rows), ("cols", cols)] {
                        if !(2..=MAX_GRID_SIDE).contains(&v) {
                            return Err(RequestError::bad(format!(
                                "'{name}' must be in 2..={MAX_GRID_SIDE}"
                            )));
                        }
                    }
                    (qubits, rows, cols)
                } else {
                    for field in ["rows", "cols"] {
                        if !matches!(obj.get(field), None | Some(Json::Null)) {
                            return Err(RequestError::bad(format!(
                                "'{field}' is a depth-1 field; depth >= 2 QAOA uses 'shape'"
                            )));
                        }
                    }
                    match &shape {
                        None => {
                            return Err(RequestError::bad(
                                "depth >= 2 QAOA needs 'shape' (2 * depth axes, betas first)",
                            ))
                        }
                        Some(counts) if counts.len() != 2 * depth => {
                            return Err(RequestError::bad(format!(
                                "'shape' for depth {depth} needs {} axes (betas then gammas)",
                                2 * depth
                            )))
                        }
                        Some(_) => {}
                    }
                    (qubits, 0, 0)
                }
            }
        };
        let instance_seed = opt_u64(obj, "instance_seed")?.unwrap_or(seed);
        let landscape_seed = opt_u64(obj, "landscape_seed")?.unwrap_or(seed);
        let device = match obj.get("device") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| RequestError::bad("'device' must be a string"))?;
                if DeviceSpec::by_name(name).is_none() {
                    return Err(RequestError::bad(format!("unknown device '{name}'")));
                }
                Some(name.to_string())
            }
        };
        let shots = match opt_u64(obj, "shots")? {
            Some(0) => return Err(RequestError::bad("'shots' must be positive")),
            Some(s) => {
                if device.is_none() {
                    return Err(RequestError::bad("'shots' needs 'device'"));
                }
                Some(s as usize)
            }
            None => None,
        };
        let mitigation = match obj.get("mitigation") {
            None | Some(Json::Null) => Mitigation::None,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| RequestError::bad("'mitigation' must be a string"))?;
                Mitigation::by_name(name)
                    .ok_or_else(|| RequestError::bad(format!("unknown mitigation '{name}'")))?
            }
        };
        let descent = match obj.get("optimizer") {
            None | Some(Json::Null) => Descent::NelderMead,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| RequestError::bad("'optimizer' must be a string"))?;
                Descent::by_name(name)
                    .ok_or_else(|| RequestError::bad(format!("unknown optimizer '{name}'")))?
            }
        };
        let priority = match obj.get("priority") {
            None | Some(Json::Null) => None,
            Some(v) => match v.as_str() {
                Some("low") => Some(Priority::Low),
                Some("normal") => Some(Priority::Normal),
                Some("high") => Some(Priority::High),
                _ => {
                    return Err(RequestError::bad(
                        "'priority' must be 'low', 'normal', or 'high'",
                    ))
                }
            },
        };
        let deadline_ms = opt_u64(obj, "deadline_ms")?;
        Ok(SubmitReq {
            problem,
            depth,
            shape,
            qubits,
            instance_seed,
            seed,
            rows,
            cols,
            fraction,
            landscape_seed,
            device,
            shots,
            mitigation,
            descent,
            priority,
            deadline_ms,
        })
    }

    /// Serializes the request as a `submit` wire object (the inverse of
    /// [`Self::from_json`]; clients build their lines with this).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("verb".to_string(), Json::Str("submit".into())),
            ("problem".to_string(), Json::Str(self.problem.name().into())),
        ];
        if !self.problem.is_molecule() {
            fields.push(("qubits".to_string(), Json::Num(self.qubits as f64)));
            if self.depth > 1 {
                fields.push(("depth".to_string(), Json::Num(self.depth as f64)));
            } else {
                fields.push(("rows".to_string(), Json::Num(self.rows as f64)));
                fields.push(("cols".to_string(), Json::Num(self.cols as f64)));
            }
        }
        if let Some(counts) = &self.shape {
            fields.push((
                "shape".to_string(),
                Json::Arr(counts.iter().map(|&n| Json::Num(n as f64)).collect()),
            ));
        }
        fields.extend([
            (
                "instance_seed".to_string(),
                Json::Num(self.instance_seed as f64),
            ),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            ("fraction".to_string(), Json::Num(self.fraction)),
            (
                "landscape_seed".to_string(),
                Json::Num(self.landscape_seed as f64),
            ),
            (
                "mitigation".to_string(),
                Json::Str(self.mitigation.name().into()),
            ),
            (
                "optimizer".to_string(),
                Json::Str(self.descent.name().into()),
            ),
        ]);
        if let Some(device) = &self.device {
            fields.push(("device".to_string(), Json::Str(device.clone())));
        }
        if let Some(shots) = self.shots {
            fields.push(("shots".to_string(), Json::Num(shots as f64)));
        }
        if let Some(priority) = self.priority {
            let name = match priority {
                Priority::Low => "low",
                Priority::Normal => "normal",
                Priority::High => "high",
            };
            fields.push(("priority".to_string(), Json::Str(name.into())));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::Num(ms as f64)));
        }
        Json::Obj(fields)
    }

    /// Builds the job spec this request denotes — the exact mapping
    /// `oscar-batch --file` uses, so daemon-side results are
    /// bit-identical to a local `run_job` on the same parameters.
    pub fn to_spec(&self) -> Result<JobSpec, RequestError> {
        let (instance, shape) = match self.problem {
            ProblemKind::MaxCut | ProblemKind::SkModel => {
                let mut rng = StdRng::seed_from_u64(self.instance_seed);
                let problem = match self.problem {
                    ProblemKind::MaxCut => {
                        IsingProblem::try_random_3_regular(self.qubits, &mut rng)
                            .map_err(|e| RequestError::bad(format!("infeasible instance: {e}")))?
                    }
                    _ => IsingProblem::sk_model(self.qubits, &mut rng),
                };
                let shape = match &self.shape {
                    None => Shape::Grid2d(Grid2d::small_p1(self.rows, self.cols)),
                    Some(counts) => {
                        let p = self.depth;
                        Shape::qaoa_with_counts(p, &counts[..p], &counts[p..])
                    }
                };
                (ProblemInstance::ising(problem, self.depth), shape)
            }
            ProblemKind::Molecule(m) => {
                let shape = match &self.shape {
                    None => default_vqe_shape(m),
                    Some(counts) => Shape::vqe_scan(counts),
                };
                (ProblemInstance::molecule(m), shape)
            }
        };
        let source = match &self.device {
            None => LandscapeSource::Exact,
            Some(name) => LandscapeSource::Noisy {
                device: DeviceSpec::by_name(name)
                    .ok_or_else(|| RequestError::bad(format!("unknown device '{name}'")))?,
                shots: self.shots,
            },
        };
        Ok(JobSpec::shaped(instance, shape, self.fraction, self.seed)
            .with_source(source)
            .with_landscape_seed(self.landscape_seed)
            .with_mitigation(self.mitigation.clone())
            .with_descent(self.descent))
    }
}

/// A parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Admit a job.
    Submit(Box<SubmitReq>),
    /// Cancel a queued job.
    Cancel {
        /// Daemon job id.
        job: u64,
    },
    /// Report a job's lifecycle state.
    Status {
        /// Daemon job id.
        job: u64,
    },
    /// Block (bounded) for a job's result.
    Wait {
        /// Daemon job id.
        job: u64,
        /// Wait bound in milliseconds (`None` = the daemon default;
        /// 0 = non-blocking poll).
        timeout_ms: Option<u64>,
        /// Include the full reconstruction values in the reply.
        include_values: bool,
    },
    /// Report daemon counters.
    Stats,
    /// Report the full metrics registry (counters, gauges, histogram
    /// summaries) plus daemon-local metrics.
    Metrics,
    /// Stop admission, finish everything, then shut down.
    Drain,
}

impl Request {
    /// Parses one already-JSON-decoded request object.
    pub fn from_json(obj: &Json) -> Result<Request, RequestError> {
        let verb = obj
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError::bad("missing 'verb'"))?;
        match verb {
            "submit" => Ok(Request::Submit(Box::new(SubmitReq::from_json(obj)?))),
            "cancel" => Ok(Request::Cancel {
                job: req_u64(obj, "job")?,
            }),
            "status" => Ok(Request::Status {
                job: req_u64(obj, "job")?,
            }),
            "wait" => Ok(Request::Wait {
                job: req_u64(obj, "job")?,
                timeout_ms: opt_u64(obj, "timeout_ms")?,
                include_values: obj
                    .get("include_values")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            other => Err(RequestError {
                code: ErrorCode::UnknownVerb,
                message: format!("unknown verb '{other}'"),
            }),
        }
    }
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, RequestError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| RequestError::bad(format!("missing or invalid '{key}'")))
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| RequestError::bad(format!("invalid '{key}'"))),
    }
}

/// FNV-1a over the bit patterns of a result's numeric payload
/// (reconstruction values, NRMSE, best point/value). Two results agree
/// on this checksum iff they are bit-identical along every axis the
/// determinism contract covers — the compact form of the fault suite's
/// "daemon results equal library results" assertion.
pub fn result_checksum(result: &JobResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &v in result.reconstruction.values() {
        fold(v.to_bits());
    }
    fold(result.nrmse.to_bits());
    for &coord in &result.best_point {
        fold(coord.to_bits());
    }
    fold(result.best_value.to_bits());
    h
}

/// Serializes a job result for the `wait` reply. The reconstruction's
/// full value array is included only on request (`include_values`);
/// the checksum is always present.
pub fn result_to_json(result: &JobResult, include_values: bool) -> Json {
    let mut fields = vec![
        ("nrmse".to_string(), Json::Num(result.nrmse)),
        (
            "samples_used".to_string(),
            Json::Num(result.samples_used as f64),
        ),
        (
            "solver_iterations".to_string(),
            Json::Num(result.solver_iterations as f64),
        ),
        (
            "best_point".to_string(),
            Json::Arr(result.best_point.iter().map(|&c| Json::Num(c)).collect()),
        ),
        ("best_value".to_string(), Json::Num(result.best_value)),
        (
            "dims".to_string(),
            Json::Arr(
                result
                    .reconstruction
                    .dims()
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        (
            "cache_hit".to_string(),
            Json::Bool(result.landscape_cache_hit),
        ),
        (
            "wall_ms".to_string(),
            Json::Num(result.wall.as_secs_f64() * 1e3),
        ),
        (
            "checksum".to_string(),
            Json::Str(format!("{:016x}", result_checksum(result))),
        ),
    ];
    if let Some(grid) = result.reconstruction.as_grid2d().map(|l| l.grid()) {
        fields.push(("rows".to_string(), Json::Num(grid.rows() as f64)));
        fields.push(("cols".to_string(), Json::Num(grid.cols() as f64)));
    }
    if include_values {
        fields.push((
            "values".to_string(),
            Json::Arr(
                result
                    .reconstruction
                    .values()
                    .iter()
                    .map(|&v| Json::Num(v))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn submit_roundtrips_through_json() {
        let mut req = SubmitReq::new(8, 41, 16, 20, 0.25);
        req.device = Some("ibm perth".into());
        req.shots = Some(4096);
        req.mitigation = Mitigation::zne_richardson();
        req.descent = Descent::Spsa;
        req.priority = Some(Priority::High);
        req.deadline_ms = Some(5000);
        let line = req.to_json().to_string_compact();
        let back = match Request::from_json(&parse(&line).unwrap()).unwrap() {
            Request::Submit(r) => r,
            other => panic!("expected submit, got {other:?}"),
        };
        assert_eq!(back.qubits, 8);
        assert_eq!(back.instance_seed, 41);
        assert_eq!(back.seed, 41);
        assert_eq!((back.rows, back.cols), (16, 20));
        assert_eq!(back.fraction, 0.25);
        assert_eq!(back.device.as_deref(), Some("ibm perth"));
        assert_eq!(back.shots, Some(4096));
        assert_eq!(back.mitigation.name(), "zne");
        assert_eq!(back.descent, Descent::Spsa);
        assert_eq!(back.priority, Some(Priority::High));
        assert_eq!(back.deadline_ms, Some(5000));
    }

    #[test]
    fn submit_validation_rejects_bad_fields() {
        let base = SubmitReq::new(8, 1, 10, 10, 0.3).to_json();
        let mutate = |key: &str, v: Json| {
            let Json::Obj(mut fields) = base.clone() else {
                unreachable!()
            };
            for f in &mut fields {
                if f.0 == key {
                    f.1 = v;
                    return Json::Obj(fields);
                }
            }
            fields.push((key.to_string(), v));
            Json::Obj(fields)
        };
        for bad in [
            mutate("qubits", Json::Num(7.0)),
            mutate("qubits", Json::Num(64.0)),
            mutate("rows", Json::Num(1.0)),
            mutate("cols", Json::Num(1000.0)),
            mutate("fraction", Json::Num(0.0)),
            mutate("fraction", Json::Num(1.5)),
            mutate("device", Json::Str("martian qpu".into())),
            mutate("mitigation", Json::Str("prayer".into())),
            mutate("optimizer", Json::Str("brute-force".into())),
            mutate("priority", Json::Str("urgent".into())),
            mutate("shots", Json::Num(100.0)), // shots without device
        ] {
            let parsed = Request::from_json(&bad);
            assert!(
                matches!(parsed, Err(ref e) if e.code == ErrorCode::BadRequest),
                "{} must be rejected, got {parsed:?}",
                bad.to_string_compact()
            );
        }
    }

    #[test]
    fn deep_qaoa_and_vqe_submits_roundtrip_through_json() {
        let req = SubmitReq::deep_qaoa(ProblemKind::SkModel, 6, 2, 9, vec![4, 5, 6, 7], 0.4);
        let line = req.to_json().to_string_compact();
        let back = match Request::from_json(&parse(&line).unwrap()).unwrap() {
            Request::Submit(r) => r,
            other => panic!("expected submit, got {other:?}"),
        };
        assert_eq!(back.problem, ProblemKind::SkModel);
        assert_eq!(back.depth, 2);
        assert_eq!(back.shape.as_deref(), Some(&[4usize, 5, 6, 7][..]));
        assert_eq!(back.qubits, 6);
        assert_eq!((back.rows, back.cols), (0, 0));

        let req = SubmitReq::vqe(Molecule::LiH, 3, 0.5);
        let line = req.to_json().to_string_compact();
        // Molecular submits carry no register/grid fields on the wire.
        let obj = parse(&line).unwrap();
        for absent in ["qubits", "rows", "cols", "depth"] {
            assert!(obj.get(absent).is_none(), "'{absent}' leaked into {line}");
        }
        let back = match Request::from_json(&obj).unwrap() {
            Request::Submit(r) => r,
            other => panic!("expected submit, got {other:?}"),
        };
        assert_eq!(back.problem, ProblemKind::Molecule(Molecule::LiH));
        assert_eq!(back.qubits, Molecule::LiH.num_qubits());
        assert_eq!(back.shape, None);
    }

    #[test]
    fn shape_and_problem_validation_rejects_malformed_submits() {
        for (bad, why) in [
            (
                r#"{"verb":"submit","problem":"travelling-salesman","qubits":6,"seed":1,"rows":8,"cols":8,"fraction":0.3}"#,
                "unknown problem",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"seed":1,"rows":8,"cols":8,"depth":0,"fraction":0.3}"#,
                "zero depth",
            ),
            (
                r#"{"verb":"submit","problem":"h2","depth":2,"seed":1,"fraction":0.3}"#,
                "depth on a molecule",
            ),
            (
                r#"{"verb":"submit","problem":"h2","qubits":2,"seed":1,"fraction":0.3}"#,
                "qubits on a molecule",
            ),
            (
                r#"{"verb":"submit","problem":"h2","rows":8,"seed":1,"fraction":0.3}"#,
                "rows on a molecule",
            ),
            (
                r#"{"verb":"submit","problem":"h2","shape":[4,4],"seed":1,"fraction":0.3}"#,
                "wrong molecular shape rank",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"seed":1,"rows":8,"cols":8,"shape":[4,4],"fraction":0.3}"#,
                "shape at depth 1",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":2,"seed":1,"fraction":0.3}"#,
                "depth 2 without shape",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":2,"shape":[4,4,4],"seed":1,"fraction":0.3}"#,
                "shape rank != 2 * depth",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":2,"shape":[4,4,4,4],"rows":8,"cols":8,"seed":1,"fraction":0.3}"#,
                "rows alongside shape",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":2,"shape":[4,1,4,4],"seed":1,"fraction":0.3}"#,
                "axis below 2",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":2,"shape":[4,-4,4,4],"seed":1,"fraction":0.3}"#,
                "negative axis",
            ),
            (
                r#"{"verb":"submit","problem":"maxcut","qubits":6,"depth":8,"shape":[60,60,60,60,60,60,60,60,60,60,60,60,60,60,60,60],"seed":1,"fraction":0.3}"#,
                "over the point cap",
            ),
        ] {
            let parsed = Request::from_json(&parse(bad).unwrap());
            assert!(
                matches!(parsed, Err(ref e) if e.code == ErrorCode::BadRequest),
                "{why}: {bad} must be rejected, got {parsed:?}"
            );
        }
    }

    #[test]
    fn nd_to_spec_matches_the_library_mapping() {
        // Depth-2 QAOA: wire counts are betas first, exactly the
        // qaoa_with_counts convention.
        let req = SubmitReq::deep_qaoa(ProblemKind::MaxCut, 6, 2, 11, vec![4, 5, 6, 7], 0.4);
        let spec = req.to_spec().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let problem = IsingProblem::try_random_3_regular(6, &mut rng).unwrap();
        let reference = JobSpec::shaped(
            oscar_problems::workload::ProblemInstance::ising(problem, 2),
            Shape::qaoa_with_counts(2, &[4, 5], &[6, 7]),
            0.4,
            11,
        )
        .with_landscape_seed(11);
        let a = oscar_runtime::job::run_job(&spec, None);
        let b = oscar_runtime::job::run_job(&reference, None);
        assert_eq!(result_checksum(&a), result_checksum(&b));
        assert_eq!(a.best_point.len(), 4);

        // VQE with the default scan shape.
        let spec = SubmitReq::vqe(Molecule::H2, 5, 0.5).to_spec().unwrap();
        let reference = JobSpec::shaped(
            oscar_problems::workload::ProblemInstance::molecule(Molecule::H2),
            default_vqe_shape(Molecule::H2),
            0.5,
            5,
        )
        .with_landscape_seed(5);
        let a = oscar_runtime::job::run_job(&spec, None);
        let b = oscar_runtime::job::run_job(&reference, None);
        assert_eq!(result_checksum(&a), result_checksum(&b));
        assert_eq!(a.best_point.len(), 3);

        // N-D results serialize dims and omit the 2-D grid fields.
        let json = result_to_json(&a, false);
        let dims: Vec<u64> = json
            .get("dims")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|d| d.as_u64().unwrap())
            .collect();
        assert_eq!(dims, vec![10, 10, 10]);
        assert!(json.get("rows").is_none() && json.get("cols").is_none());
        assert_eq!(
            json.get("best_point").and_then(Json::as_arr).unwrap().len(),
            3
        );
    }

    #[test]
    fn to_spec_matches_the_batch_job_list_mapping() {
        // The same parameters, mapped by hand exactly as
        // `oscar-batch --file` does it.
        let req = SubmitReq::new(8, 17, 12, 14, 0.3);
        let spec = req.to_spec().unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let problem = IsingProblem::try_random_3_regular(8, &mut rng).unwrap();
        let reference =
            JobSpec::new(problem, Grid2d::small_p1(12, 14), 0.3, 17).with_landscape_seed(17);
        let a = oscar_runtime::job::run_job(&spec, None);
        let b = oscar_runtime::job::run_job(&reference, None);
        assert_eq!(result_checksum(&a), result_checksum(&b));
        assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits());
    }

    #[test]
    fn checksum_distinguishes_results() {
        let a =
            oscar_runtime::job::run_job(&SubmitReq::new(6, 1, 8, 10, 0.3).to_spec().unwrap(), None);
        let b =
            oscar_runtime::job::run_job(&SubmitReq::new(6, 2, 8, 10, 0.3).to_spec().unwrap(), None);
        assert_ne!(result_checksum(&a), result_checksum(&b));
        // And the JSON form carries it.
        let json = result_to_json(&a, true);
        assert_eq!(
            json.get("checksum").and_then(Json::as_str).unwrap(),
            format!("{:016x}", result_checksum(&a))
        );
        assert_eq!(
            json.get("values").and_then(Json::as_arr).unwrap().len(),
            a.reconstruction.values().len()
        );
    }

    #[test]
    fn unknown_verbs_and_missing_fields_map_to_codes() {
        let e = Request::from_json(&parse(r#"{"verb":"reboot"}"#).unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::UnknownVerb);
        let e = Request::from_json(&parse(r#"{"verb":"cancel"}"#).unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = Request::from_json(&parse(r#"{"no":"verb"}"#).unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
    }
}
