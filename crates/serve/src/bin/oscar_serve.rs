//! The `oscar-serve` daemon binary.
//!
//! ```text
//! oscar-serve --socket /run/oscar.sock [--concurrency 4] [--max-pending 64]
//! oscar-serve --listen 127.0.0.1:7070
//! ```
//!
//! Runs until a client issues the `drain` verb or the process receives
//! SIGTERM/SIGINT; either way admission closes, every admitted job
//! runs to completion, waiters are flushed, and the process exits 0.

use oscar_serve::daemon::{spawn_tcp, spawn_unix, DaemonHandle, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

static TERMINATE: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: c_int) {
    // Relaxed is enough: the flag is a lone bool polled in a sleep
    // loop and orders no other memory.
    TERMINATE.store(true, Ordering::Relaxed);
}

extern "C" {
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
}

struct Args {
    socket: Option<String>,
    listen: Option<String>,
    config: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: oscar-serve (--socket PATH | --listen HOST:PORT) \
         [--concurrency N] [--max-pending N] [--quota N] [--cache N] \
         [--store DIR] [--metrics-text]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: None,
        listen: None,
        config: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(value("--socket")),
            "--listen" => args.listen = Some(value("--listen")),
            "--concurrency" => args.config.concurrency = parse_num(&value("--concurrency")),
            "--max-pending" => args.config.max_pending = parse_num(&value("--max-pending")),
            "--quota" => args.config.per_client_quota = parse_num(&value("--quota")),
            "--cache" => args.config.cache_capacity = parse_num(&value("--cache")),
            "--store" => args.config.store_dir = Some(value("--store").into()),
            "--metrics-text" => args.config.metrics_text = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if args.socket.is_none() && args.listen.is_none() {
        eprintln!("one of --socket or --listen is required");
        usage();
    }
    args
}

fn parse_num(text: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("expected a positive integer, got {text:?}");
        usage();
    })
}

fn start(args: &Args) -> std::io::Result<DaemonHandle> {
    match (&args.socket, &args.listen) {
        (Some(path), _) => spawn_unix(path, args.config.clone()),
        (None, Some(addr)) => spawn_tcp(addr, args.config.clone()),
        // parse_args() rejects this combination up front.
        (None, None) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "one of --socket or --listen is required",
        )),
    }
}

fn main() {
    let args = parse_args();
    // SAFETY: `signal(2)` with a handler that only stores to an
    // AtomicBool is async-signal-safe; both arguments are valid for
    // the process lifetime.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let handle = match start(&args) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("oscar-serve: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    if let Some(addr) = handle.local_addr() {
        println!("oscar-serve: listening on {addr}");
    } else {
        println!(
            "oscar-serve: listening on {}",
            args.socket.as_deref().unwrap_or("?")
        );
    }
    loop {
        if TERMINATE.load(Ordering::Relaxed) {
            eprintln!("oscar-serve: signal received, draining");
            handle.drain();
            break;
        }
        if handle.state().is_shut_down() {
            // A client issued the `drain` verb.
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    println!("oscar-serve: drained, exiting");
}
