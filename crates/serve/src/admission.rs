//! Admission control: retry-after hints and deadline→priority mapping.
//!
//! The daemon never queues without bound. A submit that would exceed
//! the pending-queue capacity or the client's live-job quota is
//! rejected with a structured `retry_after_ms` computed here from the
//! observed job-latency distribution (the daemon's
//! [`oscar_obs::Histogram`] of job wall time in microseconds): the
//! backlog ahead of the client, divided by the executor concurrency,
//! times the median job latency — i.e. roughly when a queue slot
//! should free up. Before any job has completed (cold start) a
//! conservative default median is assumed. The histogram's log2
//! buckets make the median a ≤2x-coarse estimate, which is exactly the
//! precision a backoff hint needs — and unlike the sliding
//! sample window it replaced, recording is lock-free and the estimate
//! covers the daemon's whole lifetime.
//!
//! Deadlines map to dispatch priority the same way: a deadline tighter
//! than a few medians' worth of queue time cannot tolerate sitting
//! behind normal work, so it is admitted at [`Priority::High`];
//! anything looser keeps the requested (or Normal) priority and relies
//! on EDF ordering within its level.

use oscar_obs::Histogram;
use oscar_runtime::scheduler::Priority;
use std::time::Duration;

/// Assumed median job latency before the histogram has any samples.
const COLD_START_MEDIAN_S: f64 = 0.5;

/// Bounds on the retry-after hint.
const MIN_RETRY_S: f64 = 0.05;
const MAX_RETRY_S: f64 = 60.0;

/// Deadlines tighter than this many medians of estimated queue wait
/// are promoted to [`Priority::High`].
const TIGHT_DEADLINE_MEDIANS: f64 = 4.0;

/// The observed median job latency in seconds, or the cold-start
/// default while `latency_us` is empty.
fn observed_median_s(latency_us: &Histogram) -> f64 {
    if latency_us.count() == 0 {
        return COLD_START_MEDIAN_S;
    }
    latency_us.percentile(0.5) as f64 / 1e6
}

/// Estimated time until a queue slot frees up, given the current
/// backlog (`pending` queued + `running` in flight), the executor
/// concurrency, and the observed job-latency histogram (microseconds;
/// empty before the first completion). Clamped to `[50ms, 60s]` so a
/// degenerate distribution can neither hammer the daemon with instant
/// retries nor park clients forever.
pub fn retry_after(
    pending: usize,
    running: usize,
    concurrency: usize,
    latency_us: &Histogram,
) -> Duration {
    let median = observed_median_s(latency_us);
    let backlog = (pending + running) as f64;
    let slots = concurrency.max(1) as f64;
    let eta = median * (backlog / slots).max(1.0);
    Duration::from_secs_f64(eta.clamp(MIN_RETRY_S, MAX_RETRY_S))
}

/// The dispatch priority for a job admitted with `deadline` (time
/// until its start deadline) given the observed latency histogram:
/// tight deadlines are promoted to [`Priority::High`], loose ones keep
/// `requested` (or [`Priority::Normal`]). An explicit request is never
/// demoted — a client asking for High with a loose deadline gets High.
pub fn deadline_priority(
    requested: Option<Priority>,
    deadline: Duration,
    latency_us: &Histogram,
) -> Priority {
    let base = requested.unwrap_or(Priority::Normal);
    let median = observed_median_s(latency_us);
    if deadline.as_secs_f64() < TIGHT_DEADLINE_MEDIANS * median {
        base.max(Priority::High)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A histogram whose median sits at roughly `median_s` seconds.
    fn latency(median_s: f64) -> Histogram {
        let h = Histogram::new();
        h.record((median_s * 1e6) as u64);
        h
    }

    #[test]
    fn retry_scales_with_backlog_and_concurrency() {
        let h = latency(2.0);
        let small = retry_after(4, 2, 2, &h);
        let large = retry_after(40, 2, 2, &h);
        assert!(large > small, "{large:?} vs {small:?}");
        let wide = retry_after(40, 2, 8, &h);
        assert!(wide < large, "more executors drain the backlog faster");
    }

    #[test]
    fn retry_is_clamped_and_cold_start_safe() {
        // Empty histogram: the cold-start default median applies.
        assert_eq!(retry_after(0, 0, 4, &Histogram::new()).as_secs_f64(), 0.5);
        // Sub-microsecond jobs cannot drive the hint below the floor.
        let tiny = Histogram::new();
        tiny.record(0);
        assert!(retry_after(1, 0, 4, &tiny).as_secs_f64() >= 0.05);
        // A huge backlog of slow jobs saturates at the ceiling.
        assert!(retry_after(100_000, 0, 1, &latency(50.0)).as_secs_f64() <= 60.0);
    }

    #[test]
    fn tight_deadlines_promote_loose_ones_do_not() {
        let h = latency(1.0);
        assert_eq!(
            deadline_priority(None, Duration::from_millis(500), &h),
            Priority::High
        );
        assert_eq!(
            deadline_priority(None, Duration::from_secs(60), &h),
            Priority::Normal
        );
        // Explicit requests are never demoted.
        assert_eq!(
            deadline_priority(Some(Priority::High), Duration::from_secs(60), &h),
            Priority::High
        );
        assert_eq!(
            deadline_priority(Some(Priority::Low), Duration::from_secs(60), &h),
            Priority::Low
        );
    }

    #[test]
    fn histogram_median_is_within_bucket_precision() {
        // 2 s ≈ 2_000_000 µs lands in the bucket topping out below 2^21;
        // the estimate must stay within the histogram's 2x contract.
        let h = latency(2.0);
        let median = observed_median_s(&h);
        assert!(
            (1.0..=4.2).contains(&median),
            "median {median} out of the 2x bucket band around 2 s"
        );
    }
}
