//! Admission control: retry-after hints and deadline→priority mapping.
//!
//! The daemon never queues without bound. A submit that would exceed
//! the pending-queue capacity or the client's live-job quota is
//! rejected with a structured `retry_after_ms` computed here from the
//! observed job-latency percentiles ([`LatencyStats`] over the
//! daemon's sliding [`oscar_executor::latency::LatencyWindow`]): the
//! backlog ahead of the client, divided by the executor concurrency,
//! times the median job latency — i.e. roughly when a queue slot
//! should free up. Before any job has completed (cold start) a
//! conservative default median is assumed.
//!
//! Deadlines map to dispatch priority the same way: a deadline tighter
//! than a few medians' worth of queue time cannot tolerate sitting
//! behind normal work, so it is admitted at [`Priority::High`];
//! anything looser keeps the requested (or Normal) priority and relies
//! on EDF ordering within its level.

use oscar_executor::latency::LatencyStats;
use oscar_runtime::scheduler::Priority;
use std::time::Duration;

/// Assumed median job latency before the window has any samples.
const COLD_START_MEDIAN_S: f64 = 0.5;

/// Bounds on the retry-after hint.
const MIN_RETRY_S: f64 = 0.05;
const MAX_RETRY_S: f64 = 60.0;

/// Deadlines tighter than this many medians of estimated queue wait
/// are promoted to [`Priority::High`].
const TIGHT_DEADLINE_MEDIANS: f64 = 4.0;

/// Estimated time until a queue slot frees up, given the current
/// backlog (`pending` queued + `running` in flight), the executor
/// concurrency, and the observed latency percentiles (`None` before
/// the first completion). Clamped to `[50ms, 60s]` so a hostile or
/// degenerate window can neither hammer the daemon with instant
/// retries nor park clients forever.
pub fn retry_after(
    pending: usize,
    running: usize,
    concurrency: usize,
    stats: Option<LatencyStats>,
) -> Duration {
    let median = stats
        .map(|s| s.median)
        .filter(|m| m.is_finite() && *m > 0.0)
        .unwrap_or(COLD_START_MEDIAN_S);
    let backlog = (pending + running) as f64;
    let slots = concurrency.max(1) as f64;
    let eta = median * (backlog / slots).max(1.0);
    Duration::from_secs_f64(eta.clamp(MIN_RETRY_S, MAX_RETRY_S))
}

/// The dispatch priority for a job admitted with `deadline` (time
/// until its start deadline) given the current backlog estimate: tight
/// deadlines are promoted to [`Priority::High`], loose ones keep
/// `requested` (or [`Priority::Normal`]). An explicit request is never
/// demoted — a client asking for High with a loose deadline gets High.
pub fn deadline_priority(
    requested: Option<Priority>,
    deadline: Duration,
    stats: Option<LatencyStats>,
) -> Priority {
    let base = requested.unwrap_or(Priority::Normal);
    let median = stats
        .map(|s| s.median)
        .filter(|m| m.is_finite() && *m > 0.0)
        .unwrap_or(COLD_START_MEDIAN_S);
    if deadline.as_secs_f64() < TIGHT_DEADLINE_MEDIANS * median {
        base.max(Priority::High)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(median: f64, p99: f64) -> Option<LatencyStats> {
        Some(LatencyStats {
            median,
            p99,
            max: p99,
        })
    }

    #[test]
    fn retry_scales_with_backlog_and_concurrency() {
        let s = stats(2.0, 10.0);
        let small = retry_after(4, 2, 2, s);
        let large = retry_after(40, 2, 2, s);
        assert!(large > small, "{large:?} vs {small:?}");
        let wide = retry_after(40, 2, 8, s);
        assert!(wide < large, "more executors drain the backlog faster");
    }

    #[test]
    fn retry_is_clamped_and_cold_start_safe() {
        assert_eq!(retry_after(0, 0, 4, None).as_secs_f64(), 0.5);
        assert!(retry_after(1, 0, 4, stats(1e-9, 1e-9)).as_secs_f64() >= 0.05);
        assert!(retry_after(100_000, 0, 1, stats(50.0, 100.0)).as_secs_f64() <= 60.0);
        // A poisoned window (NaN median) falls back to the cold-start
        // default instead of propagating NaN into the protocol.
        let poisoned = stats(f64::NAN, f64::NAN);
        assert!(retry_after(1, 0, 1, poisoned).as_secs_f64().is_finite());
    }

    #[test]
    fn tight_deadlines_promote_loose_ones_do_not() {
        let s = stats(1.0, 5.0);
        assert_eq!(
            deadline_priority(None, Duration::from_millis(500), s),
            Priority::High
        );
        assert_eq!(
            deadline_priority(None, Duration::from_secs(60), s),
            Priority::Normal
        );
        // Explicit requests are never demoted.
        assert_eq!(
            deadline_priority(Some(Priority::High), Duration::from_secs(60), s),
            Priority::High
        );
        assert_eq!(
            deadline_priority(Some(Priority::Low), Duration::from_secs(60), s),
            Priority::Low
        );
    }
}
