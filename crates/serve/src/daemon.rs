//! The `oscar-serve` daemon: one [`BatchRuntime`] behind a socket.
//!
//! Thread-per-connection over a nonblocking accept loop. Every
//! connection reads line-delimited JSON requests ([`crate::proto`]),
//! executes them against the shared [`ServerState`], and writes one
//! reply line per request. The robustness contract, layer by layer:
//!
//! * **Admission control** — a submit is rejected (never queued) when
//!   the pending queue is at [`ServeConfig::max_pending`] or the
//!   client is at [`ServeConfig::per_client_quota`] live jobs; rejects
//!   carry a `retry_after_ms` hint from [`crate::admission`] fed by a
//!   daemon-local [`oscar_obs::Histogram`] of completed-job wall times
//!   (microseconds, lock-free to record).
//! * **Observability** — the `metrics` verb returns the process-wide
//!   [`oscar_obs::Registry`] snapshot (cache/pool/scheduler/stage
//!   metrics) plus daemon-local admission counters as JSON, and
//!   optionally Prometheus-style text ([`ServeConfig::metrics_text`]).
//! * **Deadlines** — `deadline_ms` maps to a dynamic [`Priority`] (a
//!   tight deadline is promoted to High) plus a hard start deadline in
//!   the scheduler; the periodic tick sweeps expired entries out of
//!   the queue ([`BatchRuntime::expire_overdue`]) so their waiters get
//!   the `expired` reply promptly.
//! * **Failure containment** — malformed lines get protocol error
//!   replies on the same connection; a client disconnect cancels that
//!   client's still-queued (never running) jobs; an executor panic
//!   surfaces as a `job-lost` reply; the job registry is bounded
//!   (settled entries are evicted oldest-first past
//!   [`ServeConfig::registry_capacity`]), so no workload pattern grows
//!   daemon memory without bound.
//! * **Graceful drain** — the `drain` verb (or SIGTERM in the binary,
//!   via [`DaemonHandle::drain`]) stops admission, lets running and
//!   queued jobs finish ([`BatchRuntime::drain`]), settles every
//!   registry entry so waiters flush, then shuts the daemon down.

use crate::admission;
use crate::json::Json;
use crate::proto::{result_to_json, ErrorCode, Request, RequestError, SubmitReq};
use oscar_obs::{Histogram, MetricValue, Registry};
use oscar_runtime::scheduler::{
    BatchRuntime, JobHandle, JobLost, JobStatus, Priority, RuntimeConfig, SubmitOptions,
};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration (all bounds have safe defaults).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Executor threads in the owned [`BatchRuntime`].
    pub concurrency: usize,
    /// Landscape-cache capacity of the runtime.
    pub cache_capacity: usize,
    /// Optional persistent landscape store directory
    /// ([`oscar_runtime::store::LandscapeStore`]): landscapes survive
    /// daemon restarts, so a recycled daemon serves a warm workload at
    /// reconstruction speed instead of regenerating every landscape.
    pub store_dir: Option<PathBuf>,
    /// Admission bound: submits are rejected `overloaded` while this
    /// many jobs are already queued.
    pub max_pending: usize,
    /// Admission bound: submits are rejected `quota-exceeded` while
    /// the client has this many unsettled jobs.
    pub per_client_quota: usize,
    /// Include Prometheus-style text exposition in `metrics` replies
    /// (the JSON registry snapshot is always included).
    pub metrics_text: bool,
    /// Request lines longer than this are rejected `line-too-long`.
    pub max_line_bytes: usize,
    /// Registry bound: settled jobs beyond this are evicted
    /// oldest-first (their results become `unknown-job`).
    pub registry_capacity: usize,
    /// Default `wait` bound when the request names none.
    pub default_wait_ms: u64,
    /// Accept-loop tick: expiry sweeps, settle sweeps, and shutdown
    /// checks run at this period, and connection reads poll at it.
    pub tick: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            concurrency: oscar_par::max_threads(),
            cache_capacity: 32,
            store_dir: None,
            max_pending: 64,
            per_client_quota: 16,
            metrics_text: false,
            max_line_bytes: 64 * 1024,
            registry_capacity: 4096,
            default_wait_ms: 30_000,
            tick: Duration::from_millis(25),
        }
    }
}

/// A settled job's terminal record.
enum Outcome {
    Done(Box<oscar_runtime::job::JobResult>),
    Cancelled,
    Expired,
    Lost,
}

impl Outcome {
    fn from_lost(lost: &JobLost) -> Outcome {
        if lost.was_cancelled() {
            Outcome::Cancelled
        } else if lost.was_expired() {
            Outcome::Expired
        } else {
            Outcome::Lost
        }
    }
}

/// Per-connection accounting shared with that client's job entries.
#[derive(Default)]
struct ClientSlot {
    /// Unsettled jobs submitted on this connection (the quota basis).
    live: AtomicUsize,
}

/// One registered job: the runtime handle plus its settled outcome.
struct JobEntry {
    id: u64,
    client: Arc<ClientSlot>,
    /// Held only for the duration of one bounded operation (a cancel,
    /// a status read, or one `wait` chunk of at most two ticks), so a
    /// blocked waiter can never starve another client's cancel.
    handle: Mutex<JobHandle>,
    outcome: Mutex<Option<Outcome>>,
    /// Set exactly once, when the outcome is stored (guards the
    /// client's live-count decrement).
    settled: AtomicBool,
}

impl JobEntry {
    /// Records the job's terminal outcome exactly once, releasing its
    /// quota slot and (for completions) feeding the latency window.
    fn settle(&self, state: &ServerState, outcome: Outcome) {
        if self
            .settled
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        if let Outcome::Done(result) = &outcome {
            state.latency_us.record_duration(result.wall);
        }
        *lock(&self.outcome) = Some(outcome);
        self.client.live.fetch_sub(1, Ordering::AcqRel);
    }

    /// Non-blocking settle attempt: fetches a finished result (or a
    /// terminal loss) out of the handle if one is ready.
    fn try_settle(&self, state: &ServerState) {
        if self.settled.load(Ordering::Acquire) {
            return;
        }
        let poll = {
            let handle = lock(&self.handle);
            handle.wait_timeout(Duration::ZERO)
        };
        match poll {
            Ok(Some(result)) => self.settle(state, Outcome::Done(Box::new(result))),
            Ok(None) => {}
            Err(lost) => self.settle(state, Outcome::from_lost(&lost)),
        }
    }

    /// The wire status string.
    fn status_str(&self) -> &'static str {
        if let Some(outcome) = lock(&self.outcome).as_ref() {
            return match outcome {
                Outcome::Done(_) => "done",
                Outcome::Cancelled => "cancelled",
                Outcome::Expired => "expired",
                Outcome::Lost => "failed",
            };
        }
        match lock(&self.handle).status() {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Expired => "expired",
            JobStatus::Failed => "failed",
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared daemon state: the runtime, the job registry, and counters.
pub struct ServerState {
    runtime: BatchRuntime,
    config: ServeConfig,
    jobs: Mutex<BTreeMap<u64, Arc<JobEntry>>>,
    /// Completed-job wall times in microseconds. Daemon-local (not in
    /// the global registry) so concurrent daemons in one process — the
    /// test suites run several — never pollute each other's admission
    /// estimates.
    latency_us: Histogram,
    draining: AtomicBool,
    shutdown: AtomicBool,
    connections: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_draining: AtomicU64,
    bad_requests: AtomicU64,
    disconnect_cancelled: AtomicU64,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState").finish_non_exhaustive()
    }
}

impl ServerState {
    fn new(config: ServeConfig) -> std::io::Result<Arc<ServerState>> {
        let store = match &config.store_dir {
            Some(dir) => Some(oscar_runtime::store::LandscapeStore::open(dir)?),
            None => None,
        };
        Ok(Arc::new(ServerState {
            runtime: BatchRuntime::new(RuntimeConfig {
                concurrency: config.concurrency.max(1),
                landscape_cache_capacity: config.cache_capacity.max(1),
                store,
            }),
            config,
            jobs: Mutex::new(BTreeMap::new()),
            latency_us: Histogram::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_quota: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            disconnect_cancelled: AtomicU64::new(0),
        }))
    }

    /// `true` once a drain (verb, SIGTERM, or shutdown) has begun:
    /// admission is closed.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// `true` once the daemon has been asked to stop its loops.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Graceful drain: closes admission, runs every admitted job to
    /// completion, settles all registry entries (flushing waiters),
    /// and requests shutdown. Idempotent; safe from any thread.
    pub fn drain_and_stop(&self) {
        self.draining.store(true, Ordering::Release);
        self.runtime.drain();
        let entries: Vec<Arc<JobEntry>> = lock(&self.jobs).values().cloned().collect();
        for entry in entries {
            entry.try_settle(self);
        }
        self.shutdown.store(true, Ordering::Release);
    }

    /// The periodic tick: sweep expired queue entries, settle finished
    /// jobs (feeding the latency histogram even when nobody waits), and
    /// evict settled entries past the registry bound.
    fn tick(&self) {
        self.runtime.expire_overdue();
        let entries: Vec<Arc<JobEntry>> = lock(&self.jobs).values().cloned().collect();
        for entry in &entries {
            entry.try_settle(self);
        }
        let mut jobs = lock(&self.jobs);
        if jobs.len() > self.config.registry_capacity {
            let excess = jobs.len() - self.config.registry_capacity;
            let evict: Vec<u64> = jobs
                .values()
                .filter(|e| e.settled.load(Ordering::Acquire))
                .take(excess)
                .map(|e| e.id)
                .collect();
            for id in evict {
                jobs.remove(&id);
            }
        }
    }

    fn entry(&self, id: u64) -> Option<Arc<JobEntry>> {
        lock(&self.jobs).get(&id).cloned()
    }

    fn handle_submit(&self, client: &Arc<ClientSlot>, req: &SubmitReq) -> Json {
        if self.is_draining() {
            self.rejected_draining.fetch_add(1, Ordering::Relaxed);
            return error_reply(
                ErrorCode::Draining,
                "daemon is draining; no new work is admitted",
                vec![],
            );
        }
        let pending = self.runtime.pending();
        let running = self.runtime.running() as usize;
        let retry = admission::retry_after(
            pending,
            running,
            self.runtime.concurrency(),
            &self.latency_us,
        );
        if client.live.load(Ordering::Acquire) >= self.config.per_client_quota {
            self.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return error_reply(
                ErrorCode::QuotaExceeded,
                &format!(
                    "client is at its quota of {} live jobs",
                    self.config.per_client_quota
                ),
                vec![retry_field(retry)],
            );
        }
        if pending >= self.config.max_pending {
            self.rejected_overload.fetch_add(1, Ordering::Relaxed);
            return error_reply(
                ErrorCode::Overloaded,
                &format!("pending queue is at capacity ({pending} jobs)"),
                vec![retry_field(retry)],
            );
        }
        let spec = match req.to_spec() {
            Ok(spec) => spec,
            Err(e) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                return error_reply(e.code, &e.message, vec![]);
            }
        };
        let mut opts = SubmitOptions::with_priority(req.priority.unwrap_or(Priority::Normal));
        if let Some(ms) = req.deadline_ms {
            let budget = Duration::from_millis(ms);
            opts.priority = admission::deadline_priority(req.priority, budget, &self.latency_us);
            opts = opts.deadline(Instant::now() + budget);
        }
        let priority = opts.priority;
        let handle = self.runtime.submit_opts(spec, opts);
        let id = handle.id();
        client.live.fetch_add(1, Ordering::AcqRel);
        let entry = Arc::new(JobEntry {
            id,
            client: Arc::clone(client),
            handle: Mutex::new(handle),
            outcome: Mutex::new(None),
            settled: AtomicBool::new(false),
        });
        lock(&self.jobs).insert(id, entry);
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("job".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::Str("queued".into())),
            (
                "priority".to_string(),
                Json::Str(
                    match priority {
                        Priority::Low => "low",
                        Priority::Normal => "normal",
                        Priority::High => "high",
                    }
                    .into(),
                ),
            ),
        ])
    }

    fn handle_cancel(&self, id: u64) -> Json {
        let Some(entry) = self.entry(id) else {
            return unknown_job(id);
        };
        let cancelled = if entry.settled.load(Ordering::Acquire) {
            false
        } else {
            let won = lock(&entry.handle).cancel();
            if won {
                entry.settle(self, Outcome::Cancelled);
            }
            won
        };
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("job".to_string(), Json::Num(id as f64)),
            ("cancelled".to_string(), Json::Bool(cancelled)),
            ("status".to_string(), Json::Str(entry.status_str().into())),
        ])
    }

    fn handle_status(&self, id: u64) -> Json {
        let Some(entry) = self.entry(id) else {
            return unknown_job(id);
        };
        entry.try_settle(self);
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("job".to_string(), Json::Num(id as f64)),
            ("status".to_string(), Json::Str(entry.status_str().into())),
        ])
    }

    fn handle_wait(&self, id: u64, timeout_ms: Option<u64>, include_values: bool) -> Json {
        let Some(entry) = self.entry(id) else {
            return unknown_job(id);
        };
        let total = Duration::from_millis(timeout_ms.unwrap_or(self.config.default_wait_ms));
        let deadline = Instant::now() + total;
        loop {
            if let Some(reply) = self.outcome_reply(&entry, include_values) {
                return reply;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            // Short chunks so the handle mutex is released often
            // (cancels interleave) and shutdown is noticed promptly.
            let chunk = remaining.min(self.config.tick * 2);
            let poll = {
                let handle = lock(&entry.handle);
                handle.wait_timeout(chunk)
            };
            match poll {
                Ok(Some(result)) => entry.settle(self, Outcome::Done(Box::new(result))),
                Err(lost) => entry.settle(self, Outcome::from_lost(&lost)),
                Ok(None) => {
                    if remaining.is_zero() {
                        return Json::Obj(vec![
                            ("ok".to_string(), Json::Bool(true)),
                            ("job".to_string(), Json::Num(id as f64)),
                            ("status".to_string(), Json::Str(entry.status_str().into())),
                            ("timed_out".to_string(), Json::Bool(true)),
                        ]);
                    }
                }
            }
        }
    }

    fn outcome_reply(&self, entry: &JobEntry, include_values: bool) -> Option<Json> {
        let outcome = lock(&entry.outcome);
        match outcome.as_ref()? {
            Outcome::Done(result) => Some(Json::Obj(vec![
                ("ok".to_string(), Json::Bool(true)),
                ("job".to_string(), Json::Num(entry.id as f64)),
                ("status".to_string(), Json::Str("done".into())),
                ("result".to_string(), result_to_json(result, include_values)),
            ])),
            Outcome::Cancelled => Some(lost_reply(entry.id, ErrorCode::Cancelled)),
            Outcome::Expired => Some(lost_reply(entry.id, ErrorCode::Expired)),
            Outcome::Lost => Some(lost_reply(entry.id, ErrorCode::JobLost)),
        }
    }

    fn handle_stats(&self) -> Json {
        let latency = self.latency_us.snapshot();
        // Histogram percentiles are bucket upper bounds: ≤2x-coarse
        // estimates, Null until the first job completes.
        let ms = |us: u64| {
            if latency.count == 0 {
                Json::Null
            } else {
                Json::Num(us as f64 / 1e3)
            }
        };
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            (
                "pending".to_string(),
                Json::Num(self.runtime.pending() as f64),
            ),
            (
                "running".to_string(),
                Json::Num(self.runtime.running() as f64),
            ),
            (
                "submitted".to_string(),
                Json::Num(self.runtime.submitted() as f64),
            ),
            (
                "completed".to_string(),
                Json::Num(self.runtime.completed() as f64),
            ),
            (
                "cancelled".to_string(),
                Json::Num(self.runtime.cancelled() as f64),
            ),
            (
                "expired".to_string(),
                Json::Num(self.runtime.expired() as f64),
            ),
            (
                "failed".to_string(),
                Json::Num(self.runtime.failed() as f64),
            ),
            (
                "max_pending".to_string(),
                Json::Num(self.config.max_pending as f64),
            ),
            (
                "per_client_quota".to_string(),
                Json::Num(self.config.per_client_quota as f64),
            ),
            (
                "connections".to_string(),
                Json::Num(self.connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_overload".to_string(),
                Json::Num(self.rejected_overload.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_quota".to_string(),
                Json::Num(self.rejected_quota.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_draining".to_string(),
                Json::Num(self.rejected_draining.load(Ordering::Relaxed) as f64),
            ),
            (
                "bad_requests".to_string(),
                Json::Num(self.bad_requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "disconnect_cancelled".to_string(),
                Json::Num(self.disconnect_cancelled.load(Ordering::Relaxed) as f64),
            ),
            ("median_latency_ms".to_string(), ms(latency.p50)),
            ("p99_latency_ms".to_string(), ms(latency.p99)),
            ("draining".to_string(), Json::Bool(self.is_draining())),
        ])
    }

    /// The `metrics` verb: the full process-wide registry snapshot
    /// (every `cache.*`, `pool.*`, `sched.*`, `stage.*` metric) under
    /// `"registry"`, daemon-local admission metrics under `"serve"`,
    /// and Prometheus-style text under `"text"` when configured.
    fn handle_metrics(&self) -> Json {
        let registry = Registry::global();
        let registry_fields: Vec<(String, Json)> = registry
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name, metric_value_to_json(&value)))
            .collect();
        let serve_fields = vec![
            (
                "job_latency_us".to_string(),
                metric_value_to_json(&MetricValue::Histogram(self.latency_us.snapshot())),
            ),
            (
                "connections".to_string(),
                Json::Num(self.connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_overload".to_string(),
                Json::Num(self.rejected_overload.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_quota".to_string(),
                Json::Num(self.rejected_quota.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_draining".to_string(),
                Json::Num(self.rejected_draining.load(Ordering::Relaxed) as f64),
            ),
            (
                "bad_requests".to_string(),
                Json::Num(self.bad_requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "disconnect_cancelled".to_string(),
                Json::Num(self.disconnect_cancelled.load(Ordering::Relaxed) as f64),
            ),
        ];
        let mut fields = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("registry".to_string(), Json::Obj(registry_fields)),
            ("serve".to_string(), Json::Obj(serve_fields)),
        ];
        if self.config.metrics_text {
            fields.push(("text".to_string(), Json::Str(registry.render_prometheus())));
        }
        Json::Obj(fields)
    }

    fn handle_drain(&self) -> Json {
        self.drain_and_stop();
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("drained".to_string(), Json::Bool(true)),
            (
                "completed".to_string(),
                Json::Num(self.runtime.completed() as f64),
            ),
        ])
    }
}

/// Render a registry metric value for the `metrics` reply: counters and
/// gauges become plain numbers, histograms a `{count, sum, p50, p90,
/// p99}` object (percentiles are log2-bucket upper bounds).
fn metric_value_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::Num(*v as f64),
        MetricValue::Gauge(v) => Json::Num(*v as f64),
        MetricValue::Histogram(snap) => Json::Obj(vec![
            ("count".to_string(), Json::Num(snap.count as f64)),
            ("sum".to_string(), Json::Num(snap.sum as f64)),
            ("p50".to_string(), Json::Num(snap.p50 as f64)),
            ("p90".to_string(), Json::Num(snap.p90 as f64)),
            ("p99".to_string(), Json::Num(snap.p99 as f64)),
        ]),
    }
}

fn retry_field(retry: Duration) -> (String, Json) {
    (
        "retry_after_ms".to_string(),
        Json::Num((retry.as_secs_f64() * 1e3).ceil()),
    )
}

fn error_reply(code: ErrorCode, message: &str, extra: Vec<(String, Json)>) -> Json {
    let mut fields = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(code.as_str().into())),
        ("message".to_string(), Json::Str(message.into())),
    ];
    fields.extend(extra);
    Json::Obj(fields)
}

fn lost_reply(id: u64, code: ErrorCode) -> Json {
    let message = match code {
        ErrorCode::Cancelled => "job was cancelled before it ran",
        ErrorCode::Expired => "job's deadline expired before it ran",
        _ => "job was lost (it panicked or the runtime shut down)",
    };
    error_reply(
        code,
        message,
        vec![("job".to_string(), Json::Num(id as f64))],
    )
}

fn unknown_job(id: u64) -> Json {
    error_reply(
        ErrorCode::UnknownJob,
        &format!("no job {id} is registered (never submitted, or evicted)"),
        vec![],
    )
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }

    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.write_all(bytes),
            Conn::Tcp(s) => s.write_all(bytes),
        }
    }
}

/// A running daemon: its shared state plus the accept-loop thread.
///
/// Dropping the handle shuts the daemon down (without draining —
/// queued jobs are lost); call [`Self::drain`] first for a graceful
/// stop, or use the `drain` verb from a client.
pub struct DaemonHandle {
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    socket_path: Option<PathBuf>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("local_addr", &self.local_addr)
            .field("socket_path", &self.socket_path)
            .finish_non_exhaustive()
    }
}

impl DaemonHandle {
    /// The shared daemon state (counters, drain control).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The bound TCP address (for `--listen 127.0.0.1:0` setups);
    /// `None` for Unix-socket daemons.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Graceful drain: stop admission, finish everything, flush
    /// waiters, stop the daemon. The SIGTERM path of the binary.
    pub fn drain(&self) {
        self.state.drain_and_stop();
    }

    /// Blocks until the accept loop (and every connection thread) has
    /// exited. Call after [`Self::drain`] or after a client issued the
    /// `drain` verb.
    pub fn join(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(path) = self.socket_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Starts a daemon on a Unix socket at `path` (a stale socket file
/// from a previous run is removed first).
pub fn spawn_unix(path: impl AsRef<Path>, config: ServeConfig) -> std::io::Result<DaemonHandle> {
    let path = path.as_ref().to_path_buf();
    if path.exists() {
        std::fs::remove_file(&path)?;
    }
    let listener = UnixListener::bind(&path)?;
    listener.set_nonblocking(true)?;
    spawn(Listener::Unix(listener), config, None, Some(path))
}

/// Starts a daemon on a TCP socket (`addr` like `127.0.0.1:7070`;
/// port 0 picks a free port — read it back via
/// [`DaemonHandle::local_addr`]).
pub fn spawn_tcp(addr: &str, config: ServeConfig) -> std::io::Result<DaemonHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    spawn(Listener::Tcp(listener), config, Some(local), None)
}

fn spawn(
    listener: Listener,
    config: ServeConfig,
    local_addr: Option<SocketAddr>,
    socket_path: Option<PathBuf>,
) -> std::io::Result<DaemonHandle> {
    let state = ServerState::new(config)?;
    let accept_state = Arc::clone(&state);
    let accept = std::thread::Builder::new()
        .name("oscar-serve-accept".into())
        .spawn(move || accept_loop(listener, &accept_state))?;
    Ok(DaemonHandle {
        state,
        accept: Some(accept),
        local_addr,
        socket_path,
    })
}

fn accept_loop(listener: Listener, state: &Arc<ServerState>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !state.is_shut_down() {
        let conn = match &listener {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        };
        match conn {
            Ok(conn) => {
                let state = Arc::clone(state);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("oscar-serve-conn".into())
                    .spawn(move || connection_loop(conn, &state))
                {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                state.tick();
                std::thread::sleep(state.config.tick);
                connections.retain(|c| !c.is_finished());
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off a
                // tick rather than spinning or dying.
                std::thread::sleep(state.config.tick);
            }
        }
    }
    for conn in connections {
        let _ = conn.join();
    }
}

fn connection_loop(mut conn: Conn, state: &Arc<ServerState>) {
    if conn.set_read_timeout(state.config.tick).is_err() {
        return;
    }
    state.connections.fetch_add(1, Ordering::Relaxed);
    let client = Arc::new(ClientSlot::default());
    let mut submitted: Vec<u64> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // When a line overflows the bound we reply once, then discard
    // bytes up to the next newline to resynchronize.
    let mut discarding = false;
    let mut clean_shutdown = false;

    'conn: loop {
        if state.is_shut_down() {
            clean_shutdown = true;
            break;
        }
        match conn.read_some(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    if discarding {
                        discarding = false;
                        continue;
                    }
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    // A complete line can still exceed the bound when
                    // the whole thing (newline included) lands in one
                    // read — enforcement must not depend on how the
                    // kernel segments the byte stream.
                    if line.len() > state.config.max_line_bytes {
                        if conn.write_all_bytes(&line_too_long_reply(state)).is_err() {
                            break 'conn;
                        }
                        continue;
                    }
                    let (reply, drain) = handle_line(state, &client, &mut submitted, line);
                    let mut bytes = reply.to_string_compact().into_bytes();
                    bytes.push(b'\n');
                    if conn.write_all_bytes(&bytes).is_err() {
                        break 'conn;
                    }
                    if drain {
                        clean_shutdown = true;
                        break 'conn;
                    }
                }
                if buf.len() > state.config.max_line_bytes {
                    buf.clear();
                    discarding = true;
                    if conn.write_all_bytes(&line_too_long_reply(state)).is_err() {
                        break 'conn;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        }
    }

    // Failure containment: a dying client's still-queued jobs are
    // cancelled (running jobs finish — their results may be claimed by
    // another connection). A clean shutdown (drain) keeps everything.
    if !clean_shutdown && !state.is_draining() {
        for id in submitted {
            if let Some(entry) = state.entry(id) {
                if !entry.settled.load(Ordering::Acquire) && lock(&entry.handle).cancel() {
                    entry.settle(state, Outcome::Cancelled);
                    state.disconnect_cancelled.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    state.connections.fetch_sub(1, Ordering::Relaxed);
}

/// The wire bytes of a `line-too-long` reply (newline included).
fn line_too_long_reply(state: &Arc<ServerState>) -> Vec<u8> {
    let reply = error_reply(
        ErrorCode::LineTooLong,
        &format!("request line exceeds {} bytes", state.config.max_line_bytes),
        vec![],
    );
    let mut bytes = reply.to_string_compact().into_bytes();
    bytes.push(b'\n');
    bytes
}

/// Parses and executes one request line; returns the reply and whether
/// the connection (and daemon) should now shut down (drain verb).
fn handle_line(
    state: &Arc<ServerState>,
    client: &Arc<ClientSlot>,
    submitted: &mut Vec<u64>,
    line: &str,
) -> (Json, bool) {
    let parsed = match crate::json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            state.bad_requests.fetch_add(1, Ordering::Relaxed);
            return (
                error_reply(ErrorCode::BadJson, &format!("invalid JSON: {e}"), vec![]),
                false,
            );
        }
    };
    let request = match Request::from_json(&parsed) {
        Ok(r) => r,
        Err(RequestError { code, message }) => {
            state.bad_requests.fetch_add(1, Ordering::Relaxed);
            return (error_reply(code, &message, vec![]), false);
        }
    };
    match request {
        Request::Submit(req) => {
            let reply = state.handle_submit(client, &req);
            if let Some(id) = reply.get("job").and_then(Json::as_u64) {
                submitted.push(id);
            }
            (reply, false)
        }
        Request::Cancel { job } => (state.handle_cancel(job), false),
        Request::Status { job } => (state.handle_status(job), false),
        Request::Wait {
            job,
            timeout_ms,
            include_values,
        } => (state.handle_wait(job, timeout_ms, include_values), false),
        Request::Stats => (state.handle_stats(), false),
        Request::Metrics => (state.handle_metrics(), false),
        Request::Drain => (state.handle_drain(), true),
    }
}
