//! `oscar-serve`: a fault-tolerant batch service daemon over the OSCAR
//! runtime.
//!
//! One daemon owns one [`BatchRuntime`] and speaks line-delimited JSON
//! over a Unix socket (or TCP): `submit`, `cancel`, `status`, `wait`,
//! `stats`, and `drain` verbs. The crate is std-only — the wire format
//! ([`json`]), the protocol ([`proto`]), the admission policy
//! ([`admission`]), the daemon ([`daemon`]), and a well-behaved client
//! ([`client`]) are all hand-rolled, with a deterministic
//! fault-injection harness ([`fault`], behind the `fault` feature)
//! scripting the misbehaviour the integration suite asserts against.
//!
//! The design centers on four robustness layers (see [`daemon`] for
//! the full contract): bounded admission with structured
//! `retry_after_ms` rejects, deadline-aware scheduling with
//! server-side expiry, failure containment (protocol errors, client
//! disconnects, executor panics), and graceful drain on the `drain`
//! verb or SIGTERM.
//!
//! Results are bit-identical to the library path: a `submit` body maps
//! to a [`proto::SubmitReq`] whose [`proto::SubmitReq::to_spec`] is
//! the single source of truth, so `oscar_runtime::run_job` on the same
//! request reproduces the served result exactly (the wire carries an
//! FNV-1a checksum over the result's f64 bit patterns as proof).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod admission;
pub mod client;
pub mod daemon;
#[cfg(feature = "fault")]
pub mod fault;
pub mod json;
pub mod proto;

pub use client::Client;
pub use daemon::{spawn_tcp, spawn_unix, DaemonHandle, ServeConfig, ServerState};
pub use json::Json;
pub use proto::{result_checksum, ErrorCode, SubmitReq};

// Referenced by the crate docs.
#[allow(unused_imports)]
use oscar_runtime::scheduler::BatchRuntime;
