//! A minimal JSON value, parser, and writer (std-only).
//!
//! The wire format of `oscar-serve` is one JSON object per line, and
//! this build environment has no crates.io access — so the daemon
//! carries its own ~300-line JSON subset instead of serde. It supports
//! the full value grammar the protocol uses (objects, arrays, strings
//! with escapes, numbers, booleans, null) with two deliberate
//! robustness bounds: nesting depth is capped (a hostile
//! `[[[[...]]]]` line cannot blow the stack) and parsing never panics —
//! every malformed input returns a [`JsonError`] the connection layer
//! turns into a protocol error reply.
//!
//! Numbers are `f64`. Writing uses Rust's shortest-roundtrip `Display`,
//! so any finite `f64` written here parses back bit-identically —
//! the property the `--compare` path and the fault suite rely on to
//! check daemon results against the library path. Non-finite numbers
//! serialize as `null` (JSON has no NaN/inf).

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

/// Why a line failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first occurrence; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// numbers too large for an exact `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x >= 0.0 && x <= 2f64.powi(53) && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest-roundtrip Display: parses back bit-exact.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value from `text` (leading/trailing whitespace
/// allowed, nothing else may follow).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            // Overflowing literals (e.g. 1e999) parse to infinity;
            // reject them rather than smuggle non-finite values in.
            _ => Err(self.err("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    // SAFETY: the input arrived as a &str and `pos`
                    // only ever advances by whole scalar widths, so
                    // `rest` starts on a UTF-8 boundary.
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = match s.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: require the low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u', "expected low surrogate")?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let v = Json::Obj(vec![
            ("verb".into(), Json::Str("submit".into())),
            ("qubits".into(), Json::Num(8.0)),
            ("fraction".into(), Json::Num(0.25)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("x\"\n".into())]),
            ),
        ]);
        let text = v.to_string_compact();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            2f64.powi(53),
            -0.0,
        ] {
            let text = Json::Num(x).to_string_compact();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn rejects_depth_bombs_without_overflow() {
        let bomb = "[".repeat(10_000);
        assert!(parse(&bomb).is_err());
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "1e999",
            "nan",
            "{} trailing",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndA😀é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndA\u{1F600}é");
        let esc = parse("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(esc.as_str().unwrap(), "A\u{1F600}");
        assert!(parse(r#""\ud83d alone""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
