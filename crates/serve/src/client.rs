//! A small well-behaved client for the `oscar-serve` protocol.
//!
//! Used by `oscar-batch --connect` and the integration suite. One
//! request per call: write a compact JSON line, read one reply line,
//! parse it. The misbehaving counterpart (partial writes, slow reads,
//! abrupt drops) lives in [`crate::fault`] behind the `fault` feature.

use crate::json::{self, Json};
use crate::proto::SubmitReq;
use std::io::{BufRead, BufReader, Error, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    fn write_all_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.write_all(bytes),
            Stream::Tcp(s) => s.write_all(bytes),
        }
    }
}

/// A connected protocol client (one line-delimited JSON exchange per
/// [`Self::request`]).
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to a Unix socket daemon.
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> std::io::Result<Client> {
        Client::from_stream(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Connects to a TCP daemon (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        Client::from_stream(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects to `addr`, treating it as `host:port` when it parses
    /// as a socket address and as a Unix socket path otherwise.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        if addr.parse::<std::net::SocketAddr>().is_ok() {
            Client::connect_tcp(addr)
        } else {
            Client::connect_unix(addr)
        }
    }

    fn from_stream(stream: Stream) -> std::io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Bounds how long [`Self::request`] waits for a reply line
    /// (`None` waits indefinitely, the default).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and reads one reply line. A closed connection
    /// surfaces as [`ErrorKind::UnexpectedEof`]; an unparseable reply
    /// as [`ErrorKind::InvalidData`].
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        let mut line = request.to_string_compact().into_bytes();
        line.push(b'\n');
        self.writer.write_all_bytes(&line)?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        json::parse(reply.trim())
            .map_err(|e| Error::new(ErrorKind::InvalidData, format!("bad reply: {e}")))
    }

    /// Submits a job; returns the raw reply (check `ok` / `job`).
    pub fn submit(&mut self, req: &SubmitReq) -> std::io::Result<Json> {
        self.request(&req.to_json())
    }

    /// Waits for `job` with an optional server-side timeout.
    pub fn wait(
        &mut self,
        job: u64,
        timeout_ms: Option<u64>,
        include_values: bool,
    ) -> std::io::Result<Json> {
        let mut fields = vec![
            ("verb".to_string(), Json::Str("wait".into())),
            ("job".to_string(), Json::Num(job as f64)),
        ];
        if let Some(ms) = timeout_ms {
            fields.push(("timeout_ms".to_string(), Json::Num(ms as f64)));
        }
        if include_values {
            fields.push(("include_values".to_string(), Json::Bool(true)));
        }
        self.request(&Json::Obj(fields))
    }

    /// Queries `job`'s status without blocking on it.
    pub fn status(&mut self, job: u64) -> std::io::Result<Json> {
        self.request(&Json::Obj(vec![
            ("verb".to_string(), Json::Str("status".into())),
            ("job".to_string(), Json::Num(job as f64)),
        ]))
    }

    /// Requests cancellation of `job`.
    pub fn cancel(&mut self, job: u64) -> std::io::Result<Json> {
        self.request(&Json::Obj(vec![
            ("verb".to_string(), Json::Str("cancel".into())),
            ("job".to_string(), Json::Num(job as f64)),
        ]))
    }

    /// Fetches daemon counters and latency percentiles.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::Obj(vec![(
            "verb".to_string(),
            Json::Str("stats".into()),
        )]))
    }

    /// Fetches the full metrics registry snapshot (plus daemon-local
    /// admission metrics, and Prometheus text when the daemon was
    /// started with `--metrics-text`).
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        self.request(&Json::Obj(vec![(
            "verb".to_string(),
            Json::Str("metrics".into()),
        )]))
    }

    /// Asks the daemon to drain and shut down; returns its final
    /// reply. The connection is unusable afterwards.
    pub fn drain(&mut self) -> std::io::Result<Json> {
        self.request(&Json::Obj(vec![(
            "verb".to_string(),
            Json::Str("drain".into()),
        )]))
    }
}
