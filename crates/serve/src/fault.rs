//! Deterministic fault-injection harness (cfg-gated, tests only).
//!
//! A [`RawClient`] is the misbehaving twin of [`crate::client::Client`]:
//! it writes arbitrary bytes (including partial lines and garbage),
//! reads deliberately slowly, and drops connections mid-exchange —
//! everything a flaky or hostile network peer does. The integration
//! suite scripts these against a live daemon and asserts the contract:
//! structured error replies, no hangs, no daemon death, queued-job
//! cancellation on disconnect.
//!
//! All helpers are synchronous and deterministic: a scripted scenario
//! produces the same daemon-visible byte sequence every run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// A protocol client with no manners: raw byte writes, slow reads,
/// abrupt drops.
pub struct RawClient {
    stream: Stream,
}

impl std::fmt::Debug for RawClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawClient").finish_non_exhaustive()
    }
}

impl RawClient {
    /// Connects to a Unix socket daemon.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<RawClient> {
        Ok(RawClient {
            stream: Stream::Unix(UnixStream::connect(path)?),
        })
    }

    /// Connects to a TCP daemon.
    pub fn connect_tcp(addr: &str) -> std::io::Result<RawClient> {
        Ok(RawClient {
            stream: Stream::Tcp(TcpStream::connect(addr)?),
        })
    }

    /// Bounds how long reads block (`None` blocks indefinitely).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.stream {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Writes raw bytes exactly as given — no newline is appended, so
    /// partial lines stay partial.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match &mut self.stream {
            Stream::Unix(s) => s.write_all(bytes),
            Stream::Tcp(s) => s.write_all(bytes),
        }
    }

    /// Writes `line` plus the terminating newline.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.send_bytes(line.as_bytes())?;
        self.send_bytes(b"\n")
    }

    fn read_byte(&mut self) -> std::io::Result<Option<u8>> {
        let mut byte = [0u8; 1];
        let n = match &mut self.stream {
            Stream::Unix(s) => s.read(&mut byte)?,
            Stream::Tcp(s) => s.read(&mut byte)?,
        };
        Ok(if n == 0 { None } else { Some(byte[0]) })
    }

    /// Reads one reply line (without the newline). `Ok(None)` means
    /// the daemon closed the connection.
    pub fn read_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = Vec::new();
        loop {
            match self.read_byte()? {
                None => {
                    return Ok(if line.is_empty() {
                        None
                    } else {
                        Some(String::from_utf8_lossy(&line).into_owned())
                    })
                }
                Some(b'\n') => return Ok(Some(String::from_utf8_lossy(&line).into_owned())),
                Some(b) => line.push(b),
            }
        }
    }

    /// Reads one reply line a byte at a time, sleeping `per_byte`
    /// between reads — a slow reader that must not stall the daemon's
    /// other connections.
    pub fn read_line_slowly(&mut self, per_byte: Duration) -> std::io::Result<Option<String>> {
        let mut line = Vec::new();
        loop {
            match self.read_byte()? {
                None => {
                    return Ok(if line.is_empty() {
                        None
                    } else {
                        Some(String::from_utf8_lossy(&line).into_owned())
                    })
                }
                Some(b'\n') => return Ok(Some(String::from_utf8_lossy(&line).into_owned())),
                Some(b) => {
                    line.push(b);
                    std::thread::sleep(per_byte);
                }
            }
        }
    }

    /// Drops the connection abruptly (consumes the client so nothing
    /// can be read or written afterwards).
    pub fn drop_now(self) {}
}
