//! Deterministic fault-injection suite for the `oscar-serve` daemon.
//!
//! Each test spawns an in-process daemon on its own Unix socket and
//! scripts a failure scenario through `fault::RawClient` (malformed
//! bytes, abrupt drops, slow reads) or through ordinary clients under
//! hostile configurations (tiny queues, tight deadlines, mid-job
//! drain), then asserts the robustness contract: structured error
//! replies, bounded queues, server-side cancellation, and results
//! bit-identical to the library path.

use oscar_serve::daemon::{spawn_unix, ServeConfig};
use oscar_serve::fault::RawClient;
use oscar_serve::json::Json;
use oscar_serve::proto::{result_checksum, SubmitReq};
use oscar_serve::Client;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn sock(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("oscar-serve-{}-{name}.sock", std::process::id()))
}

/// A millisecond-scale job.
fn quick(seed: u64) -> SubmitReq {
    SubmitReq::new(4, seed, 8, 10, 0.3)
}

/// A job that keeps one executor busy for hundreds of milliseconds.
fn blocker() -> SubmitReq {
    SubmitReq::new(10, 0, 30, 30, 0.2)
}

fn tight_config() -> ServeConfig {
    ServeConfig {
        concurrency: 1,
        tick: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

fn is_ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

fn err_code(reply: &Json) -> Option<&str> {
    reply.get("error").and_then(Json::as_str)
}

fn submit_ok(client: &mut Client, req: &SubmitReq) -> u64 {
    let reply = client.submit(req).expect("submit io");
    assert!(
        is_ok(&reply),
        "submit rejected: {}",
        reply.to_string_compact()
    );
    reply.get("job").and_then(Json::as_u64).expect("job id")
}

fn status_of(client: &mut Client, job: u64) -> String {
    let reply = client.status(job).expect("status io");
    reply
        .get("status")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| err_code(&reply).expect("status or error").to_string())
}

/// Polls `stats` until the daemon reports the blocker running and the
/// queue empty, so subsequently submitted jobs are definitely queued.
fn wait_until_busy(client: &mut Client) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats io");
        let running = stats.get("running").and_then(Json::as_u64).unwrap_or(0);
        let pending = stats.get("pending").and_then(Json::as_u64).unwrap_or(0);
        if running >= 1 && pending == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "blocker never started running");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn poll_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let path = sock("malformed");
    let config = ServeConfig {
        max_line_bytes: 256,
        ..tight_config()
    };
    let daemon = spawn_unix(&path, config).expect("spawn");
    let mut raw = RawClient::connect_unix(&path).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let exchange = |raw: &mut RawClient, line: &str| -> Json {
        raw.send_line(line).expect("send");
        let reply = raw.read_line().expect("read").expect("reply line");
        oscar_serve::json::parse(&reply).expect("reply parses")
    };

    // Not JSON at all.
    let reply = exchange(&mut raw, "this is not json {{{");
    assert_eq!(err_code(&reply), Some("bad-json"));
    // Valid JSON, unknown verb.
    let reply = exchange(&mut raw, r#"{"verb":"reboot"}"#);
    assert_eq!(err_code(&reply), Some("unknown-verb"));
    // Known verb, missing field.
    let reply = exchange(&mut raw, r#"{"verb":"cancel"}"#);
    assert_eq!(err_code(&reply), Some("bad-request"));
    // Out-of-range submit.
    let reply = exchange(
        &mut raw,
        r#"{"verb":"submit","qubits":99,"seed":1,"rows":8,"cols":8,"fraction":0.3}"#,
    );
    assert_eq!(err_code(&reply), Some("bad-request"));
    // A line past the byte bound.
    let giant = format!("{{\"verb\":\"stats\",\"pad\":\"{}\"}}", "x".repeat(600));
    let reply = exchange(&mut raw, &giant);
    assert_eq!(err_code(&reply), Some("line-too-long"));
    // A request split across writes still parses once the newline lands.
    raw.send_bytes(b"{\"verb\":\"st").expect("partial");
    std::thread::sleep(Duration::from_millis(30));
    raw.send_bytes(b"ats\"}\n").expect("rest");
    let reply = oscar_serve::json::parse(&raw.read_line().unwrap().unwrap()).unwrap();
    assert!(is_ok(&reply), "connection must survive all of the above");
    assert!(
        reply.get("bad_requests").and_then(Json::as_u64).unwrap() >= 3,
        "protocol errors are counted"
    );
    drop(daemon);
}

#[test]
fn dropped_connection_cancels_its_queued_jobs_only() {
    let path = sock("disconnect");
    let daemon = spawn_unix(&path, tight_config()).expect("spawn");
    let mut observer = Client::connect_unix(&path).expect("connect observer");

    // Keep the single executor busy so everything else queues.
    let blocker_id = submit_ok(&mut observer, &blocker());
    wait_until_busy(&mut observer);
    let survivor_id = submit_ok(&mut observer, &quick(11));

    // The doomed client queues a job of its own, then vanishes.
    let mut doomed = Client::connect_unix(&path).expect("connect doomed");
    let doomed_id = submit_ok(&mut doomed, &quick(12));
    drop(doomed);

    poll_until("disconnect cancellation", || {
        status_of(&mut observer, doomed_id) == "cancelled"
    });
    // The observer's own jobs are untouched by the other client's death.
    let reply = observer.wait(survivor_id, Some(30_000), false).unwrap();
    assert!(is_ok(&reply), "{}", reply.to_string_compact());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("done"));
    let reply = observer.wait(blocker_id, Some(30_000), false).unwrap();
    assert!(is_ok(&reply));
    let stats = observer.stats().unwrap();
    assert_eq!(
        stats.get("disconnect_cancelled").and_then(Json::as_u64),
        Some(1)
    );
    drop(daemon);
}

#[test]
fn slow_reader_does_not_stall_other_clients() {
    let path = sock("slowread");
    let daemon = spawn_unix(&path, ServeConfig::default()).expect("spawn");

    let slow_path = path.clone();
    let slow = std::thread::spawn(move || {
        let mut raw = RawClient::connect_unix(&slow_path).expect("connect slow");
        raw.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        raw.send_line(r#"{"verb":"stats"}"#).expect("send");
        // Drain the (long) stats reply two milliseconds per byte.
        raw.read_line_slowly(Duration::from_millis(2))
            .expect("slow read")
            .expect("reply")
    });

    // While the slow reader crawls, a normal client stays snappy.
    let mut fast = Client::connect_unix(&path).expect("connect fast");
    fast.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for _ in 0..5 {
        let started = Instant::now();
        let reply = fast.stats().expect("fast stats");
        assert!(is_ok(&reply));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fast client stalled behind a slow reader"
        );
    }
    let reply = slow.join().expect("slow thread");
    assert!(is_ok(&oscar_serve::json::parse(&reply).unwrap()));
    drop(daemon);
}

#[test]
fn overflow_storm_gets_structured_rejects_and_a_bounded_queue() {
    let path = sock("overflow");
    let config = ServeConfig {
        max_pending: 2,
        per_client_quota: 64,
        ..tight_config()
    };
    let daemon = spawn_unix(&path, config).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    submit_ok(&mut client, &blocker());
    wait_until_busy(&mut client);
    let mut accepted = vec![
        submit_ok(&mut client, &quick(21)),
        submit_ok(&mut client, &quick(22)),
    ];

    // The storm: every further submit must be rejected, structurally.
    for seed in 0..10 {
        let reply = client.submit(&quick(100 + seed)).expect("submit io");
        assert!(!is_ok(&reply), "queue must be bounded");
        assert_eq!(err_code(&reply), Some("overloaded"));
        let retry = reply
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .expect("reject carries retry_after_ms");
        assert!(retry > 0.0 && retry <= 60_000.0, "retry hint sane: {retry}");
        let stats = client.stats().expect("stats io");
        assert!(
            stats.get("pending").and_then(Json::as_u64).unwrap() <= 2,
            "pending queue never exceeds the bound"
        );
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("rejected_overload").and_then(Json::as_u64),
        Some(10)
    );

    // Everything that was admitted completes normally.
    for id in accepted.drain(..) {
        let reply = client.wait(id, Some(30_000), false).expect("wait io");
        assert!(is_ok(&reply), "{}", reply.to_string_compact());
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("done"));
    }
    drop(daemon);
}

#[test]
fn quota_rejects_with_retry_hint_and_frees_on_cancel() {
    let path = sock("quota");
    let config = ServeConfig {
        per_client_quota: 2,
        ..tight_config()
    };
    let daemon = spawn_unix(&path, config).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    submit_ok(&mut client, &blocker());
    wait_until_busy(&mut client);
    let queued = submit_ok(&mut client, &quick(31));
    let reply = client.submit(&quick(32)).expect("submit io");
    assert_eq!(err_code(&reply), Some("quota-exceeded"));
    assert!(reply.get("retry_after_ms").and_then(Json::as_f64).is_some());

    // Cancelling a queued job frees its quota slot immediately.
    let reply = client.cancel(queued).expect("cancel io");
    assert_eq!(reply.get("cancelled").and_then(Json::as_bool), Some(true));
    submit_ok(&mut client, &quick(33));
    drop(daemon);
}

#[test]
fn expired_deadline_is_reported_as_expired_server_side() {
    let path = sock("deadline");
    let daemon = spawn_unix(&path, tight_config()).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    submit_ok(&mut client, &blocker());
    wait_until_busy(&mut client);
    let mut doomed = quick(41);
    doomed.deadline_ms = Some(30);
    let id = submit_ok(&mut client, &doomed);

    // The periodic sweep cancels it without anyone waiting on it.
    poll_until("deadline expiry", || {
        status_of(&mut client, id) == "expired"
    });
    let reply = client.wait(id, Some(1_000), false).unwrap();
    assert!(!is_ok(&reply));
    assert_eq!(err_code(&reply), Some("expired"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("expired").and_then(Json::as_u64), Some(1));
    drop(daemon);
}

#[test]
fn served_results_are_bit_identical_to_the_library_path() {
    let path = sock("bitident");
    let config = ServeConfig {
        concurrency: 2,
        ..ServeConfig::default()
    };
    let daemon = spawn_unix(&path, config).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    for seed in [1u64, 2, 3] {
        let req = quick(seed);
        let id = submit_ok(&mut client, &req);
        let reply = client.wait(id, Some(30_000), true).expect("wait io");
        assert!(is_ok(&reply), "{}", reply.to_string_compact());
        let result = reply.get("result").expect("result object");

        let local = oscar_runtime::job::run_job(&req.to_spec().unwrap(), None);
        assert_eq!(
            result.get("checksum").and_then(Json::as_str).unwrap(),
            format!("{:016x}", result_checksum(&local)),
            "served checksum differs from the library path (seed {seed})"
        );
        // And not just the checksum: every value round-trips bit-exactly.
        let served = result.get("values").and_then(Json::as_arr).unwrap();
        let expected = local.reconstruction.values();
        assert_eq!(served.len(), expected.len());
        for (i, (s, e)) in served.iter().zip(expected).enumerate() {
            assert_eq!(
                s.as_f64().unwrap().to_bits(),
                e.to_bits(),
                "value {i} differs (seed {seed})"
            );
        }
        assert_eq!(
            result
                .get("nrmse")
                .and_then(Json::as_f64)
                .unwrap()
                .to_bits(),
            local.nrmse.to_bits()
        );
    }
    drop(daemon);
}

#[test]
fn malformed_nd_submits_get_structured_rejects_and_the_connection_survives() {
    let path = sock("nd-malformed");
    let daemon = spawn_unix(&path, tight_config()).expect("spawn");
    let mut raw = RawClient::connect_unix(&path).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let exchange = |raw: &mut RawClient, line: &str| -> Json {
        raw.send_line(line).expect("send");
        let reply = raw.read_line().expect("read").expect("reply line");
        oscar_serve::json::parse(&reply).expect("reply parses")
    };

    // Every malformed N-D submit maps to a structured bad-request.
    for line in [
        // Unknown problem family.
        r#"{"verb":"submit","problem":"ising-3d","qubits":6,"seed":1,"rows":8,"cols":8,"fraction":0.3}"#,
        // Deep QAOA whose shape disagrees with its depth.
        r#"{"verb":"submit","problem":"sk","qubits":6,"depth":2,"shape":[5,5,5],"seed":1,"fraction":0.3}"#,
        // Molecular job smuggling in 2-D grid fields.
        r#"{"verb":"submit","problem":"h2","rows":8,"cols":8,"seed":1,"fraction":0.3}"#,
        // Shape blowing past the landscape point cap.
        r#"{"verb":"submit","problem":"lih","shape":[60,60,60,60,60,60,60,60],"seed":1,"fraction":0.3}"#,
    ] {
        let reply = exchange(&mut raw, line);
        assert_eq!(err_code(&reply), Some("bad-request"), "for line {line}");
    }

    // The connection survives, and a well-formed N-D submit on the
    // same connection is admitted and runs to completion.
    let req = SubmitReq::deep_qaoa(
        oscar_problems::workload::ProblemKind::MaxCut,
        6,
        2,
        7,
        vec![4, 4, 5, 5],
        0.4,
    );
    let reply = exchange(&mut raw, &req.to_json().to_string_compact());
    assert!(is_ok(&reply), "{}", reply.to_string_compact());
    let id = reply.get("job").and_then(Json::as_u64).expect("job id");
    let reply = exchange(
        &mut raw,
        &format!("{{\"verb\":\"wait\",\"job\":{id},\"timeout_ms\":30000}}"),
    );
    assert!(is_ok(&reply), "{}", reply.to_string_compact());
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("done"));
    drop(daemon);
}

#[test]
fn served_nd_results_are_bit_identical_to_the_library_path() {
    let path = sock("nd-bitident");
    let daemon = spawn_unix(&path, tight_config()).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    // One 4-D depth-2 QAOA job and one molecular VQE scan, each
    // checked value-for-value against the in-process library path.
    let mut vqe = SubmitReq::vqe(oscar_problems::workload::Molecule::H2, 3, 0.5);
    vqe.device = Some("ibm perth".into());
    for req in [
        SubmitReq::deep_qaoa(
            oscar_problems::workload::ProblemKind::SkModel,
            6,
            2,
            9,
            vec![4, 5, 4, 5],
            0.4,
        ),
        vqe,
    ] {
        let id = submit_ok(&mut client, &req);
        let reply = client.wait(id, Some(30_000), true).expect("wait io");
        assert!(is_ok(&reply), "{}", reply.to_string_compact());
        let result = reply.get("result").expect("result object");

        let local = oscar_runtime::job::run_job(&req.to_spec().unwrap(), None);
        assert_eq!(
            result.get("checksum").and_then(Json::as_str).unwrap(),
            format!("{:016x}", result_checksum(&local)),
            "served checksum differs from the library path"
        );
        let dims: Vec<u64> = result
            .get("dims")
            .and_then(Json::as_arr)
            .expect("dims array")
            .iter()
            .map(|d| d.as_u64().unwrap())
            .collect();
        let expected_dims: Vec<u64> = local
            .reconstruction
            .dims()
            .iter()
            .map(|&n| n as u64)
            .collect();
        assert_eq!(dims, expected_dims);
        let served = result.get("values").and_then(Json::as_arr).unwrap();
        let expected = local.reconstruction.values();
        assert_eq!(served.len(), expected.len());
        for (i, (s, e)) in served.iter().zip(expected).enumerate() {
            assert_eq!(
                s.as_f64().unwrap().to_bits(),
                e.to_bits(),
                "value {i} differs"
            );
        }
        let best: Vec<u64> = result
            .get("best_point")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|c| c.as_f64().unwrap().to_bits())
            .collect();
        let expected_best: Vec<u64> = local.best_point.iter().map(|c| c.to_bits()).collect();
        assert_eq!(best, expected_best);
    }
    drop(daemon);
}

#[test]
fn mid_job_drain_finishes_admitted_work_then_shuts_down() {
    let path = sock("drain");
    let daemon = spawn_unix(&path, tight_config()).expect("spawn");
    let mut submitter = Client::connect_unix(&path).expect("connect submitter");

    submit_ok(&mut submitter, &blocker());
    wait_until_busy(&mut submitter);
    submit_ok(&mut submitter, &quick(51));

    // Drain arrives from another connection while the blocker runs.
    let mut drainer = Client::connect_unix(&path).expect("connect drainer");
    let reply = drainer.drain().expect("drain io");
    assert!(is_ok(&reply));
    assert_eq!(reply.get("drained").and_then(Json::as_bool), Some(true));
    // Both admitted jobs ran to completion before the reply — nothing
    // was abandoned mid-flight.
    assert_eq!(reply.get("completed").and_then(Json::as_u64), Some(2));
    assert!(daemon.state().is_shut_down());

    // The drained daemon serves nobody: the submitter's connection
    // closes rather than accepting new work.
    submitter
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match submitter.submit(&quick(52)) {
            Err(_) => break,
            Ok(reply) => {
                // A line already in flight may still get a draining
                // reject; new work is never admitted.
                assert!(!is_ok(&reply));
            }
        }
        assert!(Instant::now() < deadline, "connection never closed");
    }
    daemon.join();
}

#[test]
fn registry_eviction_bounds_memory_and_forgets_oldest_settled() {
    let path = sock("evict");
    let config = ServeConfig {
        registry_capacity: 1,
        ..tight_config()
    };
    let daemon = spawn_unix(&path, config).expect("spawn");
    let mut client = Client::connect_unix(&path).expect("connect");

    let first = submit_ok(&mut client, &quick(61));
    let reply = client.wait(first, Some(30_000), false).unwrap();
    assert!(is_ok(&reply));
    let second = submit_ok(&mut client, &quick(62));
    let reply = client.wait(second, Some(30_000), false).unwrap();
    assert!(is_ok(&reply));

    // With two settled entries over a capacity of one, the sweep
    // evicts the oldest; its id stops resolving.
    poll_until("registry eviction", || {
        status_of(&mut client, first) == "unknown-job"
    });
    drop(daemon);
}
