//! Property test: concurrent clients storming a tightly-bounded daemon
//! always get a result or a structured reject — never a hang, a
//! protocol violation, or a daemon death.

use oscar_serve::daemon::{spawn_unix, ServeConfig};
use oscar_serve::json::Json;
use oscar_serve::proto::SubmitReq;
use oscar_serve::Client;
use proptest::prelude::*;
use std::time::Duration;

fn quick(seed: u64) -> SubmitReq {
    SubmitReq::new(4, seed, 8, 10, 0.3)
}

fn is_ok(reply: &Json) -> bool {
    reply.get("ok").and_then(Json::as_bool) == Some(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// N clients each fire M submits past the queue bound and the
    /// per-client quota, then wait for whatever was admitted. Every
    /// single request gets a well-formed reply: `ok` with a job id and
    /// eventually a result, or a structured reject carrying
    /// `retry_after_ms`. Nothing hangs (client reads are bounded) and
    /// the daemon survives to serve consistent stats and a drain.
    #[test]
    fn storms_always_get_results_or_structured_rejects(
        nclients in 2usize..5,
        per_client in 3usize..8,
        seed in 0u64..1_000,
    ) {
        let path = std::env::temp_dir().join(format!(
            "oscar-serve-storm-{}-{nclients}-{per_client}-{seed}.sock",
            std::process::id()
        ));
        let config = ServeConfig {
            concurrency: 1,
            max_pending: 3,
            per_client_quota: 2,
            tick: Duration::from_millis(10),
            ..ServeConfig::default()
        };
        let daemon = spawn_unix(&path, config).expect("spawn");

        let mut workers = Vec::new();
        for c in 0..nclients {
            let path = path.clone();
            workers.push(std::thread::spawn(move || {
                let mut client = Client::connect_unix(&path).expect("connect");
                // The no-hang bound: any read blocking past this is a bug.
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let mut admitted = Vec::new();
                let mut rejected = 0usize;
                for j in 0..per_client {
                    let req = quick(seed * 10_000 + (c as u64) * 100 + j as u64);
                    let reply = client.submit(&req).expect("submit reply");
                    if is_ok(&reply) {
                        admitted.push(reply.get("job").and_then(Json::as_u64).expect("job id"));
                    } else {
                        let code = reply.get("error").and_then(Json::as_str).expect("code");
                        assert!(
                            code == "overloaded" || code == "quota-exceeded",
                            "unexpected reject: {}",
                            reply.to_string_compact()
                        );
                        let retry = reply
                            .get("retry_after_ms")
                            .and_then(Json::as_f64)
                            .expect("reject carries retry_after_ms");
                        assert!(retry.is_finite() && retry > 0.0);
                        rejected += 1;
                    }
                }
                for id in &admitted {
                    let reply = client.wait(*id, Some(50_000), false).expect("wait reply");
                    if is_ok(&reply) {
                        assert_eq!(
                            reply.get("status").and_then(Json::as_str),
                            Some("done"),
                            "{}",
                            reply.to_string_compact()
                        );
                        assert!(reply.get("result").is_some());
                    } else {
                        // Admitted-then-lost is only legal through an
                        // explicit terminal code, never silence.
                        let code = reply.get("error").and_then(Json::as_str).expect("code");
                        assert!(
                            code == "cancelled" || code == "expired" || code == "job-lost",
                            "{}",
                            reply.to_string_compact()
                        );
                    }
                }
                (admitted.len(), rejected)
            }));
        }

        let mut admitted_total = 0usize;
        let mut rejected_total = 0usize;
        for worker in workers {
            let (a, r) = worker.join().expect("client thread panicked");
            admitted_total += a;
            rejected_total += r;
        }
        prop_assert_eq!(admitted_total + rejected_total, nclients * per_client);

        // The daemon is still coherent after the storm…
        let mut client = Client::connect_unix(&path).expect("connect post-storm");
        client.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let stats = client.stats().expect("stats");
        prop_assert_eq!(
            stats.get("submitted").and_then(Json::as_u64),
            Some(admitted_total as u64)
        );
        let storm_rejects = stats.get("rejected_overload").and_then(Json::as_u64).unwrap()
            + stats.get("rejected_quota").and_then(Json::as_u64).unwrap();
        prop_assert_eq!(storm_rejects, rejected_total as u64);
        // …and still drains cleanly.
        let reply = client.drain().expect("drain");
        prop_assert!(is_ok(&reply));
        daemon.join();
    }
}
