//! Property-based tests for the quantum simulator substrate.

use oscar_qsim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-qubit rotations satisfy RX(a) RX(b) = RX(a+b).
    #[test]
    fn rx_composes_additively(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let mut p1 = StateVector::plus_state(2);
        p1.rx(0, a);
        p1.rx(0, b);
        let mut p2 = StateVector::plus_state(2);
        p2.rx(0, a + b);
        for (x, y) in p1.amplitudes().iter().zip(p2.amplitudes()) {
            prop_assert!((*x - *y).norm() < 1e-10);
        }
    }

    /// RZ commutes with RZZ (both diagonal).
    #[test]
    fn diagonal_gates_commute(t1 in -3.0f64..3.0, t2 in -3.0f64..3.0) {
        let mut a = StateVector::plus_state(3);
        a.rz(0, t1);
        a.rzz(0, 2, t2);
        let mut b = StateVector::plus_state(3);
        b.rzz(0, 2, t2);
        b.rz(0, t1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            prop_assert!((*x - *y).norm() < 1e-12);
        }
    }

    /// Expectation of a Hermitian Pauli sum is always real-bounded by the
    /// sum of |coefficients|.
    #[test]
    fn expectation_bounded_by_one_norm(seed in 0u64..300, theta in -3.0f64..3.0) {
        use rand::SeedableRng;
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 3;
        let labels = ["XYZ", "ZZI", "IXX", "YIY"];
        let mut terms = Vec::new();
        for l in labels {
            terms.push(PauliString::parse(l, rng.gen_range(-2.0..2.0)).unwrap());
        }
        let h = PauliSum::from_strings(terms);
        let mut psi = StateVector::plus_state(n);
        psi.ry(0, theta);
        psi.cnot(0, 1);
        psi.rx(2, theta * 0.5);
        let e = psi.expectation(&h);
        prop_assert!(e.abs() <= h.one_norm() + 1e-9);
    }

    /// Gate folding preserves circuit semantics for every odd/even factor.
    #[test]
    fn folding_is_semantically_identity(
        factor in 1usize..6,
        theta in -2.0f64..2.0,
    ) {
        let mut c = Circuit::new(2, 1);
        c.push(Op::H(0));
        c.push(Op::Rzz(0, 1, Param::Var(0)));
        c.push(Op::Rx(1, Param::Scaled(0, 0.5)));
        let base = c.run(&[theta]);
        let folded = c.folded(factor).run(&[theta]);
        for (x, y) in base.amplitudes().iter().zip(folded.amplitudes()) {
            prop_assert!((*x - *y).norm() < 1e-9);
        }
    }

    /// Sampling frequencies converge to Born-rule probabilities.
    #[test]
    fn sampling_matches_born_rule(theta in 0.2f64..2.9) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut psi = StateVector::zero_state(1);
        psi.ry(0, theta);
        let p1 = psi.probabilities()[1];
        let outcomes = psi.sample(20_000, &mut rng);
        let f1 = outcomes.iter().filter(|&&o| o == 1).count() as f64 / 20_000.0;
        prop_assert!((f1 - p1).abs() < 0.02, "f1 {} vs p1 {}", f1, p1);
    }

    /// The trajectory noise executor preserves norm for any rates.
    #[test]
    fn trajectories_preserve_norm(p1 in 0.0f64..0.5, p2 in 0.0f64..0.5, seed in 0u64..100) {
        use rand::SeedableRng;
        use oscar_qsim::noise::{run_trajectory, DepolarizingNoise};
        let mut c = Circuit::new(3, 0);
        c.push(Op::H(0));
        c.push(Op::Cnot(0, 1));
        c.push(Op::Cnot(1, 2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let psi = run_trajectory(&c, &[], DepolarizingNoise::new(p1, p2), &mut rng);
        prop_assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Counts histograms conserve the total and produce a normalized
    /// distribution.
    #[test]
    fn counts_are_normalized(outcomes in prop::collection::vec(0u64..8, 1..200)) {
        let counts = Counts::from_outcomes(3, &outcomes);
        prop_assert_eq!(counts.total(), outcomes.len());
        let dist = counts.to_distribution();
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    /// QAOA probabilities always form a distribution.
    #[test]
    fn qaoa_probabilities_normalized(beta in -1.5f64..1.5, gamma in -3.0f64..3.0) {
        let diag = vec![0.0, -1.0, -1.0, 0.0];
        let eval = QaoaEvaluator::new(2, diag);
        let p = eval.probabilities(&[beta], &[gamma]);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
    }
}
