//! Process-stable 128-bit fingerprints: FNV-1a-128 over a canonical
//! byte encoding.
//!
//! Cache keys that live only in memory can hash with anything, but the
//! persistent landscape store writes keys to disk and reads them back
//! in a different process — possibly one built by a different Rust
//! release. `std`'s `DefaultHasher` explicitly does *not* promise a
//! stable output across releases (or even across processes, if seeded),
//! so every identity that can reach disk hashes through [`Fingerprint`]
//! instead: a hand-rolled FNV-1a with a 128-bit state, fed a canonical
//! byte encoding. The scheme is normative — regression tests pin known
//! digests for fixed inputs, so any drift (toolchain, refactor, or an
//! accidental encoding change) fails loudly instead of silently
//! invalidating or corrupting a store.
//!
//! # Canonical byte encoding (normative)
//!
//! Writers feed the hasher exactly these encodings, in a fixed order
//! per call site:
//!
//! * **tag**: a single byte from [`tag`] — a domain/variant
//!   discriminant. No two call sites may reuse one tag for different
//!   meanings; the registry below is the single source of truth.
//! * **`u64`** (and `usize`, which always encodes as `u64`): 8 bytes,
//!   little-endian.
//! * **`u128`**: 16 bytes, little-endian.
//! * **`f64`**: the IEEE-754 bit pattern, as `u64` little-endian —
//!   `-0.0` and `0.0` stay distinct and NaN payloads are preserved,
//!   matching the bit-exact determinism contract everywhere else.
//! * **`bool`**: one byte, `0` or `1`.
//! * **`Option<u64>`**: one byte `0` for `None`; byte `1` followed by
//!   the `u64` encoding for `Some`.
//! * **`str`**: the byte length as `u64`, then the UTF-8 bytes
//!   (length-prefixing keeps `("ab", "c")` distinct from `("a", "bc")`).
//!
//! Variable-length sequences are length-prefixed by their element
//! count as `u64` before the elements.
//!
//! # The hash function
//!
//! FNV-1a with 128-bit state: `state = OFFSET_BASIS`, then for every
//! input byte `state = (state ^ byte).wrapping_mul(PRIME)`. The
//! parameters are the published FNV-128 constants. FNV-1a is not
//! cryptographic — the store also verifies the full key bytes on open,
//! so a (vanishingly unlikely) filename collision degrades to a miss,
//! never to wrong data.

/// Streaming FNV-1a-128 hasher over the canonical byte encoding.
///
/// # Examples
///
/// ```
/// use oscar_qsim::fingerprint::Fingerprint;
///
/// let mut h = Fingerprint::new();
/// h.write_u64(7);
/// h.write_f64(0.5);
/// let a = h.finish();
/// // Same input bytes, same digest — in any process, on any toolchain.
/// let mut h2 = Fingerprint::new();
/// h2.write_u64(7);
/// h2.write_f64(0.5);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct Fingerprint {
    state: u128,
}

impl Fingerprint {
    /// The FNV-128 offset basis.
    pub const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
    /// The FNV-128 prime, `2^88 + 2^8 + 0x3b`.
    pub const PRIME: u128 = 0x0000000001000000000000000000013B;

    /// A fresh hasher (state = offset basis).
    pub fn new() -> Self {
        Fingerprint {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u128::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs one tag/discriminant byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Absorbs a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `u128`, little-endian.
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` as `u64` (the canonical integer width).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Absorbs an `Option<u64>`: `0`, or `1` + the value.
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_u64(v);
            }
        }
    }

    /// Absorbs a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 128-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// The domain/variant tag registry (normative). Every fingerprint site
/// starts its encoding with exactly one of these, so encodings from
/// different domains can never alias byte-for-byte.
pub mod tag {
    /// A noisy landscape source (`LandscapeSource::fingerprint`).
    pub const NOISY: u8 = 0x01;
    /// A ZNE-scaled landscape source
    /// (`LandscapeSource::scaled_fingerprint`, scale ≠ 1).
    pub const ZNE_SCALE: u8 = 0x02;
    /// ZNE mitigation (`Mitigation::fingerprint`).
    pub const ZNE: u8 = 0x03;
    /// Readout-inversion mitigation.
    pub const READOUT: u8 = 0x04;
    /// Gaussian-smoothing mitigation.
    pub const GAUSSIAN: u8 = 0x05;
    /// A MaxCut Ising problem instance.
    pub const MAXCUT: u8 = 0x06;
    /// A Sherrington–Kirkpatrick Ising problem instance.
    pub const SK_MODEL: u8 = 0x07;
    /// A molecular VQE problem instance.
    pub const MOLECULE: u8 = 0x08;
    /// A 2-D `(β, γ)` grid shape.
    pub const GRID2D: u8 = 0x09;
    /// An N-D tensor shape.
    pub const TENSOR: u8 = 0x0A;
    /// A device spec (`DeviceSpec::fingerprint`).
    pub const DEVICE: u8 = 0x0B;
    /// A landscape-store key block (`LandscapeKey` canonical bytes).
    pub const STORE_KEY: u8 = 0x0C;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference FNV-1a-128 over raw bytes (the textbook loop), used to
    /// cross-check the streaming helpers.
    fn fnv(bytes: &[u8]) -> u128 {
        let mut state = Fingerprint::OFFSET_BASIS;
        for &b in bytes {
            state = (state ^ u128::from(b)).wrapping_mul(Fingerprint::PRIME);
        }
        state
    }

    #[test]
    fn empty_input_is_the_offset_basis() {
        assert_eq!(Fingerprint::new().finish(), Fingerprint::OFFSET_BASIS);
        assert_eq!(
            Fingerprint::OFFSET_BASIS,
            0x6c62272e07bb014262b821756295c58d
        );
    }

    #[test]
    fn helpers_match_the_reference_encoding() {
        let mut h = Fingerprint::new();
        h.write_u8(0x2a);
        h.write_u64(0x0102030405060708);
        h.write_f64(-0.0);
        h.write_bool(true);
        h.write_opt_u64(None);
        h.write_opt_u64(Some(5));
        h.write_str("ab");
        h.write_u128(1);

        let mut bytes = vec![0x2a];
        bytes.extend_from_slice(&0x0102030405060708u64.to_le_bytes());
        bytes.extend_from_slice(&(-0.0f64).to_bits().to_le_bytes());
        bytes.push(1);
        bytes.push(0);
        bytes.push(1);
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(b"ab");
        bytes.extend_from_slice(&1u128.to_le_bytes());
        assert_eq!(h.finish(), fnv(&bytes));
    }

    #[test]
    fn length_prefix_prevents_string_aliasing() {
        let digest = |parts: &[&str]| {
            let mut h = Fingerprint::new();
            for p in parts {
                h.write_str(p);
            }
            h.finish()
        };
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_ne!(digest(&["abc"]), digest(&["ab", "c"]));
    }

    #[test]
    fn zero_and_negative_zero_differ() {
        let digest = |v: f64| {
            let mut h = Fingerprint::new();
            h.write_f64(v);
            h.finish()
        };
        assert_ne!(digest(0.0), digest(-0.0));
    }

    #[test]
    fn digests_are_process_stable_pinned_constants() {
        // Pinned digests of fixed inputs. If any of these change, the
        // canonical encoding (or the hash itself) drifted and every
        // persistent store keyed by it is silently invalidated — fix
        // the drift, don't update the constants.
        assert_eq!(fnv(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_eq!(fnv(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
        assert_eq!(fnv(b"foobar"), 0x343e1662793c64bf6f0d3597ba446f18);
        let mut h = Fingerprint::new();
        h.write_u8(tag::NOISY);
        h.write_u64(42);
        assert_eq!(h.finish(), 0x544ef445dd03ae779031a5b9dad67dae);
    }
}
