//! Minimal complex-number arithmetic used throughout the simulator.
//!
//! We implement our own [`C64`] instead of pulling in an external crate so the
//! whole workspace builds from the offline dependency set. Only the operations
//! the simulator needs are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use oscar_qsim::complex::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };
    /// Negative imaginary unit, `0 - 1i`.
    pub const NEG_I: C64 = C64 { re: 0.0, im: -1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates `e^{i theta}` (a unit-modulus phase).
    ///
    /// ```
    /// use oscar_qsim::complex::C64;
    /// let z = C64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Multiplies by `i` without a full complex multiply.
    #[inline]
    pub fn mul_i(self) -> Self {
        C64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// Multiplies by `-i` without a full complex multiply.
    #[inline]
    pub fn mul_neg_i(self) -> Self {
        C64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn add_sub_roundtrip() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 4.0);
        let c = a + b - b;
        assert!((c.re - a.re).abs() < EPS && (c.im - a.im).abs() < EPS);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        let c = a * b;
        assert_eq!(c, C64::new(11.0, 2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::I * C64::I, C64::new(-1.0, 0.0));
    }

    #[test]
    fn mul_i_shortcut_matches_full_multiply() {
        let z = C64::new(0.3, -0.7);
        assert_eq!(z.mul_i(), z * C64::I);
        assert_eq!(z.mul_neg_i(), z * C64::NEG_I);
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = C64::new(2.0, 3.0);
        assert_eq!(z.conj(), C64::new(2.0, -3.0));
    }

    #[test]
    fn norm_sqr_is_z_times_conj() {
        let z = C64::new(-1.25, 0.5);
        let via_mul = (z * z.conj()).re;
        assert!((z.norm_sqr() - via_mul).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!((C64::cis(theta).norm() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn cis_adds_angles() {
        let a = 0.31;
        let b = 1.17;
        let lhs = C64::cis(a) * C64::cis(b);
        let rhs = C64::cis(a + b);
        assert!((lhs - rhs).norm() < EPS);
    }

    #[test]
    fn sum_accumulates() {
        let zs = [C64::new(1.0, 1.0), C64::new(2.0, -3.0), C64::new(-0.5, 0.5)];
        let s: C64 = zs.iter().copied().sum();
        assert_eq!(s, C64::new(2.5, -1.5));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn scale_and_div() {
        let z = C64::new(2.0, -4.0);
        assert_eq!(z * 0.5, C64::new(1.0, -2.0));
        assert_eq!(z / 2.0, C64::new(1.0, -2.0));
    }
}
