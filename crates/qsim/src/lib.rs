//! # oscar-qsim — state-vector quantum simulation substrate
//!
//! This crate is the quantum-execution substrate for the OSCAR reproduction
//! (ISCA 2023: *Enabling High Performance Debugging for Variational Quantum
//! Algorithms using Compressed Sensing*). It provides:
//!
//! * [`complex::C64`] — minimal complex arithmetic (no external deps);
//! * [`pauli`] — Pauli strings and Pauli-sum observables (Hamiltonians);
//! * [`state::StateVector`] — dense `2^n` simulator with the full gate set
//!   needed by QAOA / Two-local / UCCSD ansatzes;
//! * [`circuit::Circuit`] — parameterized circuits with hardware gate
//!   counting and ZNE-style gate folding;
//! * [`noise`] — trajectory-based depolarizing noise and readout error;
//! * [`rng::CounterRng`] — counter-based RNG whose stream is a pure
//!   function of `(seed, stream)`, for noise draws that must not depend
//!   on evaluation order;
//! * [`fingerprint::Fingerprint`] — process-stable FNV-1a-128 over a
//!   canonical byte encoding, for cache keys that persist to disk;
//! * [`qaoa::QaoaEvaluator`] — the fast path for diagonal cost Hamiltonians
//!   that makes dense landscape grids tractable.
//!
//! # Example
//!
//! ```
//! use oscar_qsim::prelude::*;
//!
//! // Bell-state preparation and a ZZ measurement.
//! let mut psi = StateVector::zero_state(2);
//! psi.h(0);
//! psi.cnot(0, 1);
//! let zz = PauliSum::from_strings(vec![PauliString::parse("ZZ", 1.0).unwrap()]);
//! assert!((psi.expectation(&zz) - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod circuit;
pub mod complex;
pub mod fingerprint;
pub mod noise;
pub mod pauli;
pub mod qaoa;
pub mod rng;
pub mod sampling;
pub mod state;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::circuit::{Circuit, GateCounts, Op, Param};
    pub use crate::complex::C64;
    pub use crate::noise::{DepolarizingNoise, ReadoutError};
    pub use crate::pauli::{Pauli, PauliString, PauliSum};
    pub use crate::qaoa::QaoaEvaluator;
    pub use crate::rng::CounterRng;
    pub use crate::sampling::{measure_qubit, project_qubit, Counts};
    pub use crate::state::StateVector;
}
