//! Measurement outcomes: counts histograms and projective collapse.
//!
//! The shot-based workflow of real hardware returns a histogram of
//! bitstrings ("counts"); this module provides that representation plus
//! projective single-qubit measurement with state collapse, which the
//! debugging-adjacent workflows (readout mitigation, assertion-style
//! checks) consume.

use crate::state::StateVector;
use rand::Rng;
use std::collections::BTreeMap;

/// A histogram of measured basis-state outcomes.
///
/// # Examples
///
/// ```
/// use oscar_qsim::sampling::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b01);
/// counts.record(0b01);
/// counts.record(0b10);
/// assert_eq!(counts.total(), 3);
/// assert!((counts.frequency(0b01) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    n: usize,
    map: BTreeMap<u64, usize>,
    total: usize,
}

impl Counts {
    /// Creates an empty histogram for `n`-qubit outcomes.
    pub fn new(n: usize) -> Self {
        Counts {
            n,
            map: BTreeMap::new(),
            total: 0,
        }
    }

    /// Builds a histogram from sampled outcomes.
    pub fn from_outcomes(n: usize, outcomes: &[u64]) -> Self {
        let mut c = Counts::new(n);
        for &o in outcomes {
            c.record(o);
        }
        c
    }

    /// Samples `shots` outcomes from a state and tallies them.
    pub fn from_state<R: Rng + ?Sized>(psi: &StateVector, shots: usize, rng: &mut R) -> Self {
        Counts::from_outcomes(psi.num_qubits(), &psi.sample(shots, rng))
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: u64) {
        *self.map.entry(outcome).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of qubits per outcome.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count for a specific outcome.
    pub fn count(&self, outcome: u64) -> usize {
        self.map.get(&outcome).copied().unwrap_or(0)
    }

    /// Empirical frequency of an outcome.
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.total as f64
        }
    }

    /// Iterates `(outcome, count)` pairs in outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// The empirical probability distribution as a dense vector of length
    /// `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 26`.
    pub fn to_distribution(&self) -> Vec<f64> {
        assert!(self.n <= 26, "dense distribution limited to 26 qubits");
        let mut p = vec![0.0; 1usize << self.n];
        if self.total == 0 {
            return p;
        }
        for (&outcome, &count) in &self.map {
            p[outcome as usize] = count as f64 / self.total as f64;
        }
        p
    }

    /// Empirical expectation of a dense diagonal observable.
    pub fn expectation_diagonal(&self, diag: &[f64]) -> f64 {
        assert_eq!(diag.len(), 1usize << self.n, "diagonal length mismatch");
        if self.total == 0 {
            return 0.0;
        }
        self.map
            .iter()
            .map(|(&o, &c)| diag[o as usize] * c as f64)
            .sum::<f64>()
            / self.total as f64
    }
}

/// Projectively measures qubit `q`, collapsing the state.
///
/// Returns the observed bit. The state is renormalized onto the observed
/// subspace.
///
/// # Panics
///
/// Panics if `q` is out of range.
pub fn measure_qubit<R: Rng + ?Sized>(psi: &mut StateVector, q: usize, rng: &mut R) -> u8 {
    assert!(q < psi.num_qubits(), "qubit index out of range");
    let bit = 1usize << q;
    let p1: f64 = psi
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum();
    let outcome = u8::from(rng.gen::<f64>() < p1);
    project_qubit(psi, q, outcome);
    outcome
}

/// Projects qubit `q` onto `outcome` (0 or 1) and renormalizes.
///
/// # Panics
///
/// Panics if the projection has (near-)zero probability or `outcome > 1`.
pub fn project_qubit(psi: &mut StateVector, q: usize, outcome: u8) {
    assert!(outcome <= 1, "outcome must be 0 or 1");
    assert!(q < psi.num_qubits(), "qubit index out of range");
    let bit = 1usize << q;
    let keep_set = outcome == 1;
    let dim = psi.dim();
    {
        let amps = psi.amplitudes_mut();
        for i in 0..dim {
            if ((i & bit != 0) != keep_set) && amps[i] != crate::complex::C64::ZERO {
                amps[i] = crate::complex::C64::ZERO;
            }
        }
    }
    let norm = psi.norm_sqr();
    assert!(norm > 1e-14, "projection onto zero-probability outcome");
    psi.renormalize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_record_and_frequency() {
        let mut c = Counts::new(3);
        for o in [0u64, 1, 1, 5, 5, 5] {
            c.record(o);
        }
        assert_eq!(c.total(), 6);
        assert_eq!(c.count(5), 3);
        assert!((c.frequency(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.count(7), 0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut psi = StateVector::zero_state(3);
        psi.h(0);
        psi.h(2);
        let counts = Counts::from_state(&psi, 2000, &mut rng);
        let p = counts.to_distribution();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_expectation_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut psi = StateVector::zero_state(2);
        psi.h(0);
        psi.cnot(0, 1);
        let diag = vec![1.0, -1.0, -1.0, 1.0];
        let counts = Counts::from_state(&psi, 50_000, &mut rng);
        assert!((counts.expectation_diagonal(&diag) - 1.0).abs() < 0.01);
    }

    #[test]
    fn measure_bell_pair_correlates() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut psi = StateVector::zero_state(2);
            psi.h(0);
            psi.cnot(0, 1);
            let b0 = measure_qubit(&mut psi, 0, &mut rng);
            let b1 = measure_qubit(&mut psi, 1, &mut rng);
            assert_eq!(b0, b1, "Bell pair must correlate");
        }
    }

    #[test]
    fn measurement_statistics_match_born_rule() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ones = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let mut psi = StateVector::zero_state(1);
            psi.ry(0, 2.0 * (0.3f64.sqrt()).asin()); // P(1) = 0.3
            ones += measure_qubit(&mut psi, 0, &mut rng) as usize;
        }
        let f = ones as f64 / trials as f64;
        assert!((f - 0.3).abs() < 0.02, "P(1) estimate {f}");
    }

    #[test]
    fn projection_renormalizes() {
        let mut psi = StateVector::plus_state(2);
        project_qubit(&mut psi, 0, 1);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
        // All kept amplitudes have bit 0 set.
        for (i, a) in psi.amplitudes().iter().enumerate() {
            if i & 1 == 0 {
                assert_eq!(a.norm_sqr(), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn projection_onto_impossible_outcome_panics() {
        let mut psi = StateVector::zero_state(1);
        project_qubit(&mut psi, 0, 1);
    }
}
