//! Parameterized quantum circuits.
//!
//! A [`Circuit`] is an ordered list of [`Op`]s, some of which reference
//! entries of a parameter vector through [`Param`]. Binding a concrete
//! parameter vector and running against a [`StateVector`] executes the
//! circuit; [`GateCounts`] summarizes the one- and two-qubit gate volume,
//! which downstream noise models use.

use crate::complex::C64;
use crate::pauli::PauliString;
use crate::state::StateVector;

/// A (possibly parameterized) rotation angle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Param {
    /// A fixed angle.
    Fixed(f64),
    /// `params[index]`.
    Var(usize),
    /// `scale * params[index]` — lets e.g. QAOA use `2*beta` without an
    /// auxiliary parameter.
    Scaled(usize, f64),
}

impl Param {
    /// Resolves the angle against a bound parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of bounds.
    pub fn resolve(&self, params: &[f64]) -> f64 {
        match *self {
            Param::Fixed(v) => v,
            Param::Var(i) => params[i],
            Param::Scaled(i, k) => k * params[i],
        }
    }

    /// The referenced parameter index, if any.
    pub fn var_index(&self) -> Option<usize> {
        match *self {
            Param::Fixed(_) => None,
            Param::Var(i) | Param::Scaled(i, _) => Some(i),
        }
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::Fixed(v)
    }
}

/// A circuit operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// X rotation.
    Rx(usize, Param),
    /// Y rotation.
    Ry(usize, Param),
    /// Z rotation.
    Rz(usize, Param),
    /// Controlled-NOT (control, target).
    Cnot(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// ZZ rotation on a qubit pair.
    Rzz(usize, usize, Param),
    /// `exp(-i theta/2 P)` for an arbitrary Pauli string.
    PauliRot(PauliString, Param),
}

impl Op {
    /// Qubits this operation touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Op::H(q) | Op::X(q) | Op::Y(q) | Op::Z(q) => vec![*q],
            Op::Rx(q, _) | Op::Ry(q, _) | Op::Rz(q, _) => vec![*q],
            Op::Cnot(a, b) | Op::Cz(a, b) | Op::Rzz(a, b, _) => vec![*a, *b],
            Op::PauliRot(p, _) => (0..p.num_qubits())
                .filter(|&q| p.op(q) != crate::pauli::Pauli::I)
                .collect(),
        }
    }

    /// `true` for entangling (multi-qubit) operations.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Op::Cnot(..) | Op::Cz(..) | Op::Rzz(..))
            || matches!(self, Op::PauliRot(p, _) if p.weight() >= 2)
    }
}

/// Hardware-level gate volume of a circuit, used by noise models.
///
/// `Rzz` decomposes to 2 CNOT + 1 RZ on hardware; `PauliRot` of weight `w`
/// decomposes to `2(w-1)` CNOTs plus basis-change single-qubit gates. The
/// counts below reflect that decomposition so depolarizing fidelity
/// estimates match what a transpiled circuit would suffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Number of physical single-qubit gates.
    pub one_qubit: usize,
    /// Number of physical two-qubit gates.
    pub two_qubit: usize,
}

impl GateCounts {
    /// Total physical gate count.
    pub fn total(&self) -> usize {
        self.one_qubit + self.two_qubit
    }

    /// Scales both counts by an integer noise-amplification factor (used by
    /// zero-noise extrapolation gate folding).
    pub fn scaled(&self, factor: usize) -> GateCounts {
        GateCounts {
            one_qubit: self.one_qubit * factor,
            two_qubit: self.two_qubit * factor,
        }
    }
}

/// A parameterized quantum circuit.
///
/// # Examples
///
/// ```
/// use oscar_qsim::circuit::{Circuit, Op, Param};
///
/// let mut c = Circuit::new(2, 1);
/// c.push(Op::H(0));
/// c.push(Op::Cnot(0, 1));
/// c.push(Op::Rz(1, Param::Var(0)));
/// let psi = c.run(&[0.3]);
/// assert!((psi.norm_sqr() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n: usize,
    num_params: usize,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit on `n` qubits expecting `num_params`
    /// parameters.
    pub fn new(n: usize, num_params: usize) -> Self {
        Circuit {
            n,
            num_params,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Expected length of the parameter vector.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// The operation list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the op touches a qubit `>= n` or references a parameter
    /// `>= num_params`.
    pub fn push(&mut self, op: Op) {
        for q in op.qubits() {
            assert!(q < self.n, "op touches qubit {q} outside register");
        }
        let param = match &op {
            Op::Rx(_, p) | Op::Ry(_, p) | Op::Rz(_, p) | Op::Rzz(_, _, p) | Op::PauliRot(_, p) => {
                p.var_index()
            }
            _ => None,
        };
        if let Some(i) = param {
            assert!(i < self.num_params, "op references parameter {i}");
        }
        self.ops.push(op);
    }

    /// Executes the circuit from `|0...0>` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != num_params`.
    pub fn run(&self, params: &[f64]) -> StateVector {
        let mut psi = StateVector::zero_state(self.n);
        self.apply(&mut psi, params);
        psi
    }

    /// Applies the circuit to an existing state.
    pub fn apply(&self, psi: &mut StateVector, params: &[f64]) {
        assert_eq!(params.len(), self.num_params, "parameter count mismatch");
        assert_eq!(psi.num_qubits(), self.n, "register size mismatch");
        for op in &self.ops {
            Self::apply_op(psi, op, params);
        }
    }

    /// Applies a single op (shared with the noisy executor).
    pub(crate) fn apply_op(psi: &mut StateVector, op: &Op, params: &[f64]) {
        match op {
            Op::H(q) => psi.h(*q),
            Op::X(q) => psi.x(*q),
            Op::Y(q) => psi.y(*q),
            Op::Z(q) => psi.z(*q),
            Op::Rx(q, p) => psi.rx(*q, p.resolve(params)),
            Op::Ry(q, p) => psi.ry(*q, p.resolve(params)),
            Op::Rz(q, p) => psi.rz(*q, p.resolve(params)),
            Op::Cnot(c, t) => psi.cnot(*c, *t),
            Op::Cz(a, b) => psi.cz(*a, *b),
            Op::Rzz(a, b, p) => psi.rzz(*a, *b, p.resolve(params)),
            Op::PauliRot(string, p) => psi.apply_pauli_rotation(string, p.resolve(params)),
        }
    }

    /// Physical gate counts after hardware decomposition (see
    /// [`GateCounts`]).
    pub fn gate_counts(&self) -> GateCounts {
        let mut counts = GateCounts::default();
        for op in &self.ops {
            match op {
                Op::H(_) | Op::X(_) | Op::Y(_) | Op::Z(_) => counts.one_qubit += 1,
                Op::Rx(..) | Op::Ry(..) | Op::Rz(..) => counts.one_qubit += 1,
                Op::Cnot(..) | Op::Cz(..) => counts.two_qubit += 1,
                Op::Rzz(..) => {
                    counts.two_qubit += 2;
                    counts.one_qubit += 1;
                }
                Op::PauliRot(p, _) => {
                    let w = p.weight() as usize;
                    if w == 0 {
                        continue;
                    }
                    if w == 1 {
                        counts.one_qubit += 1;
                    } else {
                        counts.two_qubit += 2 * (w - 1);
                        // basis changes on X/Y factors (two each: in and out)
                        // plus the central RZ.
                        counts.one_qubit += 1 + 2 * w;
                    }
                }
            }
        }
        counts
    }

    /// Circuit depth counted as number of ops (a simple upper bound; the
    /// simulator does not schedule parallel layers).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the circuit with every op repeated `2k+1` times in the
    /// global-folding pattern `U (U† U)^k` used by zero-noise extrapolation.
    ///
    /// For a noise-scaling factor `c = 2k+1`, the folded circuit is
    /// logically identical but executes `c`× the gates. Only odd factors are
    /// supported, matching the paper's `{1, 2, 3}` scalings where factor 2
    /// is realized by folding a random half of the gates; we implement
    /// factor 2 as folding the first half of the ops.
    ///
    /// # Panics
    ///
    /// Panics if `factor == 0`.
    pub fn folded(&self, factor: usize) -> Circuit {
        assert!(factor >= 1, "folding factor must be >= 1");
        let mut out = Circuit::new(self.n, self.num_params);
        if factor % 2 == 1 {
            let k = (factor - 1) / 2;
            for op in &self.ops {
                out.ops.push(op.clone());
                for _ in 0..k {
                    out.ops.push(Self::inverse_op(op));
                    out.ops.push(op.clone());
                }
            }
        } else {
            // Even factor: fold the first half of the ops once more than the
            // odd base, giving an average gate multiplier of `factor`.
            let k = factor / 2;
            let half = self.ops.len() / 2;
            for (i, op) in self.ops.iter().enumerate() {
                out.ops.push(op.clone());
                let folds = if i < half { k } else { k - 1 };
                for _ in 0..folds {
                    out.ops.push(Self::inverse_op(op));
                    out.ops.push(op.clone());
                }
            }
        }
        out
    }

    fn inverse_op(op: &Op) -> Op {
        let neg = |p: &Param| match *p {
            Param::Fixed(v) => Param::Fixed(-v),
            Param::Var(i) => Param::Scaled(i, -1.0),
            Param::Scaled(i, k) => Param::Scaled(i, -k),
        };
        match op {
            Op::H(q) => Op::H(*q),
            Op::X(q) => Op::X(*q),
            Op::Y(q) => Op::Y(*q),
            Op::Z(q) => Op::Z(*q),
            Op::Rx(q, p) => Op::Rx(*q, neg(p)),
            Op::Ry(q, p) => Op::Ry(*q, neg(p)),
            Op::Rz(q, p) => Op::Rz(*q, neg(p)),
            Op::Cnot(c, t) => Op::Cnot(*c, *t),
            Op::Cz(a, b) => Op::Cz(*a, *b),
            Op::Rzz(a, b, p) => Op::Rzz(*a, *b, neg(p)),
            Op::PauliRot(s, p) => Op::PauliRot(s.clone(), neg(p)),
        }
    }
}

/// A matrix helper exposing the single-qubit unitaries used by [`Op`]
/// (available for tests and external decompositions).
pub fn single_qubit_matrix(op: &Op, params: &[f64]) -> Option<[[C64; 2]; 2]> {
    let frac = std::f64::consts::FRAC_1_SQRT_2;
    Some(match op {
        Op::H(_) => [
            [C64::real(frac), C64::real(frac)],
            [C64::real(frac), C64::real(-frac)],
        ],
        Op::X(_) => [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]],
        Op::Y(_) => [[C64::ZERO, C64::NEG_I], [C64::I, C64::ZERO]],
        Op::Z(_) => [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]],
        Op::Rx(_, p) => {
            let t = p.resolve(params) / 2.0;
            [
                [C64::real(t.cos()), C64::new(0.0, -t.sin())],
                [C64::new(0.0, -t.sin()), C64::real(t.cos())],
            ]
        }
        Op::Ry(_, p) => {
            let t = p.resolve(params) / 2.0;
            [
                [C64::real(t.cos()), C64::real(-t.sin())],
                [C64::real(t.sin()), C64::real(t.cos())],
            ]
        }
        Op::Rz(_, p) => {
            let t = p.resolve(params) / 2.0;
            [[C64::cis(-t), C64::ZERO], [C64::ZERO, C64::cis(t)]]
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_ops_in_order() {
        let mut c = Circuit::new(1, 0);
        c.push(Op::X(0));
        c.push(Op::H(0));
        let psi = c.run(&[]);
        // |1> -> H -> (|0> - |1>)/sqrt(2)
        let amps = psi.amplitudes();
        assert!((amps[0].re - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((amps[1].re + std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn param_resolution() {
        assert_eq!(Param::Fixed(2.0).resolve(&[]), 2.0);
        assert_eq!(Param::Var(1).resolve(&[5.0, 7.0]), 7.0);
        assert_eq!(Param::Scaled(0, 2.0).resolve(&[3.0]), 6.0);
    }

    #[test]
    #[should_panic(expected = "op references parameter")]
    fn rejects_out_of_range_parameter() {
        let mut c = Circuit::new(1, 1);
        c.push(Op::Rx(0, Param::Var(3)));
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn rejects_out_of_range_qubit() {
        let mut c = Circuit::new(2, 0);
        c.push(Op::H(5));
    }

    #[test]
    fn gate_counts_decompose_rzz() {
        let mut c = Circuit::new(3, 1);
        c.push(Op::H(0));
        c.push(Op::Rzz(0, 1, Param::Var(0)));
        c.push(Op::Cnot(1, 2));
        let g = c.gate_counts();
        assert_eq!(g.one_qubit, 2); // H + inner RZ of RZZ
        assert_eq!(g.two_qubit, 3); // 2 CNOTs from RZZ + explicit CNOT
        assert_eq!(g.total(), 5);
    }

    #[test]
    fn folded_identity_preserves_state() {
        let mut c = Circuit::new(2, 2);
        c.push(Op::H(0));
        c.push(Op::Rx(1, Param::Var(0)));
        c.push(Op::Rzz(0, 1, Param::Var(1)));
        let params = [0.7, -0.4];
        let base = c.run(&params);
        for factor in [1usize, 2, 3, 5] {
            let folded = c.folded(factor);
            let psi = folded.run(&params);
            for (a, b) in base.amplitudes().iter().zip(psi.amplitudes()) {
                assert!((*a - *b).norm() < 1e-9, "factor {factor} broke identity");
            }
        }
    }

    #[test]
    fn folded_scales_gate_count() {
        let mut c = Circuit::new(2, 0);
        for _ in 0..10 {
            c.push(Op::Cnot(0, 1));
        }
        let base = c.gate_counts().two_qubit as f64;
        for factor in [1usize, 2, 3] {
            let folded = c.folded(factor).gate_counts().two_qubit as f64;
            let ratio = folded / base;
            assert!(
                (ratio - factor as f64).abs() <= 0.11,
                "factor {factor} got ratio {ratio}"
            );
        }
    }

    #[test]
    fn pauli_rot_gate_counts() {
        use crate::pauli::PauliString;
        let mut c = Circuit::new(3, 1);
        c.push(Op::PauliRot(
            PauliString::parse("XYZ", 1.0).unwrap(),
            Param::Var(0),
        ));
        let g = c.gate_counts();
        assert_eq!(g.two_qubit, 4); // 2*(3-1)
        assert_eq!(g.one_qubit, 7); // 1 + 2*3
    }

    #[test]
    fn single_qubit_matrix_consistency() {
        let op = Op::Ry(0, Param::Fixed(0.8));
        let m = single_qubit_matrix(&op, &[]).unwrap();
        let mut a = StateVector::zero_state(1);
        a.apply_single(0, m);
        let mut b = StateVector::zero_state(1);
        b.ry(0, 0.8);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < 1e-12);
        }
    }

    #[test]
    fn empty_circuit_is_identity() {
        let c = Circuit::new(2, 0);
        assert!(c.is_empty());
        let psi = c.run(&[]);
        assert!((psi.probabilities()[0] - 1.0).abs() < 1e-12);
    }
}
