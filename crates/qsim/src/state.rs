//! Dense state-vector representation of an `n`-qubit register.
//!
//! Qubit `q` corresponds to bit `q` of the basis index (qubit 0 is the least
//! significant bit). All gate applications are in-place and O(2^n).
//!
//! Registers with at least [`PAR_MIN_AMPS`] amplitudes split the
//! diagonal and single-qubit gate kernels across worker threads
//! (`oscar-par`); the arithmetic per amplitude is identical to the
//! serial path, so results are bit-exact regardless of thread count.

use crate::complex::C64;
use crate::pauli::{PauliString, PauliSum};
use rand::Rng;

/// Maximum number of qubits the dense simulator accepts.
///
/// 2^28 amplitudes = 4 GiB of `C64`; anything beyond is a configuration bug.
pub const MAX_QUBITS: usize = 28;

/// Registers with at least this many amplitudes (2^15 ⇒ 15+ qubits) run
/// the chunked parallel gate kernels; smaller ones stay serial, where
/// thread startup would dominate.
pub const PAR_MIN_AMPS: usize = 1 << 15;

/// Worker-chunk granule for embarrassingly parallel per-amplitude
/// kernels (diagonal gates): big enough to amortize dispatch, small
/// enough to balance load.
const AMP_CHUNK: usize = 1 << 12;

/// Applies `f(global_index, amplitude)` to every amplitude, splitting
/// across workers for large registers.
pub(crate) fn for_each_amp_indexed(amps: &mut [C64], f: impl Fn(usize, &mut C64) + Sync) {
    if amps.len() >= PAR_MIN_AMPS && !oscar_par::in_parallel_region() {
        oscar_par::for_each_chunk_mut(amps, AMP_CHUNK, |offset, chunk| {
            for (k, a) in chunk.iter_mut().enumerate() {
                f(offset + k, a);
            }
        });
    } else {
        for (i, a) in amps.iter_mut().enumerate() {
            f(i, a);
        }
    }
}

/// Serial butterfly pass for a single-qubit unitary over contiguous
/// blocks of `2 * stride` amplitudes (each block pairs `i` with
/// `i + stride`).
fn single_qubit_blocks(amps: &mut [C64], stride: usize, u: [[C64; 2]; 2]) {
    let mut base = 0usize;
    while base < amps.len() {
        for i in base..base + stride {
            let a0 = amps[i];
            let a1 = amps[i + stride];
            amps[i] = u[0][0] * a0 + u[0][1] * a1;
            amps[i + stride] = u[1][0] * a0 + u[1][1] * a1;
        }
        base += stride << 1;
    }
}

/// A pure quantum state over `n` qubits stored as `2^n` complex amplitudes.
///
/// # Examples
///
/// ```
/// use oscar_qsim::state::StateVector;
///
/// let mut psi = StateVector::zero_state(2);
/// psi.h(0);
/// psi.cnot(0, 1);
/// let p = psi.probabilities();
/// assert!((p[0] - 0.5).abs() < 1e-12 && (p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Creates the computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > MAX_QUBITS`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n > 0 && n <= MAX_QUBITS, "qubit count out of range");
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Creates the uniform superposition `H^{⊗n} |0...0>`.
    pub fn plus_state(n: usize) -> Self {
        assert!(n > 0 && n <= MAX_QUBITS, "qubit count out of range");
        let dim = 1usize << n;
        let a = C64::real(1.0 / (dim as f64).sqrt());
        StateVector {
            n,
            amps: vec![a; dim],
        }
    }

    /// Creates a state from raw amplitudes (must have power-of-two length).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is not ~1.
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let dim = amps.len();
        assert!(dim.is_power_of_two() && dim >= 2, "length must be 2^n");
        let n = dim.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state vector must be normalized (norm^2 = {norm})"
        );
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Read-only view of the amplitudes.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Mutable view of the amplitudes.
    ///
    /// The caller is responsible for keeping the state normalized (or
    /// calling [`Self::renormalize`]); used by projective measurement.
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// The squared-modulus probability of each basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Total norm squared (should remain 1 under unitary evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Renormalizes the state to unit norm (used after noisy projections).
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
    }

    /// Applies an arbitrary single-qubit unitary `[[u00,u01],[u10,u11]]`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn apply_single(&mut self, q: usize, u: [[C64; 2]; 2]) {
        assert!(q < self.n, "qubit index out of range");
        let stride = 1usize << q;
        let dim = self.amps.len();
        if dim >= PAR_MIN_AMPS && !oscar_par::in_parallel_region() {
            let block = stride << 1;
            if block <= dim / 2 {
                // Many independent butterfly blocks: chunk on block
                // boundaries so each worker owns whole blocks.
                oscar_par::for_each_chunk_mut(&mut self.amps, block, |_, chunk| {
                    single_qubit_blocks(chunk, stride, u);
                });
            } else {
                // q is the top qubit: one block spanning the register.
                // Its halves pair element-wise, so zip them in chunks.
                let (lo, hi) = self.amps.split_at_mut(stride);
                oscar_par::for_each_zip_chunks_mut(lo, hi, AMP_CHUNK, |_, la, ha| {
                    for (a0, a1) in la.iter_mut().zip(ha.iter_mut()) {
                        let x0 = *a0;
                        let x1 = *a1;
                        *a0 = u[0][0] * x0 + u[0][1] * x1;
                        *a1 = u[1][0] * x0 + u[1][1] * x1;
                    }
                });
            }
            return;
        }
        single_qubit_blocks(&mut self.amps, stride, u);
    }

    /// Hadamard gate.
    pub fn h(&mut self, q: usize) {
        let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        self.apply_single(q, [[s, s], [s, -s]]);
    }

    /// Pauli-X gate.
    pub fn x(&mut self, q: usize) {
        self.apply_single(q, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
    }

    /// Pauli-Y gate.
    pub fn y(&mut self, q: usize) {
        self.apply_single(q, [[C64::ZERO, C64::NEG_I], [C64::I, C64::ZERO]]);
    }

    /// Pauli-Z gate.
    pub fn z(&mut self, q: usize) {
        self.apply_single(q, [[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]);
    }

    /// Phase gate S = diag(1, i).
    pub fn s(&mut self, q: usize) {
        self.apply_single(q, [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]);
    }

    /// Inverse phase gate S† = diag(1, -i).
    pub fn sdg(&mut self, q: usize) {
        self.apply_single(q, [[C64::ONE, C64::ZERO], [C64::ZERO, C64::NEG_I]]);
    }

    /// T gate = diag(1, e^{iπ/4}).
    pub fn t(&mut self, q: usize) {
        self.apply_single(
            q,
            [
                [C64::ONE, C64::ZERO],
                [C64::ZERO, C64::cis(std::f64::consts::FRAC_PI_4)],
            ],
        );
    }

    /// SWAP gate exchanging two qubits.
    ///
    /// # Panics
    ///
    /// Panics if indices coincide or are out of range.
    pub fn swap(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amps.len() {
            // Swap each |...0_a...1_b...> with |...1_a...0_b...> once.
            if i & abit != 0 && i & bbit == 0 {
                self.amps.swap(i, (i & !abit) | bbit);
            }
        }
    }

    /// Rotation about X: `RX(theta) = exp(-i theta X / 2)`.
    pub fn rx(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::new(0.0, -(theta / 2.0).sin());
        self.apply_single(q, [[c, s], [s, c]]);
    }

    /// Rotation about Y: `RY(theta) = exp(-i theta Y / 2)`.
    pub fn ry(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::real((theta / 2.0).sin());
        self.apply_single(q, [[c, -s], [s, c]]);
    }

    /// Rotation about Z: `RZ(theta) = exp(-i theta Z / 2)` (diagonal, fast).
    pub fn rz(&mut self, q: usize, theta: f64) {
        assert!(q < self.n, "qubit index out of range");
        let p0 = C64::cis(-theta / 2.0);
        let p1 = C64::cis(theta / 2.0);
        let bit = 1usize << q;
        for_each_amp_indexed(&mut self.amps, |i, a| {
            *a = if i & bit == 0 { p0 * *a } else { p1 * *a };
        });
    }

    /// Controlled-NOT with `control` and `target` qubits.
    ///
    /// # Panics
    ///
    /// Panics if indices coincide or are out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n && target < self.n && control != target);
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                self.amps.swap(i, i | tbit);
            }
        }
    }

    /// Controlled-Z (symmetric in its arguments).
    pub fn cz(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n && a != b);
        let mask = (1usize << a) | (1usize << b);
        for_each_amp_indexed(&mut self.amps, |i, amp| {
            if i & mask == mask {
                *amp = -*amp;
            }
        });
    }

    /// Two-qubit ZZ rotation `exp(-i theta Z_a Z_b / 2)` (diagonal, fast).
    pub fn rzz(&mut self, a: usize, b: usize, theta: f64) {
        assert!(a < self.n && b < self.n && a != b);
        let abit = 1usize << a;
        let bbit = 1usize << b;
        let ppos = C64::cis(-theta / 2.0); // eigenvalue +1 subspace
        let pneg = C64::cis(theta / 2.0);
        for_each_amp_indexed(&mut self.amps, |i, amp| {
            let parity = ((i & abit != 0) as u8) ^ ((i & bbit != 0) as u8);
            *amp = if parity == 0 {
                ppos * *amp
            } else {
                pneg * *amp
            };
        });
    }

    /// Multiplies each amplitude by `exp(-i * gamma * diag[b])`.
    ///
    /// This is the QAOA phase-separation operator for a diagonal cost
    /// Hamiltonian whose diagonal is `diag`.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != 2^n`.
    pub fn apply_diagonal_phase(&mut self, diag: &[f64], gamma: f64) {
        assert_eq!(diag.len(), self.amps.len(), "diagonal length mismatch");
        for_each_amp_indexed(&mut self.amps, |i, a| {
            *a *= C64::cis(-gamma * diag[i]);
        });
    }

    /// Applies `exp(-i theta/2 * P)` for a Pauli string `P` (coefficient
    /// folded into `theta` by the caller; the string's own coefficient is
    /// ignored).
    ///
    /// Uses `exp(-i t P) = cos(t) I - i sin(t) P` with the involution
    /// `P^2 = I`.
    pub fn apply_pauli_rotation(&mut self, p: &PauliString, theta: f64) {
        assert_eq!(p.num_qubits(), self.n, "register size mismatch");
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        let x_mask = p.x_mask() as usize;
        if x_mask == 0 {
            // Diagonal string: each amplitude gets phase e^{-i s_b theta/2}.
            for (b, a) in self.amps.iter_mut().enumerate() {
                let (_, ph) = p.apply_basis(b as u64);
                // ph is ±1 for diagonal strings.
                let sign = ph.re;
                *a *= C64::new(c, -s * sign);
            }
            return;
        }
        for b in 0..self.amps.len() {
            let partner = b ^ x_mask;
            if partner < b {
                continue; // handle each pair once
            }
            let (tb, ph_b) = p.apply_basis(b as u64);
            debug_assert_eq!(tb as usize, partner);
            let a_b = self.amps[b];
            let a_p = self.amps[partner];
            // P|b> = ph_b |partner>  =>  <partner|P|b> = ph_b.
            // Hermiticity gives <b|P|partner> = conj(ph_b).
            let m_i_s = C64::new(0.0, -s);
            self.amps[b] = a_b.scale(c) + m_i_s * ph_b.conj() * a_p;
            self.amps[partner] = a_p.scale(c) + m_i_s * ph_b * a_b;
        }
    }

    /// Applies a bare Pauli string as a unitary (used for noise injection).
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.n, "register size mismatch");
        let x_mask = p.x_mask() as usize;
        if x_mask == 0 {
            for (b, a) in self.amps.iter_mut().enumerate() {
                let (_, ph) = p.apply_basis(b as u64);
                *a *= ph;
            }
            return;
        }
        for b in 0..self.amps.len() {
            let partner = b ^ x_mask;
            if partner < b {
                continue;
            }
            let (_, ph_b) = p.apply_basis(b as u64);
            let a_b = self.amps[b];
            let a_p = self.amps[partner];
            self.amps[b] = ph_b.conj() * a_p;
            self.amps[partner] = ph_b * a_b;
        }
    }

    /// Expectation value `<psi| O |psi>` of a Hermitian Pauli-sum observable.
    pub fn expectation(&self, obs: &PauliSum) -> f64 {
        assert_eq!(obs.num_qubits(), self.n, "observable register mismatch");
        let mut total = obs.constant();
        for term in obs.terms() {
            let mut acc = C64::ZERO;
            let x_mask = term.x_mask() as usize;
            for b in 0..self.amps.len() {
                let (tb, ph) = term.apply_basis(b as u64);
                debug_assert_eq!(tb as usize, b ^ x_mask);
                // <psi|P|b> amp(b) contributes conj(amp(target)) * ph * amp(b)
                acc += self.amps[b ^ x_mask].conj() * ph * self.amps[b];
            }
            total += term.coeff() * acc.re;
        }
        total
    }

    /// Expectation of a dense diagonal observable.
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != 2^n`.
    pub fn expectation_diagonal(&self, diag: &[f64]) -> f64 {
        assert_eq!(diag.len(), self.amps.len(), "diagonal length mismatch");
        self.amps
            .iter()
            .zip(diag.iter())
            .map(|(a, &d)| a.norm_sqr() * d)
            .sum()
    }

    /// Mean and variance of a dense diagonal observable under this state.
    ///
    /// The variance is exactly the single-shot measurement variance, used to
    /// model shot noise without sampling.
    pub fn moments_diagonal(&self, diag: &[f64]) -> (f64, f64) {
        assert_eq!(diag.len(), self.amps.len(), "diagonal length mismatch");
        let mut e = 0.0;
        let mut e2 = 0.0;
        for (a, &d) in self.amps.iter().zip(diag.iter()) {
            let p = a.norm_sqr();
            e += p * d;
            e2 += p * d * d;
        }
        (e, (e2 - e * e).max(0.0))
    }

    /// Samples `shots` basis-state measurement outcomes.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<u64> {
        let mut cdf = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for a in &self.amps {
            acc += a.norm_sqr();
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        (0..shots)
            .map(|_| {
                let u: f64 = rng.gen::<f64>() * total;
                match cdf.binary_search_by(|x| x.total_cmp(&u)) {
                    Ok(i) | Err(i) => (i.min(cdf.len() - 1)) as u64,
                }
            })
            .collect()
    }

    /// Estimates the expectation of a dense diagonal observable from `shots`
    /// sampled measurements (the finite-shot analogue of
    /// [`Self::expectation_diagonal`]).
    pub fn sampled_expectation_diagonal<R: Rng + ?Sized>(
        &self,
        diag: &[f64],
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        let outcomes = self.sample(shots, rng);
        outcomes.iter().map(|&b| diag[b as usize]).sum::<f64>() / shots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn zero_state_is_basis_zero() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.dim(), 8);
        assert_close(psi.probabilities()[0], 1.0);
    }

    #[test]
    fn plus_state_is_uniform() {
        let psi = StateVector::plus_state(4);
        for p in psi.probabilities() {
            assert_close(p, 1.0 / 16.0);
        }
    }

    #[test]
    fn h_twice_is_identity() {
        let mut psi = StateVector::zero_state(2);
        psi.h(1);
        psi.h(1);
        assert_close(psi.probabilities()[0], 1.0);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut psi = StateVector::zero_state(2);
        psi.h(0);
        psi.cnot(0, 1);
        let p = psi.probabilities();
        assert_close(p[0b00], 0.5);
        assert_close(p[0b11], 0.5);
        assert_close(p[0b01], 0.0);
    }

    #[test]
    fn x_flips_correct_qubit() {
        let mut psi = StateVector::zero_state(3);
        psi.x(1);
        assert_close(psi.probabilities()[0b010], 1.0);
    }

    #[test]
    fn rx_pi_equals_x_up_to_phase() {
        let mut a = StateVector::zero_state(1);
        a.rx(0, std::f64::consts::PI);
        let mut b = StateVector::zero_state(1);
        b.x(0);
        // RX(pi) = -i X, so probabilities match.
        for (pa, pb) in a.probabilities().iter().zip(b.probabilities()) {
            assert_close(*pa, pb);
        }
    }

    #[test]
    fn rz_phases_do_not_change_probabilities() {
        let mut psi = StateVector::plus_state(2);
        psi.rz(0, 0.7);
        for p in psi.probabilities() {
            assert_close(p, 0.25);
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut psi = StateVector::plus_state(4);
        psi.rx(0, 0.3);
        psi.ry(1, 1.2);
        psi.rz(2, -0.8);
        psi.cnot(0, 3);
        psi.cz(1, 2);
        psi.rzz(0, 2, 0.9);
        assert_close(psi.norm_sqr(), 1.0);
    }

    #[test]
    fn cz_symmetric() {
        let mut a = StateVector::plus_state(2);
        let mut b = StateVector::plus_state(2);
        a.cz(0, 1);
        b.cz(1, 0);
        assert_eq!(a.amplitudes(), b.amplitudes());
    }

    #[test]
    fn rzz_matches_cnot_rz_cnot() {
        let theta = 0.77;
        let mut a = StateVector::plus_state(2);
        a.ry(0, 0.4);
        a.rzz(0, 1, theta);
        let mut b = StateVector::plus_state(2);
        b.ry(0, 0.4);
        b.cnot(0, 1);
        b.rz(1, theta);
        b.cnot(0, 1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    fn pauli_rotation_x_matches_rx() {
        let p = PauliString::single(2, 0, Pauli::X, 1.0);
        let theta = 1.1;
        let mut a = StateVector::plus_state(2);
        a.ry(1, 0.3);
        let mut b = a.clone();
        a.apply_pauli_rotation(&p, theta);
        b.rx(0, theta);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    fn pauli_rotation_zz_matches_rzz() {
        let p = PauliString::zz(3, 0, 2, 1.0);
        let theta = -0.6;
        let mut a = StateVector::plus_state(3);
        let mut b = a.clone();
        a.apply_pauli_rotation(&p, theta);
        b.rzz(0, 2, theta);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    fn pauli_rotation_preserves_norm_xy_strings() {
        let p = PauliString::parse("XYZY", 1.0).unwrap();
        let mut psi = StateVector::plus_state(4);
        psi.apply_pauli_rotation(&p, 0.9);
        assert_close(psi.norm_sqr(), 1.0);
    }

    #[test]
    fn expectation_z_on_zero_state() {
        let psi = StateVector::zero_state(1);
        let obs = PauliSum::from_strings(vec![PauliString::parse("Z", 1.0).unwrap()]);
        assert_close(psi.expectation(&obs), 1.0);
    }

    #[test]
    fn expectation_x_on_plus_state() {
        let mut psi = StateVector::zero_state(1);
        psi.h(0);
        let obs = PauliSum::from_strings(vec![PauliString::parse("X", 2.0).unwrap()]);
        assert_close(psi.expectation(&obs), 2.0);
    }

    #[test]
    fn expectation_matches_diagonal_path() {
        let mut psi = StateVector::plus_state(3);
        psi.rzz(0, 1, 0.4);
        psi.rx(2, 0.9);
        let mut h = PauliSum::new(3);
        h.push(PauliString::zz(3, 0, 1, 0.7));
        h.push(PauliString::single(3, 2, Pauli::Z, -0.3));
        h.add_constant(0.5);
        let via_pauli = psi.expectation(&h);
        let via_diag = psi.expectation_diagonal(&h.diagonal());
        assert_close(via_pauli, via_diag);
    }

    #[test]
    fn moments_variance_nonnegative() {
        let psi = StateVector::plus_state(3);
        let diag: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let (e, v) = psi.moments_diagonal(&diag);
        assert_close(e, 3.5);
        assert!(v > 0.0);
    }

    #[test]
    fn sampling_converges_to_expectation() {
        let mut psi = StateVector::zero_state(2);
        psi.h(0);
        psi.cnot(0, 1);
        let diag = vec![1.0, 0.0, 0.0, -1.0];
        let mut rng = StdRng::seed_from_u64(7);
        let est = psi.sampled_expectation_diagonal(&diag, 40_000, &mut rng);
        assert!(est.abs() < 0.02, "sampled estimate {est} too far from 0");
    }

    #[test]
    fn apply_pauli_x_equals_gate_x() {
        let mut a = StateVector::plus_state(2);
        a.ry(0, 0.3);
        let mut b = a.clone();
        a.apply_pauli(&PauliString::single(2, 1, Pauli::X, 1.0));
        b.x(1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    fn apply_pauli_y_equals_gate_y() {
        let mut a = StateVector::plus_state(2);
        a.rz(0, 0.3);
        let mut b = a.clone();
        a.apply_pauli(&PauliString::single(2, 0, Pauli::Y, 1.0));
        b.y(0);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "qubit count out of range")]
    fn rejects_zero_qubits() {
        let _ = StateVector::zero_state(0);
    }

    #[test]
    fn s_sdg_cancel() {
        let mut psi = StateVector::plus_state(1);
        let reference = psi.clone();
        psi.s(0);
        psi.sdg(0);
        for (a, b) in psi.amplitudes().iter().zip(reference.amplitudes()) {
            assert!((*a - *b).norm() < EPS);
        }
    }

    #[test]
    fn t_squared_is_s() {
        let mut a = StateVector::plus_state(1);
        a.t(0);
        a.t(0);
        let mut b = StateVector::plus_state(1);
        b.s(0);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut psi = StateVector::zero_state(3);
        psi.x(0); // |001>
        psi.swap(0, 2);
        assert_close(psi.probabilities()[0b100], 1.0);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut a = StateVector::plus_state(2);
        a.ry(0, 0.4);
        a.rz(1, 0.9);
        let mut b = a.clone();
        a.swap(0, 1);
        b.cnot(0, 1);
        b.cnot(1, 0);
        b.cnot(0, 1);
        for (x, y) in a.amplitudes().iter().zip(b.amplitudes()) {
            assert!((*x - *y).norm() < EPS);
        }
    }
}
