//! Fast QAOA evaluator for diagonal cost Hamiltonians.
//!
//! Generating a ground-truth landscape requires 5,000–32,000 circuit
//! evaluations per problem instance (paper Table 1). The generic gate-by-gate
//! path would dominate the harness runtime, so this module exploits QAOA's
//! structure: the phase operator `e^{-i γ C}` is a diagonal multiply using a
//! precomputed cost diagonal, and the mixer `e^{-i β Σ X_q}` is `n`
//! single-qubit RX butterflies. Per landscape point the cost is
//! `O(p · n · 2^n)` with no allocation beyond one state vector.

use crate::complex::C64;
use crate::state::{for_each_amp_indexed, MAX_QUBITS, PAR_MIN_AMPS};

/// Precomputed QAOA evaluator for a fixed diagonal cost function.
///
/// # Examples
///
/// ```
/// use oscar_qsim::qaoa::QaoaEvaluator;
///
/// // Two-qubit "MaxCut" on a single edge, cost(b) = -[bit0 != bit1].
/// let diag = vec![0.0, -1.0, -1.0, 0.0];
/// let eval = QaoaEvaluator::new(2, diag);
/// let e = eval.expectation(&[-std::f64::consts::FRAC_PI_8], &[std::f64::consts::FRAC_PI_2]);
/// assert!(e < -0.9, "optimal p=1 angles should nearly solve one edge, got {e}");
/// ```
#[derive(Clone, Debug)]
pub struct QaoaEvaluator {
    n: usize,
    diag: Vec<f64>,
    diag_mean: f64,
}

impl QaoaEvaluator {
    /// Builds an evaluator for an `n`-qubit problem with cost diagonal
    /// `diag` (length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if `diag.len() != 2^n` or `n` exceeds [`MAX_QUBITS`].
    pub fn new(n: usize, diag: Vec<f64>) -> Self {
        assert!(n > 0 && n <= MAX_QUBITS, "qubit count out of range");
        assert_eq!(diag.len(), 1usize << n, "diagonal length mismatch");
        let diag_mean = diag.iter().sum::<f64>() / diag.len() as f64;
        QaoaEvaluator { n, diag, diag_mean }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The cost diagonal.
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// Mean of the cost diagonal — the expectation under the maximally
    /// mixed state, which is the fixed point of depolarizing noise.
    pub fn diagonal_mean(&self) -> f64 {
        self.diag_mean
    }

    /// Minimum cost value (the optimum for minimization problems).
    pub fn min_cost(&self) -> f64 {
        self.diag.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum cost value.
    pub fn max_cost(&self) -> f64 {
        self.diag.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Evaluates `<C>` for depth `p = betas.len() = gammas.len()`.
    ///
    /// The circuit convention matches the paper (Farhi et al. QAOA): start
    /// in `|+>^n`, then for each layer apply `e^{-i γ_l C}` followed by
    /// `Π_q RX(2 β_l)` on every qubit.
    ///
    /// # Panics
    ///
    /// Panics if `betas.len() != gammas.len()` or either is empty.
    pub fn expectation(&self, betas: &[f64], gammas: &[f64]) -> f64 {
        self.moments(betas, gammas).0
    }

    /// Evaluates `(<C>, Var[C])`; the variance feeds the shot-noise model.
    pub fn moments(&self, betas: &[f64], gammas: &[f64]) -> (f64, f64) {
        assert_eq!(betas.len(), gammas.len(), "beta/gamma length mismatch");
        assert!(!betas.is_empty(), "QAOA depth must be at least 1");
        let dim = 1usize << self.n;
        let mut amps = vec![C64::real(1.0 / (dim as f64).sqrt()); dim];

        for (&beta, &gamma) in betas.iter().zip(gammas.iter()) {
            apply_phase(&mut amps, &self.diag, gamma);
            apply_mixer(&mut amps, self.n, beta);
        }

        let mut e = 0.0;
        let mut e2 = 0.0;
        for (a, &d) in amps.iter().zip(self.diag.iter()) {
            let p = a.norm_sqr();
            e += p * d;
            e2 += p * d * d;
        }
        (e, (e2 - e * e).max(0.0))
    }

    /// The final QAOA state's probability distribution (for sampling-based
    /// workflows and tests).
    pub fn probabilities(&self, betas: &[f64], gammas: &[f64]) -> Vec<f64> {
        assert_eq!(betas.len(), gammas.len(), "beta/gamma length mismatch");
        let dim = 1usize << self.n;
        let mut amps = vec![C64::real(1.0 / (dim as f64).sqrt()); dim];
        for (&beta, &gamma) in betas.iter().zip(gammas.iter()) {
            apply_phase(&mut amps, &self.diag, gamma);
            apply_mixer(&mut amps, self.n, beta);
        }
        amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

/// Applies `amps[b] *= e^{-i γ diag[b]}` in place, chunked across
/// workers for large registers.
#[inline]
fn apply_phase(amps: &mut [C64], diag: &[f64], gamma: f64) {
    for_each_amp_indexed(amps, |i, a| {
        *a *= C64::cis(-gamma * diag[i]);
    });
}

/// `[c, -i s; -i s, c]` butterflies over blocks of `2 * stride`.
#[inline]
fn mixer_blocks(amps: &mut [C64], stride: usize, c: f64, s: f64) {
    let mut base = 0usize;
    while base < amps.len() {
        for i in base..base + stride {
            let a0 = amps[i];
            let a1 = amps[i + stride];
            amps[i] = C64::new(c * a0.re + s * a1.im, c * a0.im - s * a1.re);
            amps[i + stride] = C64::new(c * a1.re + s * a0.im, c * a1.im - s * a0.re);
        }
        base += stride << 1;
    }
}

/// Applies `RX(2β)` on every qubit: `e^{-i β X_q}` has matrix
/// `[[cos β, -i sin β], [-i sin β, cos β]]`. Each qubit pass splits
/// across workers on large registers (block-aligned chunks for low
/// qubits, zipped register halves for the top one).
#[inline]
fn apply_mixer(amps: &mut [C64], n: usize, beta: f64) {
    let c = beta.cos();
    let s = beta.sin();
    let dim = amps.len();
    let parallel = dim >= PAR_MIN_AMPS && !oscar_par::in_parallel_region();
    for q in 0..n {
        let stride = 1usize << q;
        if !parallel {
            mixer_blocks(amps, stride, c, s);
            continue;
        }
        let block = stride << 1;
        if block <= dim / 2 {
            oscar_par::for_each_chunk_mut(amps, block, |_, chunk| {
                mixer_blocks(chunk, stride, c, s);
            });
        } else {
            let (lo, hi) = amps.split_at_mut(stride);
            oscar_par::for_each_zip_chunks_mut(lo, hi, 1 << 12, |_, la, ha| {
                for (p0, p1) in la.iter_mut().zip(ha.iter_mut()) {
                    let a0 = *p0;
                    let a1 = *p1;
                    *p0 = C64::new(c * a0.re + s * a1.im, c * a0.im - s * a1.re);
                    *p1 = C64::new(c * a1.re + s * a0.im, c * a1.im - s * a0.re);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, Op};

    fn single_edge_diag() -> Vec<f64> {
        // cost(b) = -[bit0 != bit1] (minimize = maximize cut)
        vec![0.0, -1.0, -1.0, 0.0]
    }

    /// Reference: build the same QAOA circuit with generic gates and
    /// compare expectations.
    fn reference_expectation(n: usize, diag: &[f64], betas: &[f64], gammas: &[f64]) -> f64 {
        let p = betas.len();
        let mut params = Vec::new();
        params.extend_from_slice(gammas);
        params.extend_from_slice(betas);
        let mut c = Circuit::new(n, 2 * p);
        for q in 0..n {
            c.push(Op::H(q));
        }
        let mut psi = c.run(&params);
        for l in 0..p {
            psi.apply_diagonal_phase(diag, gammas[l]);
            for q in 0..n {
                psi.rx(q, 2.0 * betas[l]);
            }
        }
        psi.expectation_diagonal(diag)
    }

    #[test]
    fn matches_generic_simulator_p1() {
        let diag = single_edge_diag();
        let eval = QaoaEvaluator::new(2, diag.clone());
        for (b, g) in [(0.1, 0.2), (0.5, -0.3), (-0.7, 1.2)] {
            let fast = eval.expectation(&[b], &[g]);
            let slow = reference_expectation(2, &diag, &[b], &[g]);
            assert!((fast - slow).abs() < 1e-10, "({b},{g}): {fast} vs {slow}");
        }
    }

    #[test]
    fn matches_generic_simulator_p2_larger() {
        // Triangle graph on 3 qubits.
        let n = 3;
        let mut diag = vec![0.0; 8];
        let edges = [(0usize, 1usize), (1, 2), (0, 2)];
        for (b, d) in diag.iter_mut().enumerate() {
            for &(i, j) in &edges {
                if ((b >> i) ^ (b >> j)) & 1 == 1 {
                    *d -= 1.0;
                }
            }
        }
        let eval = QaoaEvaluator::new(n, diag.clone());
        let betas = [0.3, -0.2];
        let gammas = [0.8, 0.4];
        let fast = eval.expectation(&betas, &gammas);
        let slow = reference_expectation(n, &diag, &betas, &gammas);
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
    }

    #[test]
    fn zero_angles_give_mixed_expectation() {
        let diag = single_edge_diag();
        let eval = QaoaEvaluator::new(2, diag);
        let e = eval.expectation(&[0.0], &[0.0]);
        assert!((e - eval.diagonal_mean()).abs() < 1e-12);
    }

    #[test]
    fn optimal_single_edge_angles() {
        // For a single edge with cost values {0, -1}, the landscape is
        // E(β,γ) = -1/2 + sin(4β) sin(γ) / 2, so (β, γ) = (-π/8, π/2)
        // reaches the optimum -1 exactly.
        let eval = QaoaEvaluator::new(2, single_edge_diag());
        let e = eval.expectation(
            &[-std::f64::consts::FRAC_PI_8],
            &[std::f64::consts::FRAC_PI_2],
        );
        assert!((e - (-1.0)).abs() < 1e-10, "expected -1, got {e}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let eval = QaoaEvaluator::new(2, single_edge_diag());
        let p = eval.probabilities(&[0.4], &[0.7]);
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn variance_zero_at_delta_distribution() {
        // At β=0 the mixer is identity and phases don't change
        // probabilities: the distribution stays uniform, so Var matches the
        // diagonal's variance under the uniform measure.
        let diag = single_edge_diag();
        let eval = QaoaEvaluator::new(2, diag.clone());
        let (_, var) = eval.moments(&[0.0], &[0.3]);
        let mean: f64 = diag.iter().sum::<f64>() / 4.0;
        let expect_var: f64 = diag.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / 4.0;
        assert!((var - expect_var).abs() < 1e-12);
    }

    #[test]
    fn min_max_cost() {
        let eval = QaoaEvaluator::new(2, single_edge_diag());
        assert_eq!(eval.min_cost(), -1.0);
        assert_eq!(eval.max_cost(), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal length mismatch")]
    fn rejects_bad_diagonal_length() {
        let _ = QaoaEvaluator::new(2, vec![0.0; 3]);
    }

    #[test]
    fn landscape_periodicity_in_beta() {
        // RX(2β) has period π in β (up to global phase), so the landscape is
        // π-periodic in β.
        let eval = QaoaEvaluator::new(2, single_edge_diag());
        let e1 = eval.expectation(&[0.3], &[0.5]);
        let e2 = eval.expectation(&[0.3 + std::f64::consts::PI], &[0.5]);
        assert!((e1 - e2).abs() < 1e-10);
    }
}
