//! Counter-based random number generation for order-independent noise.
//!
//! Stateful generators ([`rand::rngs::StdRng`] behind a mutex) make the
//! value drawn at a grid point depend on how many draws happened before
//! it — which is exactly the executor interleaving order, so a noisy
//! landscape evaluated by a thread pool is different on every run. A
//! *counter-based* generator removes the shared state: the stream is a
//! pure function of `(seed, stream)`, so giving every grid point its own
//! stream (`stream = point index`) makes each point's noise draw
//! independent of evaluation order, worker count, and scheduling.
//!
//! [`CounterRng`] is a SplitMix64-style generator: the `(seed, stream)`
//! pair is hashed into a base state and the n-th output is the SplitMix64
//! finalizer applied to `base + n * GOLDEN`. That is precisely the
//! SplitMix64 sequence starting at a per-stream offset — deterministic,
//! `O(1)` to construct (no warm-up), and statistically strong enough for
//! the few Gaussian shot-noise draws a landscape point needs.

use rand::RngCore;

/// Weyl-sequence increment (the SplitMix64 "golden gamma").
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a strong 64-bit mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from `(seed, tag)`.
///
/// Experiments that need *several* independent noise realizations per
/// `landscape_seed` — one per ZNE noise-scale factor, say — must not
/// feed the same `(seed, stream)` pairs to [`CounterRng`] for each of
/// them, or every realization would draw identical noise and
/// extrapolation would cancel shot noise that real hardware re-rolls
/// per execution. `derive_seed` maps a base seed and a realization tag
/// (e.g. the scale factor's bit pattern) to a fresh seed whose counter
/// streams are statistically independent of the base seed's.
///
/// The constant differs from [`CounterRng::new`]'s internal xor so
/// `derive_seed(s, t)` never aliases the stream state of
/// `CounterRng::new(s, t)`.
///
/// # Examples
///
/// ```
/// use oscar_qsim::rng::derive_seed;
///
/// assert_eq!(derive_seed(7, 2), derive_seed(7, 2));
/// assert_ne!(derive_seed(7, 2), derive_seed(7, 3));
/// assert_ne!(derive_seed(7, 2), derive_seed(8, 2));
/// ```
pub fn derive_seed(seed: u64, tag: u64) -> u64 {
    mix(mix(seed ^ 0xA076_1D64_78BD_642F) ^ tag.wrapping_mul(GOLDEN))
}

/// A counter-based RNG: the output stream is a pure function of a
/// `(seed, stream)` pair.
///
/// Two generators built from the same pair produce identical sequences;
/// distinct pairs produce statistically independent sequences. Because
/// construction is free, callers create one per work item (e.g. one per
/// landscape grid point, with `stream = point index`) instead of sharing
/// one generator across threads — all draws then commute with execution
/// order.
///
/// # Examples
///
/// ```
/// use oscar_qsim::rng::CounterRng;
/// use rand::Rng;
///
/// let mut a = CounterRng::new(7, 42);
/// let mut b = CounterRng::new(7, 42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut other_stream = CounterRng::new(7, 43);
/// assert_ne!(CounterRng::new(7, 42).gen::<u64>(), other_stream.gen::<u64>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRng {
    /// Per-`(seed, stream)` base state.
    base: u64,
    /// Draws made so far.
    counter: u64,
}

impl CounterRng {
    /// Builds the generator for `(seed, stream)`.
    ///
    /// `seed` selects the experiment-level noise realization (e.g. a
    /// job's `landscape_seed`); `stream` separates independent draw
    /// sites within it (e.g. the flat grid-point index).
    pub fn new(seed: u64, stream: u64) -> Self {
        // Mix seed and stream through two finalizer rounds so that
        // related pairs like (s, t) and (s + 1, t - 1) land on unrelated
        // base states (a plain `seed + stream * GOLDEN` would collide).
        let base = mix(mix(seed ^ GOLDEN) ^ stream.wrapping_mul(GOLDEN));
        CounterRng { base, counter: 0 }
    }

    /// How many 64-bit words have been drawn.
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

impl RngCore for CounterRng {
    fn next_u64(&mut self) -> u64 {
        let n = self.counter;
        self.counter = n.wrapping_add(1);
        mix(self.base.wrapping_add(n.wrapping_mul(GOLDEN)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_pair_same_sequence() {
        let mut a = CounterRng::new(123, 456);
        let mut b = CounterRng::new(123, 456);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.draws(), 64);
    }

    #[test]
    fn distinct_streams_are_distinct() {
        // Pairwise-distinct first outputs over a grid of (seed, stream)
        // pairs, including the adjacent pairs a naive additive mix would
        // collide on.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32u64 {
            for stream in 0..32u64 {
                assert!(
                    seen.insert(CounterRng::new(seed, stream).next_u64()),
                    "collision at ({seed}, {stream})"
                );
            }
        }
    }

    #[test]
    fn adjacent_diagonal_pairs_do_not_collide() {
        // (s, t) vs (s+1, t-1): a plain seed + stream*GOLDEN base
        // would make these identical when GOLDEN divides the shift.
        let a = CounterRng::new(5, 9).next_u64();
        let b = CounterRng::new(6, 8).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_f64_moments() {
        let mut acc = 0.0;
        let n = 40_000u64;
        for stream in 0..n {
            acc += CounterRng::new(1, stream).gen::<f64>();
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16u64 {
            for tag in 0..16u64 {
                let d = derive_seed(seed, tag);
                assert_eq!(d, derive_seed(seed, tag));
                assert!(seen.insert(d), "collision at ({seed}, {tag})");
                // The derived seed must not alias the (seed, tag) counter
                // stream itself, or a derived realization would replay the
                // base realization's noise.
                assert_ne!(
                    CounterRng::new(d, 0).next_u64(),
                    CounterRng::new(seed, tag).next_u64()
                );
            }
        }
    }

    #[test]
    fn stream_order_is_irrelevant() {
        // Drawing streams in any order yields the same per-stream values
        // — the property a parallel landscape evaluation relies on.
        let forward: Vec<u64> = (0..100).map(|s| CounterRng::new(9, s).next_u64()).collect();
        let backward: Vec<u64> = (0..100)
            .rev()
            .map(|s| CounterRng::new(9, s).next_u64())
            .collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }
}
