//! Pauli-string algebra and Pauli-sum observables (qubit Hamiltonians).
//!
//! A [`PauliString`] is a tensor product of single-qubit Pauli operators with
//! a real coefficient; a [`PauliSum`] is a linear combination of strings and
//! serves as the observable (Hamiltonian) type for VQE-style problems.

use crate::complex::C64;
use std::fmt;

/// Single-qubit Pauli operator label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

impl Pauli {
    /// Parses a single character (`I`, `X`, `Y`, `Z`, case-insensitive).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The character label of this operator.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

/// A weighted tensor product of Pauli operators on `n` qubits.
///
/// Internally stored as bit masks: qubit `q` carries an X component when bit
/// `q` of `x_mask` is set and a Z component when bit `q` of `z_mask` is set
/// (Y = both). This makes applying the string to a computational basis state
/// an O(1)-per-amplitude operation.
///
/// # Examples
///
/// ```
/// use oscar_qsim::pauli::PauliString;
///
/// let zz = PauliString::parse("ZZ", 1.0).unwrap();
/// assert_eq!(zz.num_qubits(), 2);
/// assert_eq!(zz.to_string(), "1*ZZ");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliString {
    n: usize,
    x_mask: u64,
    z_mask: u64,
    coeff: f64,
}

impl PauliString {
    /// Builds a Pauli string from per-qubit labels.
    ///
    /// `ops[q]` is the operator on qubit `q` (qubit 0 = least significant
    /// bit of the basis index).
    ///
    /// # Panics
    ///
    /// Panics if `ops.len() > 64`.
    pub fn new(ops: &[Pauli], coeff: f64) -> Self {
        assert!(ops.len() <= 64, "at most 64 qubits are supported");
        let mut x_mask = 0u64;
        let mut z_mask = 0u64;
        for (q, &p) in ops.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => x_mask |= 1 << q,
                Pauli::Y => {
                    x_mask |= 1 << q;
                    z_mask |= 1 << q;
                }
                Pauli::Z => z_mask |= 1 << q,
            }
        }
        PauliString {
            n: ops.len(),
            x_mask,
            z_mask,
            coeff,
        }
    }

    /// Parses a label such as `"XYZI"`. The **first** character acts on
    /// qubit 0. Returns `None` on any unknown character.
    pub fn parse(label: &str, coeff: f64) -> Option<Self> {
        let ops: Option<Vec<Pauli>> = label.chars().map(Pauli::from_char).collect();
        Some(PauliString::new(&ops?, coeff))
    }

    /// Builds a single-qubit Pauli embedded in an `n`-qubit register.
    pub fn single(n: usize, qubit: usize, p: Pauli, coeff: f64) -> Self {
        assert!(qubit < n, "qubit index out of range");
        let mut ops = vec![Pauli::I; n];
        ops[qubit] = p;
        PauliString::new(&ops, coeff)
    }

    /// Builds `coeff * Z_i Z_j` on an `n`-qubit register.
    pub fn zz(n: usize, i: usize, j: usize, coeff: f64) -> Self {
        assert!(i < n && j < n && i != j, "invalid ZZ qubit pair");
        let mut ops = vec![Pauli::I; n];
        ops[i] = Pauli::Z;
        ops[j] = Pauli::Z;
        PauliString::new(&ops, coeff)
    }

    /// Number of qubits this string is defined on.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The real coefficient.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Returns a copy with a different coefficient.
    pub fn with_coeff(&self, coeff: f64) -> Self {
        PauliString { coeff, ..*self }
    }

    /// The X-component bit mask (Y contributes to both masks).
    pub fn x_mask(&self) -> u64 {
        self.x_mask
    }

    /// The Z-component bit mask (Y contributes to both masks).
    pub fn z_mask(&self) -> u64 {
        self.z_mask
    }

    /// `true` when the string is diagonal in the computational basis
    /// (contains no X or Y factors).
    pub fn is_diagonal(&self) -> bool {
        self.x_mask == 0
    }

    /// The operator on qubit `q`.
    pub fn op(&self, q: usize) -> Pauli {
        let x = (self.x_mask >> q) & 1 == 1;
        let z = (self.z_mask >> q) & 1 == 1;
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> u32 {
        (self.x_mask | self.z_mask).count_ones()
    }

    /// Applies the (unit-coefficient) string to basis state `b`, returning
    /// the image basis index and the accumulated phase:
    /// `P |b> = phase * |b ^ x_mask>`.
    ///
    /// The phase follows from `Z|b> = (-1)^b |b>`, `X|b> = |1-b>`,
    /// `Y|0> = i|1>`, `Y|1> = -i|0>`.
    #[inline]
    pub fn apply_basis(&self, b: u64) -> (u64, C64) {
        let target = b ^ self.x_mask;
        // Z components (including the Z half of Y) contribute (-1)^{b_q}.
        let z_sign_bits = (self.z_mask & b).count_ones();
        // Each Y contributes an extra factor: Y = i X Z, so a global i per Y.
        let y_mask = self.x_mask & self.z_mask;
        let num_y = y_mask.count_ones();
        let mut phase = match num_y % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => C64::new(-1.0, 0.0),
            _ => C64::NEG_I,
        };
        if z_sign_bits % 2 == 1 {
            phase = -phase;
        }
        (target, phase)
    }

    /// Evaluates the string (including coefficient) on a diagonal-only basis
    /// state, i.e. assumes [`Self::is_diagonal`] and returns the eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the string is not diagonal.
    #[inline]
    pub fn eval_diagonal(&self, b: u64) -> f64 {
        debug_assert!(self.is_diagonal(), "eval_diagonal on non-diagonal string");
        if (self.z_mask & b).count_ones() % 2 == 1 {
            -self.coeff
        } else {
            self.coeff
        }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}*", self.coeff)?;
        for q in 0..self.n {
            write!(f, "{}", self.op(q).to_char())?;
        }
        Ok(())
    }
}

/// A real-weighted sum of Pauli strings: a Hermitian qubit observable.
///
/// # Examples
///
/// ```
/// use oscar_qsim::pauli::{PauliString, PauliSum};
///
/// let h = PauliSum::from_strings(vec![
///     PauliString::parse("ZI", 0.5).unwrap(),
///     PauliString::parse("IZ", -0.5).unwrap(),
/// ]);
/// assert_eq!(h.num_qubits(), 2);
/// assert_eq!(h.terms().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliSum {
    n: usize,
    terms: Vec<PauliString>,
    constant: f64,
}

impl PauliSum {
    /// Creates an empty observable on `n` qubits (the zero operator).
    pub fn new(n: usize) -> Self {
        PauliSum {
            n,
            terms: Vec::new(),
            constant: 0.0,
        }
    }

    /// Builds an observable from a list of strings.
    ///
    /// # Panics
    ///
    /// Panics if the strings act on differing qubit counts or the list is
    /// empty.
    pub fn from_strings(terms: Vec<PauliString>) -> Self {
        assert!(!terms.is_empty(), "PauliSum::from_strings needs terms");
        let n = terms[0].num_qubits();
        assert!(
            terms.iter().all(|t| t.num_qubits() == n),
            "all terms must act on the same register size"
        );
        let mut sum = PauliSum::new(n);
        for t in terms {
            sum.push(t);
        }
        sum
    }

    /// Adds a term; identity strings fold into the scalar constant.
    pub fn push(&mut self, term: PauliString) {
        assert_eq!(term.num_qubits(), self.n, "term register size mismatch");
        if term.weight() == 0 {
            self.constant += term.coeff();
        } else {
            self.terms.push(term);
        }
    }

    /// Adds a scalar offset (an identity term).
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The scalar (identity) part.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The non-identity terms.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// `true` when every term is diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        self.terms.iter().all(PauliString::is_diagonal)
    }

    /// Evaluates a fully diagonal observable on basis state `b`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any term is non-diagonal.
    pub fn eval_diagonal(&self, b: u64) -> f64 {
        self.constant + self.terms.iter().map(|t| t.eval_diagonal(b)).sum::<f64>()
    }

    /// Materializes the diagonal of a diagonal observable as a dense vector
    /// of length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if the observable is not diagonal or `n > 30`.
    pub fn diagonal(&self) -> Vec<f64> {
        assert!(self.is_diagonal(), "observable has off-diagonal terms");
        assert!(
            self.n <= 30,
            "diagonal materialization limited to 30 qubits"
        );
        let dim = 1usize << self.n;
        let mut d = vec![self.constant; dim];
        for t in &self.terms {
            let zm = t.z_mask();
            let c = t.coeff();
            for (b, v) in d.iter_mut().enumerate() {
                if (zm & b as u64).count_ones() % 2 == 1 {
                    *v -= c;
                } else {
                    *v += c;
                }
            }
        }
        d
    }

    /// Sum of absolute coefficients (an upper bound on the spectral norm).
    pub fn one_norm(&self) -> f64 {
        self.constant.abs() + self.terms.iter().map(|t| t.coeff().abs()).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let p = PauliString::parse("XYZI", 2.0).unwrap();
        assert_eq!(p.op(0), Pauli::X);
        assert_eq!(p.op(1), Pauli::Y);
        assert_eq!(p.op(2), Pauli::Z);
        assert_eq!(p.op(3), Pauli::I);
        assert_eq!(p.to_string(), "2*XYZI");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PauliString::parse("XQ", 1.0).is_none());
    }

    #[test]
    fn weight_counts_non_identity() {
        let p = PauliString::parse("XIYZ", 1.0).unwrap();
        assert_eq!(p.weight(), 3);
    }

    #[test]
    fn z_phase_on_basis() {
        let z = PauliString::parse("Z", 1.0).unwrap();
        let (b0, ph0) = z.apply_basis(0);
        let (b1, ph1) = z.apply_basis(1);
        assert_eq!((b0, ph0), (0, C64::ONE));
        assert_eq!((b1, ph1), (1, -C64::ONE));
    }

    #[test]
    fn x_flips_basis() {
        let x = PauliString::parse("X", 1.0).unwrap();
        let (b, ph) = x.apply_basis(0);
        assert_eq!((b, ph), (1, C64::ONE));
    }

    #[test]
    fn y_phases_match_matrix() {
        // Y|0> = i|1>, Y|1> = -i|0>
        let y = PauliString::parse("Y", 1.0).unwrap();
        let (b0, ph0) = y.apply_basis(0);
        assert_eq!((b0, ph0), (1, C64::I));
        let (b1, ph1) = y.apply_basis(1);
        assert_eq!((b1, ph1), (0, C64::NEG_I));
    }

    #[test]
    fn yy_on_00_gives_minus_11() {
        // (Y⊗Y)|00> = (i|1>)⊗(i|1>) = -|11>
        let yy = PauliString::parse("YY", 1.0).unwrap();
        let (b, ph) = yy.apply_basis(0b00);
        assert_eq!(b, 0b11);
        assert_eq!(ph, -C64::ONE);
    }

    #[test]
    fn zz_eval_diagonal() {
        let zz = PauliString::zz(2, 0, 1, 1.5);
        assert_eq!(zz.eval_diagonal(0b00), 1.5);
        assert_eq!(zz.eval_diagonal(0b01), -1.5);
        assert_eq!(zz.eval_diagonal(0b10), -1.5);
        assert_eq!(zz.eval_diagonal(0b11), 1.5);
    }

    #[test]
    fn sum_diagonal_materialization() {
        let mut h = PauliSum::new(2);
        h.push(PauliString::zz(2, 0, 1, 1.0));
        h.add_constant(-1.0);
        let d = h.diagonal();
        assert_eq!(d, vec![0.0, -2.0, -2.0, 0.0]);
    }

    #[test]
    fn identity_folds_into_constant() {
        let mut h = PauliSum::new(2);
        h.push(PauliString::parse("II", 3.0).unwrap());
        assert_eq!(h.constant(), 3.0);
        assert!(h.terms().is_empty());
    }

    #[test]
    fn one_norm_sums_abs() {
        let h = PauliSum::from_strings(vec![
            PauliString::parse("XI", -2.0).unwrap(),
            PauliString::parse("IZ", 0.5).unwrap(),
        ]);
        assert_eq!(h.one_norm(), 2.5);
    }

    #[test]
    fn single_embeds_correctly() {
        let p = PauliString::single(3, 1, Pauli::Y, 1.0);
        assert_eq!(p.op(0), Pauli::I);
        assert_eq!(p.op(1), Pauli::Y);
        assert_eq!(p.op(2), Pauli::I);
    }
}
