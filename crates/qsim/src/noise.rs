//! Gate-level stochastic noise: depolarizing channels via quantum
//! trajectories.
//!
//! The trajectory method runs the circuit on a pure state and, after every
//! gate, injects a uniformly random non-identity Pauli on the touched qubits
//! with the channel's error probability. Averaging expectation values over
//! trajectories converges to the depolarizing-channel density-matrix result
//! without ever materializing a density matrix, which would be infeasible
//! beyond ~14 qubits.
//!
//! For the large grids OSCAR sweeps, the analytic *global depolarizing
//! approximation* in `oscar-mitigation` is used instead; this module is the
//! reference implementation the approximation is validated against (see the
//! crate tests in `oscar-mitigation`).

use crate::circuit::{Circuit, Op};
use crate::pauli::Pauli;
use crate::state::StateVector;
use rand::Rng;

/// Per-gate depolarizing error probabilities.
///
/// # Examples
///
/// ```
/// use oscar_qsim::noise::DepolarizingNoise;
///
/// let noise = DepolarizingNoise::new(0.003, 0.007);
/// assert_eq!(noise.p1, 0.003);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepolarizingNoise {
    /// Error probability after each single-qubit gate.
    pub p1: f64,
    /// Error probability after each two-qubit gate.
    pub p2: f64,
}

impl DepolarizingNoise {
    /// Creates a noise model.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities lie in `[0, 1)`.
    pub fn new(p1: f64, p2: f64) -> Self {
        assert!((0.0..1.0).contains(&p1), "p1 must be in [0,1)");
        assert!((0.0..1.0).contains(&p2), "p2 must be in [0,1)");
        DepolarizingNoise { p1, p2 }
    }

    /// The noiseless model.
    pub fn ideal() -> Self {
        DepolarizingNoise { p1: 0.0, p2: 0.0 }
    }

    /// `true` when both rates are zero.
    pub fn is_ideal(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0
    }

    /// Returns the model with both rates multiplied by `factor` (saturating
    /// at the maximally mixing probabilities), used to emulate noise
    /// scaling.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        DepolarizingNoise {
            p1: (self.p1 * factor).min(0.75),
            p2: (self.p2 * factor).min(0.9375),
        }
    }
}

/// Executes `circuit` once with stochastic Pauli injection, returning the
/// (random) trajectory state.
pub fn run_trajectory<R: Rng + ?Sized>(
    circuit: &Circuit,
    params: &[f64],
    noise: DepolarizingNoise,
    rng: &mut R,
) -> StateVector {
    let n = circuit.num_qubits();
    let mut psi = StateVector::zero_state(n);
    for op in circuit.ops() {
        Circuit::apply_op(&mut psi, op, params);
        inject_gate_noise(&mut psi, op, noise, rng);
    }
    psi
}

/// Averages the expectation of a dense diagonal observable over
/// `trajectories` noisy executions.
///
/// # Panics
///
/// Panics if `trajectories == 0`.
pub fn noisy_expectation_diagonal<R: Rng + ?Sized>(
    circuit: &Circuit,
    params: &[f64],
    diag: &[f64],
    noise: DepolarizingNoise,
    trajectories: usize,
    rng: &mut R,
) -> f64 {
    assert!(trajectories > 0, "need at least one trajectory");
    if noise.is_ideal() {
        return circuit.run(params).expectation_diagonal(diag);
    }
    let mut acc = 0.0;
    for _ in 0..trajectories {
        let psi = run_trajectory(circuit, params, noise, rng);
        acc += psi.expectation_diagonal(diag);
    }
    acc / trajectories as f64
}

fn inject_gate_noise<R: Rng + ?Sized>(
    psi: &mut StateVector,
    op: &Op,
    noise: DepolarizingNoise,
    rng: &mut R,
) {
    let qubits = op.qubits();
    let p = if op.is_two_qubit() {
        noise.p2
    } else {
        noise.p1
    };
    if p == 0.0 {
        return;
    }
    if op.is_two_qubit() && qubits.len() == 2 {
        if rng.gen::<f64>() < p {
            // Uniform over the 15 non-identity two-qubit Paulis.
            let k = rng.gen_range(1..16usize);
            let (pa, pb) = (index_to_pauli(k % 4), index_to_pauli(k / 4));
            apply_local_pauli(psi, qubits[0], pa);
            apply_local_pauli(psi, qubits[1], pb);
        }
    } else {
        for &q in &qubits {
            if rng.gen::<f64>() < p {
                let k = rng.gen_range(1..4usize);
                apply_local_pauli(psi, q, index_to_pauli(k));
            }
        }
    }
}

fn index_to_pauli(k: usize) -> Pauli {
    match k {
        0 => Pauli::I,
        1 => Pauli::X,
        2 => Pauli::Y,
        _ => Pauli::Z,
    }
}

fn apply_local_pauli(psi: &mut StateVector, q: usize, p: Pauli) {
    match p {
        Pauli::I => {}
        Pauli::X => psi.x(q),
        Pauli::Y => psi.y(q),
        Pauli::Z => psi.z(q),
    }
}

/// A classical readout-error channel: each measured bit flips independently.
///
/// `p01` is P(read 1 | true 0), `p10` is P(read 0 | true 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReadoutError {
    /// Probability of reading 1 when the qubit is 0.
    pub p01: f64,
    /// Probability of reading 0 when the qubit is 1.
    pub p10: f64,
}

impl ReadoutError {
    /// Creates a readout-error model.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities lie in `[0, 0.5)`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..0.5).contains(&p01), "p01 must be in [0,0.5)");
        assert!((0.0..0.5).contains(&p10), "p10 must be in [0,0.5)");
        ReadoutError { p01, p10 }
    }

    /// The error-free model.
    pub fn ideal() -> Self {
        ReadoutError { p01: 0.0, p10: 0.0 }
    }

    /// Applies bit flips to a sampled outcome.
    pub fn corrupt<R: Rng + ?Sized>(&self, outcome: u64, n: usize, rng: &mut R) -> u64 {
        let mut out = outcome;
        for q in 0..n {
            let bit = (outcome >> q) & 1;
            let flip_p = if bit == 0 { self.p01 } else { self.p10 };
            if flip_p > 0.0 && rng.gen::<f64>() < flip_p {
                out ^= 1 << q;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_noise_matches_exact() {
        let mut c = Circuit::new(2, 1);
        c.push(Op::H(0));
        c.push(Op::Cnot(0, 1));
        c.push(Op::Rx(0, Param::Var(0)));
        let diag = vec![1.0, -1.0, -1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let noisy =
            noisy_expectation_diagonal(&c, &[0.4], &diag, DepolarizingNoise::ideal(), 1, &mut rng);
        let exact = c.run(&[0.4]).expectation_diagonal(&diag);
        assert!((noisy - exact).abs() < 1e-12);
    }

    #[test]
    fn noise_damps_expectation_toward_mixed() {
        // GHZ-like circuit measuring ZZ: ideal expectation 1.0; depolarizing
        // noise pulls it toward 0.
        let mut c = Circuit::new(2, 0);
        c.push(Op::H(0));
        c.push(Op::Cnot(0, 1));
        let diag = vec![1.0, -1.0, -1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(42);
        let noise = DepolarizingNoise::new(0.05, 0.10);
        let e = noisy_expectation_diagonal(&c, &[], &diag, noise, 3000, &mut rng);
        assert!(e < 0.99, "noise should damp expectation, got {e}");
        assert!(e > 0.5, "damping too strong for these rates, got {e}");
    }

    #[test]
    fn trajectory_preserves_norm() {
        let mut c = Circuit::new(3, 0);
        c.push(Op::H(0));
        c.push(Op::Cnot(0, 1));
        c.push(Op::Cnot(1, 2));
        let mut rng = StdRng::seed_from_u64(3);
        let psi = run_trajectory(&c, &[], DepolarizingNoise::new(0.2, 0.3), &mut rng);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_noise_multiplies_rates() {
        let noise = DepolarizingNoise::new(0.01, 0.02).scaled(3.0);
        assert!((noise.p1 - 0.03).abs() < 1e-12);
        assert!((noise.p2 - 0.06).abs() < 1e-12);
    }

    #[test]
    fn scaled_noise_saturates() {
        let noise = DepolarizingNoise::new(0.5, 0.5).scaled(10.0);
        assert!(noise.p1 <= 0.75 && noise.p2 <= 0.9375);
    }

    #[test]
    #[should_panic(expected = "p1 must be in [0,1)")]
    fn rejects_invalid_rate() {
        let _ = DepolarizingNoise::new(1.5, 0.0);
    }

    #[test]
    fn readout_corruption_rate_statistics() {
        let ro = ReadoutError::new(0.1, 0.2);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 20_000;
        let mut flips0 = 0usize;
        let mut flips1 = 0usize;
        for _ in 0..trials {
            if ro.corrupt(0b0, 1, &mut rng) == 1 {
                flips0 += 1;
            }
            if ro.corrupt(0b1, 1, &mut rng) == 0 {
                flips1 += 1;
            }
        }
        let f0 = flips0 as f64 / trials as f64;
        let f1 = flips1 as f64 / trials as f64;
        assert!((f0 - 0.1).abs() < 0.01, "p01 estimate {f0}");
        assert!((f1 - 0.2).abs() < 0.01, "p10 estimate {f1}");
    }

    #[test]
    fn ideal_readout_is_identity() {
        let ro = ReadoutError::ideal();
        let mut rng = StdRng::seed_from_u64(5);
        for b in 0..8u64 {
            assert_eq!(ro.corrupt(b, 3, &mut rng), b);
        }
    }
}
