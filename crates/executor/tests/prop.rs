//! Property-based tests for the multi-QPU execution substrate.

use oscar_executor::prelude::*;
use oscar_mitigation::model::NoiseModel;
use oscar_problems::ising::IsingProblem;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_problem(seed: u64) -> IsingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    IsingProblem::random_3_regular(6, &mut rng)
}

fn jobs(count: usize) -> Vec<Job> {
    (0..count)
        .map(|i| Job {
            index: i,
            betas: vec![0.01 * i as f64],
            gammas: vec![0.015 * i as f64],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job is returned exactly once for any valid share split.
    #[test]
    fn split_is_a_partition(share in 0.0f64..1.0, n_jobs in 1usize..40) {
        let p = small_problem(1);
        let d1 = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
        let d2 = QpuDevice::new("b", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 1);
        let js = jobs(n_jobs);
        let out = execute_split(&[&d1, &d2], &[share, 1.0 - share], &js);
        prop_assert_eq!(out.len(), n_jobs);
        let mut indices: Vec<usize> = out.iter().map(|o| o.index).collect();
        indices.dedup();
        prop_assert_eq!(indices, (0..n_jobs).collect::<Vec<_>>());
    }

    /// The timeout filter keeps exactly the outcomes within the deadline
    /// and is monotone in the deadline.
    #[test]
    fn timeout_filter_monotone(n_jobs in 2usize..30, t1 in 0.1f64..0.6, t2 in 0.6f64..1.0) {
        let p = small_problem(2);
        let d = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), LatencyModel::cloud_queue(), 5);
        let out = execute_round_robin(&[&d], &jobs(n_jobs));
        let total = makespan(&out);
        let kept1 = within_timeout(&out, total * t1);
        let kept2 = within_timeout(&out, total * t2);
        prop_assert!(kept1.len() <= kept2.len());
        prop_assert!(kept1.iter().all(|o| o.completion_time <= total * t1));
    }

    /// The NCM fit is affine-equivariant: scaling both sides scales the
    /// prediction.
    #[test]
    fn ncm_affine_equivariance(scale in 0.1f64..5.0, seed in 0u64..200) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..30).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.3 * x - 0.4).collect();
        let m = NoiseCompensationModel::fit(&xs, &ys);
        let ys_scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let m_scaled = NoiseCompensationModel::fit(&xs, &ys_scaled);
        for &x in xs.iter().take(5) {
            prop_assert!((m_scaled.transform(x) - scale * m.transform(x)).abs() < 1e-9);
        }
    }

    /// Latency samples are always at least the base time.
    #[test]
    fn latency_at_least_base(base in 0.0f64..5.0, mu in -1.0f64..3.0, sigma in 0.0f64..2.0, seed in 0u64..100) {
        let model = LatencyModel::new(base, mu, sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(model.sample(&mut rng) >= base);
        }
    }

    /// Hardware-like landscapes have the configured damping: zero drift
    /// and white noise leave a pure convex combination with the mixed mean.
    #[test]
    fn hardware_like_pure_damping(fidelity in 0.1f64..0.9) {
        let p = small_problem(3);
        let cfg = HardwareLikeConfig { fidelity, drift_std: 0.0, white_std: 0.0, drift_cells: 4 };
        let mut rng = StdRng::seed_from_u64(4);
        let (noisy, ideal) =
            hardware_like_landscape(&p, 8, 8, (-0.5, 0.5), (0.0, 1.0), &cfg, &mut rng);
        let mixed = p.qaoa_evaluator().diagonal_mean();
        for (n, i) in noisy.iter().zip(&ideal) {
            let expect = fidelity * i + (1.0 - fidelity) * mixed;
            prop_assert!((n - expect).abs() < 1e-9);
        }
    }
}

/// Chunk-boundary apportionment invariants of `execute_split` /
/// `split_boundaries`, over random share vectors (the satellite fix for
/// the seed's cumulative-rounding scheme).
mod split_apportionment {
    use oscar_executor::prelude::split_boundaries;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every job is assigned to exactly one contiguous chunk, and each
        /// device's count differs from its exact proportional share by
        /// less than one job — for any normalized share vector, including
        /// ones with zero entries.
        #[test]
        fn boundaries_partition_exactly(seed in 0u64..10_000, devices in 1usize..7, n in 0usize..200) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Random non-negative weights, some forced to zero, normalized.
            let mut weights: Vec<f64> = (0..devices)
                .map(|_| if rng.gen_range(0.0..1.0) < 0.2 { 0.0 } else { rng.gen_range(0.0..1.0) })
                .collect();
            let total: f64 = weights.iter().sum();
            if total == 0.0 {
                weights[0] = 1.0;
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }

            let bounds = split_boundaries(&weights, n);
            prop_assert_eq!(bounds.len(), devices + 1);
            prop_assert_eq!(bounds[0], 0);
            prop_assert_eq!(*bounds.last().unwrap(), n);
            // Monotone boundaries <=> disjoint contiguous chunks covering 0..n.
            for w in bounds.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // Largest-remainder quota property: |count - share*n| < 1.
            for (d, &share) in weights.iter().enumerate() {
                let count = (bounds[d + 1] - bounds[d]) as f64;
                let quota = share * n as f64;
                prop_assert!(
                    (count - quota).abs() < 1.0,
                    "device {} got {} jobs for quota {}", d, count, quota
                );
            }
        }
    }
}
