//! Hardware-like landscape generation — the stand-in for the Google
//! Sycamore QAOA dataset (paper §4.3, Figures 5–6).
//!
//! We cannot ship Google's dataset, so we synthesize landscapes with the
//! same statistical character: a 50x50 grid of p=1 QAOA expectations,
//! heavily damped by hardware-scale depolarizing noise, overlaid with
//! *spatially correlated* drift (calibration wander across the acquisition
//! sweep) and per-point shot noise. Reconstruction quality as a function
//! of sampling fraction — the quantity Figures 5–6 measure — depends only
//! on these statistics, not on the physical origin of the data
//! (substitution documented in DESIGN.md).

use oscar_mitigation::gaussian::sample_normal;
use oscar_problems::ising::IsingProblem;
use rand::Rng;

/// Configuration for the hardware-like landscape generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareLikeConfig {
    /// Effective circuit fidelity (Sycamore-scale: ~0.3–0.6 for QAOA).
    pub fidelity: f64,
    /// Standard deviation of the correlated drift field, as a fraction of
    /// the landscape's dynamic range.
    pub drift_std: f64,
    /// Coarse-grid size of the drift field (smaller = smoother drift).
    pub drift_cells: usize,
    /// Per-point white-noise std as a fraction of the dynamic range
    /// (shot noise at a few thousand shots).
    pub white_std: f64,
}

impl Default for HardwareLikeConfig {
    fn default() -> Self {
        HardwareLikeConfig {
            fidelity: 0.45,
            drift_std: 0.05,
            drift_cells: 5,
            white_std: 0.04,
        }
    }
}

/// Generates a hardware-like `rows x cols` landscape for a p=1 QAOA
/// problem over the angle box `beta_range x gamma_range` (row index =
/// beta, column index = gamma, row-major).
///
/// Returns `(noisy_landscape, ideal_landscape)`.
///
/// # Panics
///
/// Panics if the grid is smaller than 2x2.
pub fn hardware_like_landscape<R: Rng + ?Sized>(
    problem: &IsingProblem,
    rows: usize,
    cols: usize,
    beta_range: (f64, f64),
    gamma_range: (f64, f64),
    cfg: &HardwareLikeConfig,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert!(rows >= 2 && cols >= 2, "grid too small");
    let eval = problem.qaoa_evaluator();
    let mixed = eval.diagonal_mean();

    let mut ideal = vec![0.0; rows * cols];
    for r in 0..rows {
        let beta = lerp(beta_range, r, rows);
        for c in 0..cols {
            let gamma = lerp(gamma_range, c, cols);
            ideal[r * cols + c] = eval.expectation(&[beta], &[gamma]);
        }
    }
    let lo = ideal.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ideal.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(1e-12);

    let drift = correlated_field(rows, cols, cfg.drift_cells, cfg.drift_std * range, rng);
    let noisy: Vec<f64> = ideal
        .iter()
        .zip(drift.iter())
        .map(|(&e, &d)| {
            let damped = cfg.fidelity * e + (1.0 - cfg.fidelity) * mixed;
            damped + d + sample_normal(rng, 0.0, cfg.white_std * range)
        })
        .collect();
    (noisy, ideal)
}

/// A smooth random field: white noise on a coarse `cells x cells` grid,
/// bilinearly upsampled to `rows x cols`.
pub fn correlated_field<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    cells: usize,
    std: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(cells >= 2, "need at least a 2x2 coarse grid");
    let coarse: Vec<f64> = (0..cells * cells)
        .map(|_| sample_normal(rng, 0.0, std))
        .collect();
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        let fr = r as f64 / (rows - 1).max(1) as f64 * (cells - 1) as f64;
        let r0 = (fr.floor() as usize).min(cells - 2);
        let tr = fr - r0 as f64;
        for c in 0..cols {
            let fc = c as f64 / (cols - 1).max(1) as f64 * (cells - 1) as f64;
            let c0 = (fc.floor() as usize).min(cells - 2);
            let tc = fc - c0 as f64;
            let v00 = coarse[r0 * cells + c0];
            let v01 = coarse[r0 * cells + c0 + 1];
            let v10 = coarse[(r0 + 1) * cells + c0];
            let v11 = coarse[(r0 + 1) * cells + c0 + 1];
            out[r * cols + c] = v00 * (1.0 - tr) * (1.0 - tc)
                + v01 * (1.0 - tr) * tc
                + v10 * tr * (1.0 - tc)
                + v11 * tr * tc;
        }
    }
    out
}

fn lerp(range: (f64, f64), i: usize, n: usize) -> f64 {
    range.0 + (range.1 - range.0) * i as f64 / (n - 1).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(6);
        IsingProblem::random_3_regular(10, &mut rng)
    }

    #[test]
    fn shapes_match() {
        let mut rng = StdRng::seed_from_u64(1);
        let (noisy, ideal) = hardware_like_landscape(
            &problem(),
            20,
            20,
            (-0.6, 0.6),
            (0.0, 1.5),
            &HardwareLikeConfig::default(),
            &mut rng,
        );
        assert_eq!(noisy.len(), 400);
        assert_eq!(ideal.len(), 400);
    }

    #[test]
    fn noisy_is_correlated_with_ideal() {
        let mut rng = StdRng::seed_from_u64(2);
        let (noisy, ideal) = hardware_like_landscape(
            &problem(),
            25,
            25,
            (-0.6, 0.6),
            (0.0, 1.5),
            &HardwareLikeConfig::default(),
            &mut rng,
        );
        let corr = pearson(&noisy, &ideal);
        assert!(corr > 0.5, "correlation {corr} too low");
        assert!(corr < 0.999, "correlation {corr} suspiciously perfect");
    }

    #[test]
    fn damping_compresses_dynamic_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = HardwareLikeConfig {
            drift_std: 0.0,
            white_std: 0.0,
            ..HardwareLikeConfig::default()
        };
        let (noisy, ideal) =
            hardware_like_landscape(&problem(), 15, 15, (-0.6, 0.6), (0.0, 1.5), &cfg, &mut rng);
        let range = |v: &[f64]| {
            v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - v.iter().copied().fold(f64::INFINITY, f64::min)
        };
        let ratio = range(&noisy) / range(&ideal);
        assert!((ratio - cfg.fidelity).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn correlated_field_is_smooth() {
        let mut rng = StdRng::seed_from_u64(4);
        let field = correlated_field(40, 40, 4, 1.0, &mut rng);
        // Neighboring values should differ far less than the field's std.
        let mut diffs = 0.0;
        let mut count = 0;
        for r in 0..40 {
            for c in 0..39 {
                diffs += (field[r * 40 + c + 1] - field[r * 40 + c]).abs();
                count += 1;
            }
        }
        let mean_diff = diffs / count as f64;
        let std = {
            let m = field.iter().sum::<f64>() / field.len() as f64;
            (field.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / field.len() as f64).sqrt()
        };
        assert!(
            mean_diff < std * 0.5,
            "field not smooth: mean diff {mean_diff}, std {std}"
        );
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }
}
