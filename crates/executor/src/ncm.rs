//! Noise Compensation Model (NCM) — paper §5.1.
//!
//! When landscape samples come from QPUs with different noise levels, the
//! reconstruction mixes the devices' landscapes and masks device-specific
//! effects. The NCM is a linear regression trained on a small set of
//! circuit parameters executed on *both* devices; it maps expectation
//! values measured on QPU-2 into the noise frame of the reference QPU-1.
//! Linear is the right model class here because global depolarizing noise
//! acts affinely on expectations (`E -> f E + (1-f) mean`), so the
//! QPU-2 -> QPU-1 map is itself affine.

/// A fitted affine map `y ≈ slope * x + intercept`.
///
/// # Examples
///
/// ```
/// use oscar_executor::ncm::NoiseCompensationModel;
///
/// // y = 2x + 1, recovered exactly from three points.
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [1.0, 3.0, 5.0];
/// let ncm = NoiseCompensationModel::fit(&xs, &ys);
/// assert!((ncm.transform(10.0) - 21.0).abs() < 1e-10);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseCompensationModel {
    slope: f64,
    intercept: f64,
    r_squared: f64,
}

impl NoiseCompensationModel {
    /// Fits by ordinary least squares on paired samples
    /// (`xs[i]` measured on the source QPU, `ys[i]` on the reference QPU
    /// at the same circuit parameters).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pairs or the lengths differ.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "paired samples must align");
        assert!(xs.len() >= 2, "need at least two training pairs");
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let sxy: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| (x - mx) * (y - my))
            .sum();
        let slope = if sxx.abs() < 1e-15 { 1.0 } else { sxy / sxx };
        let intercept = my - slope * mx;
        // Coefficient of determination.
        let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| {
                let pred = slope * x + intercept;
                (y - pred) * (y - pred)
            })
            .sum();
        let r_squared = if syy.abs() < 1e-15 {
            1.0
        } else {
            1.0 - ss_res / syy
        };
        NoiseCompensationModel {
            slope,
            intercept,
            r_squared,
        }
    }

    /// The identity map (uncompensated mode).
    pub fn identity() -> Self {
        NoiseCompensationModel {
            slope: 1.0,
            intercept: 0.0,
            r_squared: 1.0,
        }
    }

    /// Maps one source-QPU expectation into the reference frame.
    pub fn transform(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Maps a batch of values.
    pub fn transform_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.transform(x)).collect()
    }

    /// Fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Training goodness-of-fit (1 = perfect affine relationship).
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_affine_recovery() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.7 * x + 0.3).collect();
        let m = NoiseCompensationModel::fit(&xs, &ys);
        assert!((m.slope() + 0.7).abs() < 1e-12);
        assert!((m.intercept() - 0.3).abs() < 1e-12);
        assert!((m.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_close() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.739).sin()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.4 * x - 0.2 + 0.01 * ((i * 37 % 11) as f64 - 5.0))
            .collect();
        let m = NoiseCompensationModel::fit(&xs, &ys);
        assert!((m.slope() - 1.4).abs() < 0.05, "slope {}", m.slope());
        assert!((m.intercept() + 0.2).abs() < 0.05);
        assert!(m.r_squared() > 0.99);
    }

    #[test]
    fn identity_map() {
        let m = NoiseCompensationModel::identity();
        assert_eq!(m.transform(0.42), 0.42);
    }

    #[test]
    fn degenerate_x_falls_back_to_shift() {
        let m = NoiseCompensationModel::fit(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]);
        assert!((m.transform(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compensates_depolarizing_relationship() {
        // Two global depolarizing channels: E1 = f1 E + (1-f1) m,
        // E2 = f2 E + (1-f2) m. The map E2 -> E1 is affine with slope
        // f1/f2; the NCM must recover it from samples.
        let f1 = 0.9;
        let f2 = 0.7;
        let mean = -1.5;
        let ideal: Vec<f64> = (0..50).map(|i| -3.0 + i as f64 * 0.05).collect();
        let e1: Vec<f64> = ideal.iter().map(|e| f1 * e + (1.0 - f1) * mean).collect();
        let e2: Vec<f64> = ideal.iter().map(|e| f2 * e + (1.0 - f2) * mean).collect();
        let m = NoiseCompensationModel::fit(&e2, &e1);
        assert!((m.slope() - f1 / f2).abs() < 1e-9, "slope {}", m.slope());
        for (x, y) in e2.iter().zip(&e1) {
            assert!((m.transform(*x) - y).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_pair() {
        let _ = NoiseCompensationModel::fit(&[1.0], &[2.0]);
    }
}
