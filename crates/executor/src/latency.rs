//! Queue/latency model for simulated QPUs.
//!
//! Paper §5.2: queuing delays dominate wall time on shared quantum cloud
//! services, with 10–30x tail latencies over the median. We model job
//! latency as `base + LogNormal(mu, sigma)` — a heavy-tailed distribution
//! whose tail ratio is tunable — in *simulated seconds* (nothing sleeps).

use rand::Rng;

/// Heavy-tailed job latency model (simulated time).
///
/// # Examples
///
/// ```
/// use oscar_executor::latency::LatencyModel;
/// use rand::SeedableRng;
///
/// let model = LatencyModel::cloud_queue();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let t = model.sample(&mut rng);
/// assert!(t > 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Deterministic execution time per job (circuit batch), seconds.
    pub base: f64,
    /// Log-space mean of the queuing delay.
    pub queue_mu: f64,
    /// Log-space standard deviation (controls the tail heaviness).
    pub queue_sigma: f64,
}

impl LatencyModel {
    /// A fast, deterministic model (no queue): simulators.
    pub fn instant() -> Self {
        LatencyModel {
            base: 0.1,
            queue_mu: f64::NEG_INFINITY,
            queue_sigma: 0.0,
        }
    }

    /// A cloud-QPU-like model: median queue ≈ 7 s with a heavy tail
    /// producing 10–30x outliers (matching the paper's observation).
    pub fn cloud_queue() -> Self {
        LatencyModel {
            base: 1.0,
            queue_mu: 2.0,
            queue_sigma: 1.0,
        }
    }

    /// Creates a custom model.
    ///
    /// # Panics
    ///
    /// Panics if `base < 0` or `queue_sigma < 0`.
    pub fn new(base: f64, queue_mu: f64, queue_sigma: f64) -> Self {
        assert!(base >= 0.0, "base latency must be non-negative");
        assert!(queue_sigma >= 0.0, "sigma must be non-negative");
        LatencyModel {
            base,
            queue_mu,
            queue_sigma,
        }
    }

    /// Samples one job latency in simulated seconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let queue = if self.queue_mu == f64::NEG_INFINITY {
            0.0
        } else {
            let z = oscar_mitigation::gaussian::sample_normal(rng, self.queue_mu, self.queue_sigma);
            z.exp()
        };
        self.base + queue
    }

    /// The median latency (analytic).
    pub fn median(&self) -> f64 {
        if self.queue_mu == f64::NEG_INFINITY {
            self.base
        } else {
            self.base + self.queue_mu.exp()
        }
    }
}

/// Summary statistics over a set of sampled latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyStats {
    /// Median latency.
    pub median: f64,
    /// 99th percentile latency.
    pub p99: f64,
    /// Maximum latency.
    pub max: f64,
}

impl LatencyStats {
    /// Computes statistics from samples via the workspace-shared
    /// quantile math in [`oscar_obs::quantile`] (NaN samples sort above
    /// every number — `total_cmp` order — and surface in `max` instead
    /// of panicking the batch).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        let summary = oscar_obs::quantile::summarize(samples).expect("need at least one sample");
        LatencyStats::from(summary)
    }

    /// Tail ratio `p99 / median`.
    pub fn tail_ratio(&self) -> f64 {
        self.p99 / self.median
    }
}

impl From<oscar_obs::Summary> for LatencyStats {
    fn from(summary: oscar_obs::Summary) -> Self {
        LatencyStats {
            median: summary.median,
            p99: summary.p99,
            max: summary.max,
        }
    }
}

/// A bounded sliding window of observed latencies (wall-clock seconds).
///
/// A thin adapter over [`oscar_obs::SampleWindow`] (the workspace's one
/// bounded-ring/percentile implementation) that reports
/// [`LatencyStats`]: once full, each new sample overwrites the oldest,
/// so memory stays bounded no matter how long the process lives.
///
/// # Examples
///
/// ```
/// use oscar_executor::latency::LatencyWindow;
///
/// let mut window = LatencyWindow::new(3);
/// assert!(window.stats().is_none());
/// for t in [1.0, 2.0, 3.0, 40.0] {
///     window.record(t);
/// }
/// // Capacity 3: the 1.0 sample has been evicted.
/// let stats = window.stats().unwrap();
/// assert_eq!(stats.median, 3.0);
/// assert_eq!(stats.max, 40.0);
/// ```
#[derive(Clone, Debug)]
pub struct LatencyWindow {
    window: oscar_obs::SampleWindow,
}

impl LatencyWindow {
    /// Creates an empty window holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        LatencyWindow {
            window: oscar_obs::SampleWindow::new(cap),
        }
    }

    /// Records one observed latency, evicting the oldest sample once
    /// the window is at capacity.
    pub fn record(&mut self, seconds: f64) {
        self.window.record(seconds);
    }

    /// Number of samples currently held (saturates at capacity).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Statistics over the window, or `None` while it is empty —
    /// callers must supply their own cold-start default rather than
    /// trust percentiles of nothing.
    pub fn stats(&self) -> Option<LatencyStats> {
        self.window.summary().map(LatencyStats::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instant_model_is_deterministic() {
        let m = LatencyModel::instant();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert!((m.sample(&mut rng) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn cloud_queue_has_heavy_tail() {
        let m = LatencyModel::cloud_queue();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| m.sample(&mut rng)).collect();
        let stats = LatencyStats::from_samples(&samples);
        assert!(
            stats.tail_ratio() > 3.0,
            "tail ratio {} not heavy",
            stats.tail_ratio()
        );
        assert!((stats.median - m.median()).abs() / m.median() < 0.2);
    }

    #[test]
    fn latencies_positive() {
        let m = LatencyModel::cloud_queue();
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| m.sample(&mut rng) > 0.0));
    }

    #[test]
    fn stats_on_known_values() {
        let s = LatencyStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    #[should_panic(expected = "need at least one sample")]
    fn stats_reject_empty() {
        let _ = LatencyStats::from_samples(&[]);
    }

    #[test]
    fn window_is_bounded_ring() {
        let mut w = LatencyWindow::new(4);
        assert!(w.is_empty() && w.stats().is_none());
        for t in 0..100 {
            w.record(t as f64);
        }
        assert_eq!(w.len(), 4);
        let stats = w.stats().unwrap();
        // Only the last four samples (96..=99) survive.
        assert_eq!(stats.max, 99.0);
        assert!(stats.median >= 96.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn window_rejects_zero_capacity() {
        let _ = LatencyWindow::new(0);
    }

    #[test]
    fn stats_tolerate_nan_samples() {
        // Regression: this used to panic via partial_cmp().unwrap().
        // NaN sorts above every finite sample (total_cmp order), so it
        // lands in `max` while the low quantiles stay finite.
        let s = LatencyStats::from_samples(&[2.0, f64::NAN, 1.0, 3.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert!(s.max.is_nan(), "NaN must surface in max, got {}", s.max);

        let all_nan = LatencyStats::from_samples(&[f64::NAN, f64::NAN]);
        assert!(all_nan.median.is_nan() && all_nan.max.is_nan());
    }
}
