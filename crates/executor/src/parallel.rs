//! Parallel landscape sampling across multiple QPUs (paper §5, Figure 7).
//!
//! OSCAR decouples the optimizer from circuit execution, so landscape
//! samples are independent jobs that can run on `k` devices concurrently.
//! This module distributes jobs across devices (real OS threads via
//! `std::thread::scope`), tracks *simulated* completion times from each
//! device's latency model, and supports eager reconstruction: dropping
//! straggler samples past a soft timeout (paper §5.2) instead of waiting
//! out the tail.

use crate::device::QpuDevice;

/// One landscape point to evaluate: QAOA angles.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Index of this point in the caller's sample list.
    pub index: usize,
    /// Mixer angles (one per QAOA layer).
    pub betas: Vec<f64>,
    /// Phase angles (one per QAOA layer).
    pub gammas: Vec<f64>,
}

/// A completed job.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Index of the point in the caller's sample list.
    pub index: usize,
    /// Measured (noisy) expectation value.
    pub value: f64,
    /// Which device produced it (index into the device slice).
    pub device: usize,
    /// Simulated completion time (seconds since submission of the batch):
    /// jobs on one device execute serially, so this is the running sum of
    /// that device's job latencies.
    pub completion_time: f64,
}

/// Splits `jobs` across devices according to `shares` and executes each
/// device's queue on its own thread.
///
/// `shares[d]` is the fraction of jobs assigned to device `d`; they must
/// sum to ~1. Jobs are assigned in order: device 0 takes the first
/// `shares[0]` fraction, and so on — matching the paper's "X% of samples
/// come from QPU-1" experimental axis.
///
/// Chunk sizes are apportioned with the largest-remainder method, so for
/// *any* valid share vector every job is assigned to exactly one device
/// and each device's count differs from its exact proportional share
/// `shares[d] * jobs.len()` by less than one job. (The previous
/// cumulative-rounding scheme could starve a middle device of a job that
/// its share entitled it to when neighbours' remainders both rounded in
/// the same direction.)
///
/// # Panics
///
/// Panics if `devices` is empty, shares length mismatches, shares are
/// negative, or they do not sum to 1 (within 1e-6).
pub fn execute_split(devices: &[&QpuDevice], shares: &[f64], jobs: &[Job]) -> Vec<Outcome> {
    assert!(!devices.is_empty(), "need at least one device");
    assert_eq!(devices.len(), shares.len(), "one share per device");
    assert!(
        shares.iter().all(|&s| s >= 0.0),
        "shares must be non-negative"
    );
    let total: f64 = shares.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "shares must sum to 1");

    let boundaries = split_boundaries(shares, jobs.len());
    let mut results: Vec<Vec<Outcome>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, device) in devices.iter().enumerate() {
            let chunk = &jobs[boundaries[d]..boundaries[d + 1]];
            handles.push(scope.spawn(move || run_device_queue(device, d, chunk)));
        }
        for h in handles {
            results.push(h.join().expect("device thread panicked"));
        }
    });

    let mut flat: Vec<Outcome> = results.into_iter().flatten().collect();
    flat.sort_by_key(|o| o.index);
    flat
}

/// Contiguous chunk boundaries for `n` jobs under `shares`, apportioned
/// by the largest-remainder (Hamilton) method: device `d` receives
/// `floor(shares[d] * n)` jobs plus at most one of the leftover jobs,
/// handed out in order of descending fractional remainder (ties broken
/// by device index). The returned vector has `shares.len() + 1` entries
/// with `boundaries[0] == 0` and `boundaries[last] == n`.
pub fn split_boundaries(shares: &[f64], n: usize) -> Vec<usize> {
    let quotas: Vec<f64> = shares.iter().map(|&s| s * n as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Distribute the remaining jobs by largest fractional remainder.
    let mut order: Vec<usize> = (0..shares.len()).collect();
    // total_cmp so a NaN share (caller bugs reach here via the public
    // `split_boundaries`) yields a deterministic apportionment instead
    // of a sort panic; `execute_split` still rejects NaN shares up
    // front via its sum check.
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    for &d in order.iter().take(n.saturating_sub(assigned)) {
        counts[d] += 1;
    }
    let mut boundaries = Vec::with_capacity(shares.len() + 1);
    boundaries.push(0usize);
    for &c in &counts {
        boundaries.push(boundaries.last().unwrap() + c);
    }
    debug_assert_eq!(*boundaries.last().unwrap(), n);
    boundaries
}

/// Round-robin variant: job `i` goes to device `i % k`. Balances load when
/// devices are interchangeable.
pub fn execute_round_robin(devices: &[&QpuDevice], jobs: &[Job]) -> Vec<Outcome> {
    assert!(!devices.is_empty(), "need at least one device");
    let k = devices.len();
    let chunks: Vec<Vec<Job>> = (0..k)
        .map(|d| jobs.iter().skip(d).step_by(k).cloned().collect::<Vec<_>>())
        .collect();
    let mut results: Vec<Vec<Outcome>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (d, device) in devices.iter().enumerate() {
            let chunk = &chunks[d];
            handles.push(scope.spawn(move || run_device_queue(device, d, chunk)));
        }
        for h in handles {
            results.push(h.join().expect("device thread panicked"));
        }
    });
    let mut flat: Vec<Outcome> = results.into_iter().flatten().collect();
    flat.sort_by_key(|o| o.index);
    flat
}

fn run_device_queue(device: &QpuDevice, device_idx: usize, jobs: &[Job]) -> Vec<Outcome> {
    let mut clock = 0.0;
    jobs.iter()
        .map(|job| {
            let (value, latency) = device.execute_timed(&job.betas, &job.gammas);
            clock += latency;
            Outcome {
                index: job.index,
                value,
                device: device_idx,
                completion_time: clock,
            }
        })
        .collect()
}

/// The simulated makespan: when the last sample lands.
///
/// # Panics
///
/// Panics if `outcomes` is empty.
pub fn makespan(outcomes: &[Outcome]) -> f64 {
    assert!(!outcomes.is_empty(), "no outcomes");
    outcomes
        .iter()
        .map(|o| o.completion_time)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Eager reconstruction filter (paper §5.2): keeps only samples completed
/// by the soft timeout, trading a slightly smaller sampling fraction for a
/// much earlier reconstruction start.
pub fn within_timeout(outcomes: &[Outcome], timeout: f64) -> Vec<Outcome> {
    outcomes
        .iter()
        .filter(|o| o.completion_time <= timeout)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use oscar_mitigation::model::NoiseModel;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_jobs(n: usize) -> Vec<Job> {
        (0..n)
            .map(|i| Job {
                index: i,
                betas: vec![0.01 * i as f64],
                gammas: vec![0.02 * i as f64],
            })
            .collect()
    }

    fn problem() -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(2);
        IsingProblem::random_3_regular(6, &mut rng)
    }

    #[test]
    fn split_covers_all_jobs_once() {
        let p = problem();
        let d1 = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
        let d2 = QpuDevice::new("b", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 1);
        let jobs = make_jobs(20);
        let out = execute_split(&[&d1, &d2], &[0.3, 0.7], &jobs);
        assert_eq!(out.len(), 20);
        let indices: Vec<usize> = out.iter().map(|o| o.index).collect();
        assert_eq!(indices, (0..20).collect::<Vec<_>>());
        // 30% of 20 = 6 jobs on device 0.
        assert_eq!(out.iter().filter(|o| o.device == 0).count(), 6);
    }

    #[test]
    fn ideal_devices_reproduce_evaluator_values() {
        let p = problem();
        let d = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
        let jobs = make_jobs(5);
        let out = execute_round_robin(&[&d], &jobs);
        let eval = p.qaoa_evaluator();
        for o in &out {
            let expect = eval.expectation(&jobs[o.index].betas, &jobs[o.index].gammas);
            assert!((o.value - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn completion_times_monotone_per_device() {
        let p = problem();
        let d = QpuDevice::new(
            "a",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::cloud_queue(),
            7,
        );
        let jobs = make_jobs(10);
        let out = execute_round_robin(&[&d], &jobs);
        let times: Vec<f64> = out.iter().map(|o| o.completion_time).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn parallel_makespan_shorter_than_serial() {
        let p = problem();
        let lat = LatencyModel::new(1.0, f64::NEG_INFINITY, 0.0); // 1 s per job
        let d1 = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), lat, 0);
        let d2 = QpuDevice::new("b", &p, 1, NoiseModel::ideal(), lat, 1);
        let jobs = make_jobs(10);
        let serial = makespan(&execute_round_robin(&[&d1], &jobs));
        let parallel = makespan(&execute_round_robin(&[&d1, &d2], &jobs));
        assert!((serial - 10.0).abs() < 1e-9);
        assert!((parallel - 5.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_filter_drops_stragglers() {
        let p = problem();
        let d = QpuDevice::new(
            "a",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::cloud_queue(),
            3,
        );
        let jobs = make_jobs(50);
        let out = execute_round_robin(&[&d], &jobs);
        let total = makespan(&out);
        let kept = within_timeout(&out, total * 0.5);
        assert!(!kept.is_empty() && kept.len() < out.len());
        assert!(kept.iter().all(|o| o.completion_time <= total * 0.5));
    }

    #[test]
    fn split_boundaries_tolerate_nan_share() {
        // Regression: a NaN share used to panic the remainder sort via
        // partial_cmp().unwrap(). It must now apportion
        // deterministically: the NaN quota floors to zero jobs and the
        // boundary invariants still hold.
        let b = split_boundaries(&[f64::NAN, 0.5, 0.5], 10);
        assert_eq!(b.len(), 4);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 10);
        assert!(
            b.windows(2).all(|w| w[0] <= w[1]),
            "boundaries not monotone: {b:?}"
        );
        // Deterministic across calls.
        assert_eq!(b, split_boundaries(&[f64::NAN, 0.5, 0.5], 10));
    }

    #[test]
    #[should_panic(expected = "shares must sum to 1")]
    fn rejects_bad_shares() {
        let p = problem();
        let d = QpuDevice::new("a", &p, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
        let _ = execute_split(&[&d], &[0.5], &make_jobs(2));
    }
}
