//! Simulated QPU devices.
//!
//! A [`QpuDevice`] bundles a problem-specific QAOA evaluator with a device
//! noise configuration and a latency model. Devices stand in for the
//! paper's IBM Lagos / IBM Perth machines and for ideal/noisy simulators
//! (substitution documented in DESIGN.md): each produces expectation
//! values whose systematic bias is determined by its own noise config,
//! which is exactly the property the Noise Compensation Model experiments
//! (Figure 8, Table 5) exercise.

use crate::latency::LatencyModel;
use oscar_mitigation::model::NoiseModel;
use oscar_problems::ansatz::Ansatz;
use oscar_problems::ising::IsingProblem;
use oscar_problems::workload::{Molecule, VqeEvaluator};
use oscar_qsim::circuit::GateCounts;
use oscar_qsim::fingerprint::{tag, Fingerprint};
use oscar_qsim::noise::ReadoutError;
use oscar_qsim::qaoa::QaoaEvaluator;
use oscar_qsim::rng::CounterRng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Every device name [`DeviceSpec::by_name`] can resolve. The entries
/// are the paper's device/simulator lineup (Table 5): ideal and noisy
/// simulators plus simulated stand-ins for the IBM Perth/Lagos
/// machines.
pub const KNOWN_DEVICES: [&str; 7] = [
    "ideal sim",
    "noisy sim-i",
    "noisy sim-ii",
    "noisy sim",
    "zne sim",
    "ibm perth",
    "ibm lagos",
];

/// A problem-independent description of a simulated device: everything
/// needed to build a [`QpuDevice`] for any problem instance, and to
/// fingerprint the device for cache keys.
///
/// Where [`QpuDevice`] is a live, problem-bound executor (it owns the
/// transpiled gate counts and an evaluator), a `DeviceSpec` is the
/// *recipe*: it travels inside job specs, hashes stably, and is cheap to
/// clone.
///
/// # Examples
///
/// ```
/// use oscar_executor::device::DeviceSpec;
///
/// let spec = DeviceSpec::by_name("ibm perth").unwrap();
/// assert_eq!(spec.name, "ibm perth");
/// assert!(DeviceSpec::by_name("ibm osaka").is_none());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Device name (the registry key for known devices).
    pub name: String,
    /// Noise configuration the device applies to every execution.
    pub noise: NoiseModel,
    /// QAOA depth used when transpiling for physical gate counts.
    pub p: usize,
}

impl DeviceSpec {
    /// A custom device at QAOA depth 1.
    pub fn new(name: &str, noise: NoiseModel) -> Self {
        DeviceSpec {
            name: name.to_string(),
            noise,
            p: 1,
        }
    }

    /// Looks up one of the [`KNOWN_DEVICES`] presets by name.
    pub fn by_name(name: &str) -> Option<Self> {
        let noise = match name {
            "ideal sim" => NoiseModel::ideal(),
            "noisy sim-i" => NoiseModel::depolarizing(0.001, 0.005),
            "noisy sim-ii" => NoiseModel::depolarizing(0.003, 0.007),
            "noisy sim" => NoiseModel::depolarizing(0.002, 0.006).with_shots(4096),
            // Figures 9/10/13's ZNE device: heavy two-qubit noise plus
            // finite shots, so Richardson's {3,-3,1} weights amplify the
            // shot noise into the salt-like jaggedness the paper studies.
            "zne sim" => NoiseModel::depolarizing(0.001, 0.02).with_shots(2048),
            "ibm perth" => NoiseModel::depolarizing(0.0008, 0.009)
                .with_readout(ReadoutError::new(0.02, 0.025))
                .with_shots(4096),
            "ibm lagos" => NoiseModel::depolarizing(0.0005, 0.006)
                .with_readout(ReadoutError::new(0.012, 0.015))
                .with_shots(4096),
            _ => return None,
        };
        Some(DeviceSpec::new(name, noise))
    }

    /// The same device with its shot count overridden to `shots` — the
    /// sweep axis the paper's noisy experiments vary independently of
    /// the device (fig bins and `oscar-batch --shots` both use it).
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn with_shots(self, shots: usize) -> Self {
        DeviceSpec {
            noise: self.noise.with_shots(shots),
            ..self
        }
    }

    /// The same device transpiling for QAOA depth `p` — deeper circuits
    /// have more physical gates, so the same noise rates damp harder.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn with_depth(self, p: usize) -> Self {
        assert!(p > 0, "QAOA depth must be at least 1");
        DeviceSpec { p, ..self }
    }

    /// Stable 128-bit fingerprint of the spec (name, exact noise bit
    /// patterns, depth) — folds into landscape cache keys so landscapes
    /// from different devices never collide. Process-stable
    /// (FNV-1a-128 over the canonical encoding,
    /// [`oscar_qsim::fingerprint`]): the persistent landscape store
    /// keys entries by it across restarts and toolchains.
    ///
    /// Canonical encoding: `tag::DEVICE`, name (length-prefixed),
    /// depolarizing `p1`/`p2`, readout `p01`/`p10` (f64 bit patterns),
    /// the optional shot count, the QAOA depth.
    pub fn fingerprint(&self) -> u128 {
        let mut h = Fingerprint::new();
        h.write_u8(tag::DEVICE);
        h.write_str(&self.name);
        h.write_f64(self.noise.depolarizing.p1);
        h.write_f64(self.noise.depolarizing.p2);
        h.write_f64(self.noise.readout.p01);
        h.write_f64(self.noise.readout.p10);
        h.write_opt_u64(self.noise.shots.map(|s| s as u64));
        h.write_usize(self.p);
        h.finish()
    }

    /// Builds the live device for `problem` (instant latency, internal
    /// RNG seeded with `seed`; the deterministic
    /// [`QpuDevice::execute_at`] path ignores that internal stream).
    pub fn build(&self, problem: &IsingProblem, seed: u64) -> QpuDevice {
        QpuDevice::new(
            &self.name,
            problem,
            self.p,
            self.noise,
            LatencyModel::instant(),
            seed,
        )
    }

    /// Builds the live VQE device for `molecule` (the molecular analogue
    /// of [`Self::build`]; the spec's QAOA depth does not apply — the
    /// molecule's reference ansatz fixes the circuit).
    pub fn build_vqe(&self, molecule: Molecule) -> VqeDevice {
        VqeDevice::new(&self.name, molecule, self.noise)
    }
}

/// A simulated quantum processing unit executing QAOA circuits.
///
/// Thread-safe: `execute` may be called concurrently from the parallel
/// executor (the internal RNG is mutex-protected).
///
/// # Examples
///
/// ```
/// use oscar_executor::device::QpuDevice;
/// use oscar_executor::latency::LatencyModel;
/// use oscar_mitigation::model::NoiseModel;
/// use oscar_problems::ising::IsingProblem;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let problem = IsingProblem::random_3_regular(8, &mut rng);
/// let qpu = QpuDevice::new("sim", &problem, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
/// let e = qpu.execute(&[0.2], &[0.5]);
/// assert!(e <= 0.0);
/// ```
#[derive(Debug)]
pub struct QpuDevice {
    name: String,
    noise: NoiseModel,
    latency: LatencyModel,
    evaluator: QaoaEvaluator,
    counts: GateCounts,
    rng: Mutex<StdRng>,
}

impl QpuDevice {
    /// Builds a device for a QAOA problem at depth `p`.
    ///
    /// The physical gate counts come from transpiling the depth-`p` QAOA
    /// ansatz ([`Ansatz::qaoa`]), so the noise damping matches what the
    /// full circuit would suffer on hardware.
    pub fn new(
        name: &str,
        problem: &IsingProblem,
        p: usize,
        noise: NoiseModel,
        latency: LatencyModel,
        seed: u64,
    ) -> Self {
        let counts = Ansatz::qaoa(problem, p).circuit().gate_counts();
        QpuDevice {
            name: name.to_string(),
            noise,
            latency,
            evaluator: problem.qaoa_evaluator(),
            counts,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This device's noise configuration.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// This device's latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Physical gate counts of the transpiled circuit.
    pub fn gate_counts(&self) -> GateCounts {
        self.counts
    }

    /// The underlying ideal evaluator (e.g. for ground-truth landscapes).
    pub fn evaluator(&self) -> &QaoaEvaluator {
        &self.evaluator
    }

    /// Executes the QAOA circuit at the given angles, returning the noisy
    /// expectation value under this device's noise configuration.
    pub fn execute(&self, betas: &[f64], gammas: &[f64]) -> f64 {
        self.execute_scaled(betas, gammas, 1.0)
    }

    /// Executes with the noise amplified by `scale` (ZNE noise scaling via
    /// gate folding: the folded circuit has `scale`x the gates).
    pub fn execute_scaled(&self, betas: &[f64], gammas: &[f64], scale: f64) -> f64 {
        let (ideal, var) = self.evaluator.moments(betas, gammas);
        let mixed = self.evaluator.diagonal_mean();
        let scaled = self.noise.scaled(scale);
        let mut rng = self.lock_rng();
        scaled.noisy_expectation(ideal, var, mixed, self.counts, &mut *rng)
    }

    /// Executes with noise drawn from a caller-provided generator instead
    /// of the device's internal mutex-guarded stream.
    ///
    /// The internal stream makes a point's value depend on how many
    /// executions happened before it — order-dependent and therefore
    /// useless for results that must be reproducible under concurrency.
    /// This path leaves ordering to the caller: pass an RNG derived from
    /// the draw site (see [`Self::execute_at`]) and the value is a pure
    /// function of `(angles, rng state)`.
    pub fn execute_with_rng<R: Rng + ?Sized>(
        &self,
        betas: &[f64],
        gammas: &[f64],
        rng: &mut R,
    ) -> f64 {
        let (ideal, var) = self.evaluator.moments(betas, gammas);
        let mixed = self.evaluator.diagonal_mean();
        self.noise
            .noisy_expectation(ideal, var, mixed, self.counts, rng)
    }

    /// Deterministic noisy execution: noise is drawn from a
    /// [`CounterRng`] keyed by `(seed, stream)`, so the returned value is
    /// a pure function of `(angles, seed, stream)` — identical no matter
    /// how many other executions ran before it, on how many threads.
    ///
    /// Callers evaluating a landscape pass the experiment seed and the
    /// flat grid-point index as the stream.
    pub fn execute_at(&self, betas: &[f64], gammas: &[f64], seed: u64, stream: u64) -> f64 {
        self.execute_with_rng(betas, gammas, &mut CounterRng::new(seed, stream))
    }

    /// Noise-scaled execution with a caller-provided generator — the
    /// ZNE analogue of [`Self::execute_with_rng`]: the depolarizing
    /// rates are amplified by `scale` (gate folding), while noise draws
    /// come from `rng` instead of the order-dependent internal stream.
    pub fn execute_scaled_with_rng<R: Rng + ?Sized>(
        &self,
        betas: &[f64],
        gammas: &[f64],
        scale: f64,
        rng: &mut R,
    ) -> f64 {
        let (ideal, var) = self.evaluator.moments(betas, gammas);
        let mixed = self.evaluator.diagonal_mean();
        self.noise
            .scaled(scale)
            .noisy_expectation(ideal, var, mixed, self.counts, rng)
    }

    /// Deterministic noise-scaled execution: [`Self::execute_at`] at ZNE
    /// noise scale `scale`. A pure function of `(angles, scale, seed,
    /// stream)`; at `scale = 1.0` it is bit-identical to
    /// [`Self::execute_at`], so an unscaled landscape and a ZNE
    /// factor-1 landscape built from the same seed are the same values.
    pub fn execute_scaled_at(
        &self,
        betas: &[f64],
        gammas: &[f64],
        scale: f64,
        seed: u64,
        stream: u64,
    ) -> f64 {
        self.execute_scaled_with_rng(betas, gammas, scale, &mut CounterRng::new(seed, stream))
    }

    /// Executes and also samples the simulated job latency (queue +
    /// execution), in simulated seconds.
    pub fn execute_timed(&self, betas: &[f64], gammas: &[f64]) -> (f64, f64) {
        let value = self.execute(betas, gammas);
        let mut rng = self.lock_rng();
        let latency = self.latency.sample(&mut *rng);
        (value, latency)
    }

    /// Locks the device RNG, tolerating poisoning (a panicked worker must
    /// not wedge every later execution).
    fn lock_rng(&self) -> std::sync::MutexGuard<'_, StdRng> {
        self.rng.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes with zero-noise extrapolation: measures at each of the
    /// config's noise scales (via gate folding) and extrapolates to zero.
    ///
    /// Costs `zne.cost_multiplier()` circuit executions per call.
    pub fn execute_zne(
        &self,
        zne: &oscar_mitigation::zne::ZneConfig,
        betas: &[f64],
        gammas: &[f64],
    ) -> f64 {
        zne.extrapolate(&mut |c| self.execute_scaled(betas, gammas, c))
    }
}

/// A simulated device executing molecular VQE circuits — the workload
/// counterpart of [`QpuDevice`] for [`Molecule`] problems.
///
/// Where the QAOA device takes `(betas, gammas)`, a VQE execution takes
/// the flat ansatz parameter vector. Noise follows the same model: the
/// ideal statevector moments pass through
/// [`NoiseModel::noisy_expectation`] with gate counts transpiled from
/// the molecule's reference ansatz and the mixed-state mean fixed by the
/// Hamiltonian's identity component (Pauli terms are traceless).
///
/// Only the deterministic counter-RNG execution paths are offered: VQE
/// landscapes are always generated through the reproducible-by-index
/// discipline, so there is no internal sequential stream to misuse.
#[derive(Debug)]
pub struct VqeDevice {
    name: String,
    noise: NoiseModel,
    evaluator: VqeEvaluator,
    counts: GateCounts,
    mixed: f64,
}

impl VqeDevice {
    /// Builds a device for a molecule's reference UCCSD-style ansatz.
    pub fn new(name: &str, molecule: Molecule, noise: NoiseModel) -> Self {
        let evaluator = VqeEvaluator::new(molecule);
        let counts = evaluator.ansatz().circuit().gate_counts();
        let mixed = evaluator.hamiltonian().constant();
        VqeDevice {
            name: name.to_string(),
            noise,
            evaluator,
            counts,
            mixed,
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This device's noise configuration.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Physical gate counts of the transpiled ansatz circuit.
    pub fn gate_counts(&self) -> GateCounts {
        self.counts
    }

    /// The underlying ideal evaluator (e.g. for ground-truth landscapes).
    pub fn evaluator(&self) -> &VqeEvaluator {
        &self.evaluator
    }

    /// Noise-scaled execution with a caller-provided generator — the
    /// VQE analogue of [`QpuDevice::execute_scaled_with_rng`].
    pub fn execute_scaled_with_rng<R: Rng + ?Sized>(
        &self,
        params: &[f64],
        scale: f64,
        rng: &mut R,
    ) -> f64 {
        let (ideal, var) = self.evaluator.moments(params);
        self.noise
            .scaled(scale)
            .noisy_expectation(ideal, var, self.mixed, self.counts, rng)
    }

    /// Deterministic noisy execution keyed by `(seed, stream)`: the VQE
    /// analogue of [`QpuDevice::execute_at`] — a pure function of
    /// `(params, seed, stream)` regardless of execution order or thread
    /// count.
    pub fn execute_at(&self, params: &[f64], seed: u64, stream: u64) -> f64 {
        self.execute_scaled_at(params, 1.0, seed, stream)
    }

    /// Deterministic noise-scaled execution: [`Self::execute_at`] at ZNE
    /// noise scale `scale`; bit-identical to `execute_at` at
    /// `scale = 1.0`.
    pub fn execute_scaled_at(&self, params: &[f64], scale: f64, seed: u64, stream: u64) -> f64 {
        self.execute_scaled_with_rng(params, scale, &mut CounterRng::new(seed, stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_qsim::noise::ReadoutError;

    fn problem() -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(5);
        IsingProblem::random_3_regular(8, &mut rng)
    }

    #[test]
    fn ideal_device_matches_evaluator() {
        let p = problem();
        let qpu = QpuDevice::new(
            "ideal",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::instant(),
            0,
        );
        let direct = p.qaoa_evaluator().expectation(&[0.3], &[0.7]);
        assert!((qpu.execute(&[0.3], &[0.7]) - direct).abs() < 1e-12);
    }

    #[test]
    fn noisy_device_biases_toward_mixed() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.003, 0.007);
        let qpu = QpuDevice::new("noisy", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[-0.2], &[0.6]);
        let noisy = qpu.execute(&[-0.2], &[0.6]);
        let mixed = p.qaoa_evaluator().diagonal_mean();
        // noisy lies strictly between ideal and mixed.
        let lo = ideal.min(mixed);
        let hi = ideal.max(mixed);
        assert!(noisy > lo && noisy < hi, "{lo} < {noisy} < {hi} violated");
    }

    #[test]
    fn different_noise_devices_disagree() {
        let p = problem();
        let q1 = QpuDevice::new(
            "qpu1",
            &p,
            1,
            NoiseModel::depolarizing(0.001, 0.005),
            LatencyModel::instant(),
            0,
        );
        let q2 = QpuDevice::new(
            "qpu2",
            &p,
            1,
            NoiseModel::depolarizing(0.003, 0.007),
            LatencyModel::instant(),
            0,
        );
        let e1 = q1.execute(&[0.25], &[0.5]);
        let e2 = q2.execute(&[0.25], &[0.5]);
        assert!(
            (e1 - e2).abs() > 1e-4,
            "devices should differ: {e1} vs {e2}"
        );
    }

    #[test]
    fn shot_noise_varies_between_calls() {
        let p = problem();
        let noise = NoiseModel::ideal().with_shots(256);
        let qpu = QpuDevice::new("shots", &p, 1, noise, LatencyModel::instant(), 3);
        let a = qpu.execute(&[0.1], &[0.1]);
        let b = qpu.execute(&[0.1], &[0.1]);
        assert_ne!(a, b);
    }

    #[test]
    fn scaled_execution_damps_more() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006);
        let qpu = QpuDevice::new("zne", &p, 1, noise, LatencyModel::instant(), 0);
        let mixed = p.qaoa_evaluator().diagonal_mean();
        let e1 = qpu.execute_scaled(&[0.2], &[0.6], 1.0);
        let e3 = qpu.execute_scaled(&[0.2], &[0.6], 3.0);
        assert!(
            (e3 - mixed).abs() < (e1 - mixed).abs(),
            "scale-3 should be closer to mixed: {e1} vs {e3} (mixed {mixed})"
        );
    }

    #[test]
    fn readout_noise_applies() {
        let p = problem();
        let noise = NoiseModel::ideal().with_readout(ReadoutError::new(0.05, 0.05));
        let qpu = QpuDevice::new("ro", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[0.2], &[0.6]);
        let noisy = qpu.execute(&[0.2], &[0.6]);
        assert!((noisy - ideal).abs() > 1e-6);
    }

    #[test]
    fn zne_on_device_beats_unmitigated() {
        use oscar_mitigation::zne::ZneConfig;
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006);
        let qpu = QpuDevice::new("zne2", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[0.25], &[0.55]);
        let raw = qpu.execute(&[0.25], &[0.55]);
        let mitigated = qpu.execute_zne(&ZneConfig::richardson_123(), &[0.25], &[0.55]);
        assert!(
            (mitigated - ideal).abs() < (raw - ideal).abs(),
            "ZNE {mitigated} should beat raw {raw} (ideal {ideal})"
        );
    }

    #[test]
    fn execute_at_is_order_independent() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006).with_shots(512);
        let qpu = QpuDevice::new("det", &p, 1, noise, LatencyModel::instant(), 0);
        let reference = qpu.execute_at(&[0.2], &[0.6], 7, 3);
        // Burn the internal stream and hit other (seed, stream) pairs:
        // the deterministic path must not care.
        for k in 0..10 {
            let _ = qpu.execute(&[0.1], &[0.1]);
            let _ = qpu.execute_at(&[0.2], &[0.6], 7, 100 + k);
        }
        assert_eq!(
            qpu.execute_at(&[0.2], &[0.6], 7, 3).to_bits(),
            reference.to_bits()
        );
        // Distinct seeds and streams give distinct noise realizations.
        assert_ne!(qpu.execute_at(&[0.2], &[0.6], 8, 3), reference);
        assert_ne!(qpu.execute_at(&[0.2], &[0.6], 7, 4), reference);
    }

    #[test]
    fn scaled_at_matches_execute_at_at_unit_scale() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006).with_shots(512);
        let qpu = QpuDevice::new("det-zne", &p, 1, noise, LatencyModel::instant(), 0);
        assert_eq!(
            qpu.execute_scaled_at(&[0.2], &[0.6], 1.0, 7, 3).to_bits(),
            qpu.execute_at(&[0.2], &[0.6], 7, 3).to_bits()
        );
        // Other scales are deterministic too, and genuinely scaled.
        let a = qpu.execute_scaled_at(&[0.2], &[0.6], 3.0, 7, 3);
        assert_eq!(
            a.to_bits(),
            qpu.execute_scaled_at(&[0.2], &[0.6], 3.0, 7, 3).to_bits()
        );
        assert_ne!(a.to_bits(), qpu.execute_at(&[0.2], &[0.6], 7, 3).to_bits());
    }

    #[test]
    fn spec_with_shots_overrides_and_refingerprints() {
        let base = DeviceSpec::by_name("zne sim").unwrap();
        assert_eq!(base.noise.shots, Some(2048));
        let few = base.clone().with_shots(192);
        assert_eq!(few.noise.shots, Some(192));
        assert_eq!(few.name, base.name);
        assert_ne!(few.fingerprint(), base.fingerprint());
    }

    #[test]
    fn device_spec_registry_resolves_every_known_name() {
        for name in KNOWN_DEVICES {
            let spec = DeviceSpec::by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(spec.name, name);
            let qpu = spec.build(&problem(), 0);
            assert!(qpu.execute_at(&[0.2], &[0.5], 1, 0).is_finite());
        }
        assert!(DeviceSpec::by_name("ibm osaka").is_none());
    }

    #[test]
    fn device_spec_fingerprints_separate_devices() {
        let mut seen = std::collections::HashSet::new();
        for name in KNOWN_DEVICES {
            assert!(
                seen.insert(DeviceSpec::by_name(name).unwrap().fingerprint()),
                "fingerprint collision for {name}"
            );
        }
        // The fingerprint tracks the noise config, not just the name.
        let a = DeviceSpec::new("x", NoiseModel::depolarizing(0.001, 0.005));
        let b = DeviceSpec::new("x", NoiseModel::depolarizing(0.001, 0.005).with_shots(1024));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn vqe_device_ideal_matches_evaluator() {
        let dev = VqeDevice::new("ideal", Molecule::H2, NoiseModel::ideal());
        let params = [0.2, -0.4, 0.7];
        let direct = dev.evaluator().expectation(&params);
        assert!((dev.execute_at(&params, 0, 0) - direct).abs() < 1e-12);
    }

    #[test]
    fn vqe_device_execute_at_is_order_independent() {
        let noise = NoiseModel::depolarizing(0.002, 0.006).with_shots(512);
        let dev = VqeDevice::new("det", Molecule::H2, noise);
        let params = [0.1, 0.3, -0.2];
        let reference = dev.execute_at(&params, 7, 3);
        for k in 0..10 {
            let _ = dev.execute_at(&params, 7, 100 + k);
        }
        assert_eq!(dev.execute_at(&params, 7, 3).to_bits(), reference.to_bits());
        assert_ne!(dev.execute_at(&params, 8, 3), reference);
        assert_ne!(dev.execute_at(&params, 7, 4), reference);
        // Unit scale is bit-identical to the unscaled path.
        assert_eq!(
            dev.execute_scaled_at(&params, 1.0, 7, 3).to_bits(),
            reference.to_bits()
        );
    }

    #[test]
    fn vqe_device_noise_biases_toward_constant() {
        let dev = VqeDevice::new(
            "noisy",
            Molecule::LiH,
            NoiseModel::depolarizing(0.003, 0.007),
        );
        let params = [0.1; 8];
        let ideal = dev.evaluator().expectation(&params);
        let noisy = dev.execute_at(&params, 0, 0);
        let mixed = dev.evaluator().hamiltonian().constant();
        let lo = ideal.min(mixed);
        let hi = ideal.max(mixed);
        assert!(noisy > lo && noisy < hi, "{lo} < {noisy} < {hi} violated");
    }

    #[test]
    fn spec_with_depth_changes_fingerprint_and_damping() {
        let base = DeviceSpec::by_name("noisy sim-i").unwrap();
        let deep = base.clone().with_depth(2);
        assert_eq!(deep.p, 2);
        assert_ne!(deep.fingerprint(), base.fingerprint());
        // Same angles, more gates -> closer to the mixed value.
        let p = problem();
        let mixed = p.qaoa_evaluator().diagonal_mean();
        let q1 = base.build(&p, 0);
        let q2 = deep.build(&p, 0);
        let e1 = q1.execute_at(&[0.2, 0.0], &[0.5, 0.0], 1, 0);
        let e2 = q2.execute_at(&[0.2, 0.0], &[0.5, 0.0], 1, 0);
        assert!(
            (e2 - mixed).abs() < (e1 - mixed).abs(),
            "depth-2 should damp harder: {e1} vs {e2} (mixed {mixed})"
        );
    }

    #[test]
    fn timed_execution_reports_latency() {
        let p = problem();
        let qpu = QpuDevice::new(
            "timed",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::cloud_queue(),
            1,
        );
        let (_, t) = qpu.execute_timed(&[0.1], &[0.2]);
        assert!(t > 0.0);
    }
}
