//! Simulated QPU devices.
//!
//! A [`QpuDevice`] bundles a problem-specific QAOA evaluator with a device
//! noise configuration and a latency model. Devices stand in for the
//! paper's IBM Lagos / IBM Perth machines and for ideal/noisy simulators
//! (substitution documented in DESIGN.md): each produces expectation
//! values whose systematic bias is determined by its own noise config,
//! which is exactly the property the Noise Compensation Model experiments
//! (Figure 8, Table 5) exercise.

use crate::latency::LatencyModel;
use oscar_mitigation::model::NoiseModel;
use oscar_problems::ansatz::Ansatz;
use oscar_problems::ising::IsingProblem;
use oscar_qsim::circuit::GateCounts;
use oscar_qsim::qaoa::QaoaEvaluator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// A simulated quantum processing unit executing QAOA circuits.
///
/// Thread-safe: `execute` may be called concurrently from the parallel
/// executor (the internal RNG is mutex-protected).
///
/// # Examples
///
/// ```
/// use oscar_executor::device::QpuDevice;
/// use oscar_executor::latency::LatencyModel;
/// use oscar_mitigation::model::NoiseModel;
/// use oscar_problems::ising::IsingProblem;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let problem = IsingProblem::random_3_regular(8, &mut rng);
/// let qpu = QpuDevice::new("sim", &problem, 1, NoiseModel::ideal(), LatencyModel::instant(), 0);
/// let e = qpu.execute(&[0.2], &[0.5]);
/// assert!(e <= 0.0);
/// ```
#[derive(Debug)]
pub struct QpuDevice {
    name: String,
    noise: NoiseModel,
    latency: LatencyModel,
    evaluator: QaoaEvaluator,
    counts: GateCounts,
    rng: Mutex<StdRng>,
}

impl QpuDevice {
    /// Builds a device for a QAOA problem at depth `p`.
    ///
    /// The physical gate counts come from transpiling the depth-`p` QAOA
    /// ansatz ([`Ansatz::qaoa`]), so the noise damping matches what the
    /// full circuit would suffer on hardware.
    pub fn new(
        name: &str,
        problem: &IsingProblem,
        p: usize,
        noise: NoiseModel,
        latency: LatencyModel,
        seed: u64,
    ) -> Self {
        let counts = Ansatz::qaoa(problem, p).circuit().gate_counts();
        QpuDevice {
            name: name.to_string(),
            noise,
            latency,
            evaluator: problem.qaoa_evaluator(),
            counts,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This device's noise configuration.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// This device's latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Physical gate counts of the transpiled circuit.
    pub fn gate_counts(&self) -> GateCounts {
        self.counts
    }

    /// The underlying ideal evaluator (e.g. for ground-truth landscapes).
    pub fn evaluator(&self) -> &QaoaEvaluator {
        &self.evaluator
    }

    /// Executes the QAOA circuit at the given angles, returning the noisy
    /// expectation value under this device's noise configuration.
    pub fn execute(&self, betas: &[f64], gammas: &[f64]) -> f64 {
        self.execute_scaled(betas, gammas, 1.0)
    }

    /// Executes with the noise amplified by `scale` (ZNE noise scaling via
    /// gate folding: the folded circuit has `scale`x the gates).
    pub fn execute_scaled(&self, betas: &[f64], gammas: &[f64], scale: f64) -> f64 {
        let (ideal, var) = self.evaluator.moments(betas, gammas);
        let mixed = self.evaluator.diagonal_mean();
        let scaled = self.noise.scaled(scale);
        let mut rng = self.lock_rng();
        scaled.noisy_expectation(ideal, var, mixed, self.counts, &mut *rng)
    }

    /// Executes and also samples the simulated job latency (queue +
    /// execution), in simulated seconds.
    pub fn execute_timed(&self, betas: &[f64], gammas: &[f64]) -> (f64, f64) {
        let value = self.execute(betas, gammas);
        let mut rng = self.lock_rng();
        let latency = self.latency.sample(&mut *rng);
        (value, latency)
    }

    /// Locks the device RNG, tolerating poisoning (a panicked worker must
    /// not wedge every later execution).
    fn lock_rng(&self) -> std::sync::MutexGuard<'_, StdRng> {
        self.rng.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Executes with zero-noise extrapolation: measures at each of the
    /// config's noise scales (via gate folding) and extrapolates to zero.
    ///
    /// Costs `zne.cost_multiplier()` circuit executions per call.
    pub fn execute_zne(
        &self,
        zne: &oscar_mitigation::zne::ZneConfig,
        betas: &[f64],
        gammas: &[f64],
    ) -> f64 {
        zne.extrapolate(&mut |c| self.execute_scaled(betas, gammas, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_qsim::noise::ReadoutError;

    fn problem() -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(5);
        IsingProblem::random_3_regular(8, &mut rng)
    }

    #[test]
    fn ideal_device_matches_evaluator() {
        let p = problem();
        let qpu = QpuDevice::new(
            "ideal",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::instant(),
            0,
        );
        let direct = p.qaoa_evaluator().expectation(&[0.3], &[0.7]);
        assert!((qpu.execute(&[0.3], &[0.7]) - direct).abs() < 1e-12);
    }

    #[test]
    fn noisy_device_biases_toward_mixed() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.003, 0.007);
        let qpu = QpuDevice::new("noisy", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[-0.2], &[0.6]);
        let noisy = qpu.execute(&[-0.2], &[0.6]);
        let mixed = p.qaoa_evaluator().diagonal_mean();
        // noisy lies strictly between ideal and mixed.
        let lo = ideal.min(mixed);
        let hi = ideal.max(mixed);
        assert!(noisy > lo && noisy < hi, "{lo} < {noisy} < {hi} violated");
    }

    #[test]
    fn different_noise_devices_disagree() {
        let p = problem();
        let q1 = QpuDevice::new(
            "qpu1",
            &p,
            1,
            NoiseModel::depolarizing(0.001, 0.005),
            LatencyModel::instant(),
            0,
        );
        let q2 = QpuDevice::new(
            "qpu2",
            &p,
            1,
            NoiseModel::depolarizing(0.003, 0.007),
            LatencyModel::instant(),
            0,
        );
        let e1 = q1.execute(&[0.25], &[0.5]);
        let e2 = q2.execute(&[0.25], &[0.5]);
        assert!(
            (e1 - e2).abs() > 1e-4,
            "devices should differ: {e1} vs {e2}"
        );
    }

    #[test]
    fn shot_noise_varies_between_calls() {
        let p = problem();
        let noise = NoiseModel::ideal().with_shots(256);
        let qpu = QpuDevice::new("shots", &p, 1, noise, LatencyModel::instant(), 3);
        let a = qpu.execute(&[0.1], &[0.1]);
        let b = qpu.execute(&[0.1], &[0.1]);
        assert_ne!(a, b);
    }

    #[test]
    fn scaled_execution_damps_more() {
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006);
        let qpu = QpuDevice::new("zne", &p, 1, noise, LatencyModel::instant(), 0);
        let mixed = p.qaoa_evaluator().diagonal_mean();
        let e1 = qpu.execute_scaled(&[0.2], &[0.6], 1.0);
        let e3 = qpu.execute_scaled(&[0.2], &[0.6], 3.0);
        assert!(
            (e3 - mixed).abs() < (e1 - mixed).abs(),
            "scale-3 should be closer to mixed: {e1} vs {e3} (mixed {mixed})"
        );
    }

    #[test]
    fn readout_noise_applies() {
        let p = problem();
        let noise = NoiseModel::ideal().with_readout(ReadoutError::new(0.05, 0.05));
        let qpu = QpuDevice::new("ro", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[0.2], &[0.6]);
        let noisy = qpu.execute(&[0.2], &[0.6]);
        assert!((noisy - ideal).abs() > 1e-6);
    }

    #[test]
    fn zne_on_device_beats_unmitigated() {
        use oscar_mitigation::zne::ZneConfig;
        let p = problem();
        let noise = NoiseModel::depolarizing(0.002, 0.006);
        let qpu = QpuDevice::new("zne2", &p, 1, noise, LatencyModel::instant(), 0);
        let ideal = p.qaoa_evaluator().expectation(&[0.25], &[0.55]);
        let raw = qpu.execute(&[0.25], &[0.55]);
        let mitigated = qpu.execute_zne(&ZneConfig::richardson_123(), &[0.25], &[0.55]);
        assert!(
            (mitigated - ideal).abs() < (raw - ideal).abs(),
            "ZNE {mitigated} should beat raw {raw} (ideal {ideal})"
        );
    }

    #[test]
    fn timed_execution_reports_latency() {
        let p = problem();
        let qpu = QpuDevice::new(
            "timed",
            &p,
            1,
            NoiseModel::ideal(),
            LatencyModel::cloud_queue(),
            1,
        );
        let (_, t) = qpu.execute_timed(&[0.1], &[0.2]);
        assert!(t > 0.0);
    }
}
