//! # oscar-executor — multi-QPU execution substrate
//!
//! The execution layer for OSCAR's parallel reconstruction (paper §5):
//!
//! * [`device::QpuDevice`] — simulated QPUs with device-specific noise
//!   configurations (stand-ins for IBM Lagos/Perth and for ideal/noisy
//!   simulators);
//! * [`latency::LatencyModel`] — heavy-tailed queue/latency model in
//!   simulated time;
//! * [`parallel`] — thread-parallel job distribution with simulated
//!   makespan accounting and the eager-reconstruction timeout filter;
//! * [`ncm::NoiseCompensationModel`] — the linear-regression noise
//!   compensation that keeps multi-QPU reconstructions noise-preserving
//!   (Figure 8, Table 5);
//! * [`hardware_like`] — the Sycamore-dataset stand-in generator
//!   (Figures 5–6).
//!
//! # Example
//!
//! ```
//! use oscar_executor::prelude::*;
//! use oscar_mitigation::model::NoiseModel;
//! use oscar_problems::ising::IsingProblem;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let problem = IsingProblem::random_3_regular(6, &mut rng);
//! let qpu1 = QpuDevice::new("qpu-1", &problem, 1,
//!     NoiseModel::depolarizing(0.001, 0.005), LatencyModel::instant(), 0);
//! let qpu2 = QpuDevice::new("qpu-2", &problem, 1,
//!     NoiseModel::depolarizing(0.003, 0.007), LatencyModel::instant(), 1);
//! let jobs: Vec<Job> = (0..10).map(|i| Job {
//!     index: i, betas: vec![0.05 * i as f64], gammas: vec![0.1 * i as f64],
//! }).collect();
//! let outcomes = execute_split(&[&qpu1, &qpu2], &[0.5, 0.5], &jobs);
//! assert_eq!(outcomes.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod device;
pub mod hardware_like;
pub mod latency;
pub mod ncm;
pub mod parallel;

/// Glob-import of the most used types.
pub mod prelude {
    pub use crate::device::{DeviceSpec, QpuDevice, VqeDevice, KNOWN_DEVICES};
    pub use crate::hardware_like::{correlated_field, hardware_like_landscape, HardwareLikeConfig};
    pub use crate::latency::{LatencyModel, LatencyStats};
    pub use crate::ncm::NoiseCompensationModel;
    pub use crate::parallel::{
        execute_round_robin, execute_split, makespan, split_boundaries, within_timeout, Job,
        Outcome,
    };
}
