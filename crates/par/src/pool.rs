//! The persistent worker pool behind every `oscar-par` helper.
//!
//! PR 1's helpers spawned fresh scoped threads per call (~10–50 µs plus a
//! stack allocation per worker), which a tight loop of parallel applies —
//! a FISTA solve, a batch of landscape evaluations — pays on every call.
//! This module replaces the per-call spawns with a [`WorkerPool`]:
//!
//! * **Lazily initialized, persistent workers.** The global pool
//!   ([`global`]) spawns `max_threads() - 1` OS threads on the first
//!   parallel region and reuses them forever after; steady-state parallel
//!   applies spawn no threads at all ([`WorkerPool::stats`] exposes the
//!   spawn counter so tests can pin this).
//! * **Chunk-level work stealing.** A parallel call installs a *region*
//!   — a finite set of indexed tasks (the chunks) behind an atomic
//!   cursor — in the pool's shared queue. Idle workers steal tasks from
//!   any active region, so concurrent regions (e.g. several batch jobs
//!   reconstructing at once) share the same workers without
//!   oversubscription. The submitting thread participates too, so a
//!   region always makes progress even with zero free workers.
//! * **Bit-identical results.** Chunk geometry is computed exactly as in
//!   the serial path; stealing only changes *who* computes each disjoint
//!   chunk, never the arithmetic or the chunk boundaries.
//!
//! `OSCAR_THREADS` still bounds the global pool. Explicitly sized pools
//! ([`WorkerPool::with_threads`]) exist so tests can compare 1-, 2- and
//! 4-worker execution inside one process; they join their workers on
//! drop.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::{chunk_len_for, in_parallel_region, RegionGuard};

/// Locks `m`, recovering the guard from a poisoned mutex. Every mutex
/// in this module protects plain bookkeeping (handles, the region
/// slab, result slots) that stays structurally valid when a holder
/// panics — panics from *tasks* are routed through `Region::panic` and
/// re-raised on the submitter, so cascading them into later lockers
/// here would only turn one contained failure into many.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Process-wide pool metrics (`pool.*` in the obs registry), resolved
/// once so the hot path stays a relaxed atomic op per event.
struct PoolMetrics {
    /// `pool.threads_spawned` — OS threads ever spawned (all pools).
    spawned: oscar_obs::Counter,
    /// `pool.tasks_stolen` — tasks executed by a pool worker rather
    /// than the submitting thread.
    steals: oscar_obs::Counter,
    /// `pool.active_regions` — parallel regions currently installed.
    active_regions: oscar_obs::Gauge,
    /// `pool.busy_us` — per-participant busy time of one region drain
    /// (submitters and workers alike).
    busy_us: oscar_obs::Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = oscar_obs::Registry::global();
        PoolMetrics {
            spawned: registry.counter("pool.threads_spawned"),
            steals: registry.counter("pool.tasks_stolen"),
            active_regions: registry.gauge("pool.active_regions"),
            busy_us: registry.histogram("pool.busy_us"),
        }
    })
}

/// Snapshot of a pool's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured worker budget (including the participating caller).
    pub threads: usize,
    /// OS threads ever spawned by this pool. Constant after warm-up:
    /// steady-state parallel applies reuse the same workers.
    pub threads_spawned: usize,
    /// Parallel regions executed (serial fallbacks not counted).
    pub regions_run: usize,
    /// Tasks (chunks) executed across all regions.
    pub tasks_run: usize,
}

/// One parallel call: `ntasks` indexed tasks behind an atomic cursor.
///
/// Lives on the submitting thread's stack for the duration of the call;
/// the pool's queue holds a raw pointer to it. The submitter only
/// returns (and thus frees the region) after `completed == ntasks` and
/// `pinned == 0`, so workers never observe a dangling region.
struct Region {
    /// Type-erased task body; `run(i)` executes task `i`. The pointee
    /// outlives the region (it lives in the caller of [`WorkerPool::run`]).
    run: *const (dyn Fn(usize) + Sync),
    ntasks: usize,
    /// Next task index to hand out (may grow past `ntasks`).
    cursor: AtomicUsize,
    /// Tasks finished.
    completed: AtomicUsize,
    /// Workers currently holding a reference to this region.
    pinned: AtomicUsize,
    /// First panic payload from any task, re-thrown on the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion signaling (the submitter waits here).
    sync: Mutex<()>,
    cv: Condvar,
}

/// Raw region pointer made Send for the queue.
#[derive(Clone, Copy)]
struct RegionPtr(*const Region);
// SAFETY: see [`Region`] — the submitter keeps the pointee alive until
// the queue entry is removed and no worker is pinned, so the pointer
// may cross threads.
unsafe impl Send for RegionPtr {}

/// Upper bound on concurrently installed regions. One region per
/// *top-level* parallel call (nested calls degrade to serial), so this
/// is effectively a bound on concurrent submitter threads — 64 is far
/// beyond any realistic batch concurrency. Overflow falls back to
/// inline serial execution rather than blocking or allocating.
const MAX_REGIONS: usize = 64;

/// Fixed-capacity slab of active regions (ROADMAP item 6): install and
/// remove touch only the inline array, so steady-state parallel applies
/// are *structurally* allocation-free — there is no growable container
/// on the hot path whose capacity could need a resize.
struct RegionSlab {
    slots: [Option<RegionPtr>; MAX_REGIONS],
}

impl RegionSlab {
    const fn new() -> Self {
        RegionSlab {
            slots: [None; MAX_REGIONS],
        }
    }

    /// Installs `ptr` in the first free slot; `false` when full.
    fn install(&mut self, ptr: RegionPtr) -> bool {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.is_none()) {
            *slot = Some(ptr);
            true
        } else {
            false
        }
    }

    /// Clears the slot holding exactly `ptr` (no-op when absent).
    fn remove(&mut self, ptr: *const Region) {
        for slot in &mut self.slots {
            if slot.is_some_and(|p| std::ptr::addr_eq(p.0, ptr)) {
                *slot = None;
                return;
            }
        }
    }

    /// First installed region with tasks still to hand out.
    ///
    /// # Safety
    ///
    /// Caller must hold the slab's lock: entries are removed before
    /// their region is freed, and removal takes the same lock.
    unsafe fn find_ready(&self) -> Option<RegionPtr> {
        self.slots.iter().flatten().copied().find(|p| {
            // SAFETY: the caller holds the slab lock (this fn's
            // contract), so every installed pointer is live.
            let region = unsafe { &*p.0 };
            region.cursor.load(Ordering::Acquire) < region.ntasks
        })
    }
}

struct Inner {
    threads: usize,
    /// Active regions; workers scan for one with remaining tasks.
    queue: Mutex<RegionSlab>,
    /// Signaled when a region is installed or shutdown begins.
    cv: Condvar,
    shutdown: AtomicBool,
    started: AtomicBool,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads_spawned: AtomicUsize,
    regions_run: AtomicUsize,
    tasks_run: AtomicUsize,
}

/// A persistent pool of worker threads executing chunked parallel
/// regions (see the [module docs](self)).
pub struct WorkerPool {
    inner: Arc<Inner>,
}

impl WorkerPool {
    /// Creates a pool with a worker budget of `threads` (the submitting
    /// caller counts as one; `threads - 1` OS workers are spawned lazily
    /// on the first parallel region). `threads <= 1` means fully serial.
    pub fn with_threads(threads: usize) -> Self {
        WorkerPool {
            inner: Arc::new(Inner {
                threads: threads.max(1),
                queue: Mutex::new(RegionSlab::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                started: AtomicBool::new(false),
                handles: Mutex::new(Vec::new()),
                threads_spawned: AtomicUsize::new(0),
                regions_run: AtomicUsize::new(0),
                tasks_run: AtomicUsize::new(0),
            }),
        }
    }

    /// The worker budget (including the participating caller).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Lifetime counters (spawns, regions, tasks).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.inner.threads,
            threads_spawned: self.inner.threads_spawned.load(Ordering::Relaxed),
            regions_run: self.inner.regions_run.load(Ordering::Relaxed),
            tasks_run: self.inner.tasks_run.load(Ordering::Relaxed),
        }
    }

    /// Spawns the persistent workers once (no-op afterwards).
    fn ensure_workers(&self) {
        if self.inner.started.load(Ordering::Acquire) || self.inner.threads < 2 {
            return;
        }
        let mut handles = lock_recover(&self.inner.handles);
        if self.inner.started.load(Ordering::Acquire) {
            return;
        }
        for k in 0..self.inner.threads - 1 {
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("oscar-pool-{k}"))
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn pool worker");
            handles.push(handle);
            self.inner.threads_spawned.fetch_add(1, Ordering::Relaxed);
            pool_metrics().spawned.inc();
        }
        self.inner.started.store(true, Ordering::Release);
    }

    /// Executes `ntasks` indexed tasks across the pool, blocking until
    /// all have finished. Falls back to inline serial execution for a
    /// single task, a serial pool, or a nested call.
    ///
    /// The closure must tolerate being called from any worker thread
    /// with distinct indices in `0..ntasks` (each index exactly once).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any task on the calling thread.
    pub(crate) fn run(&self, ntasks: usize, run: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        if ntasks == 1 || self.inner.threads < 2 || in_parallel_region() {
            let _guard = RegionGuard::enter();
            for i in 0..ntasks {
                run(i);
            }
            return;
        }
        self.ensure_workers();
        // SAFETY: erase the borrow's lifetime so the raw pointer can sit
        // in the queue; `run` stays alive until this function returns,
        // and the wait loop below guarantees no worker touches the
        // region after that.
        let run_erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                run as *const (dyn Fn(usize) + Sync + '_),
            )
        };
        let region = Region {
            run: run_erased,
            ntasks,
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            pinned: AtomicUsize::new(0),
            panic: Mutex::new(None),
            sync: Mutex::new(()),
            cv: Condvar::new(),
        };
        // Install the region and wake sleeping workers. A full slab
        // (more than MAX_REGIONS concurrent submitters) degrades to
        // inline serial execution — never blocks, never allocates.
        {
            let mut queue = lock_recover(&self.inner.queue);
            if !queue.install(RegionPtr(&region as *const Region)) {
                drop(queue);
                let _guard = RegionGuard::enter();
                for i in 0..ntasks {
                    run(i);
                }
                return;
            }
        }
        pool_metrics().active_regions.inc();
        self.inner.cv.notify_all();
        // Participate: the submitter executes tasks like any worker, so
        // the region progresses even when every worker is busy elsewhere.
        execute_tasks(&region, &self.inner);
        // Wait until every task is done AND no worker still holds the
        // region pointer (it is about to go out of scope).
        {
            let mut guard = lock_recover(&region.sync);
            while region.completed.load(Ordering::Acquire) < ntasks
                || region.pinned.load(Ordering::Acquire) > 0
            {
                guard = wait_recover(&region.cv, guard);
            }
        }
        {
            let mut queue = lock_recover(&self.inner.queue);
            queue.remove(&region as *const Region);
        }
        pool_metrics().active_regions.dec();
        self.inner.regions_run.fetch_add(1, Ordering::Relaxed);
        let payload = lock_recover(&region.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Pool-scoped form of [`crate::for_each_chunk_mut`]: identical
    /// chunk geometry and results, executed on this pool's workers.
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0`.
    pub fn for_each_chunk_mut<T: Send>(
        &self,
        data: &mut [T],
        granule: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let workers = self.plan_workers(data.len(), granule);
        if workers < 2 || data.len() <= granule {
            let _guard = RegionGuard::enter();
            f(0, data);
            return;
        }
        let len = data.len();
        let chunk_len = chunk_len_for(len, granule, workers);
        let ntasks = len.div_ceil(chunk_len);
        let base = data.as_mut_ptr() as usize;
        self.run(ntasks, &|i| {
            let start = i * chunk_len;
            let end = ((i + 1) * chunk_len).min(len);
            // SAFETY: task indices are distinct, so `[start, end)` ranges
            // are disjoint; `run` blocks until all tasks finish, so the
            // borrow of `data` outlives every access. T: Send allows the
            // chunk to be processed on another thread.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            f(start, chunk);
        });
    }

    /// Pool-scoped form of [`crate::for_each_chunk_mut_with`]: one
    /// scratch object per task, chunk count capped at `scratch.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `granule == 0` or `scratch` is empty.
    pub fn for_each_chunk_mut_with<T: Send, S: Send>(
        &self,
        data: &mut [T],
        granule: usize,
        scratch: &mut [S],
        f: impl Fn(usize, &mut [T], &mut S) + Sync,
    ) {
        assert!(!scratch.is_empty(), "need at least one scratch object");
        let workers = self.plan_workers(data.len(), granule).min(scratch.len());
        if workers < 2 || data.len() <= granule {
            let _guard = RegionGuard::enter();
            f(0, data, &mut scratch[0]);
            return;
        }
        let len = data.len();
        let chunk_len = chunk_len_for(len, granule, workers);
        let ntasks = len.div_ceil(chunk_len);
        debug_assert!(ntasks <= scratch.len());
        let base = data.as_mut_ptr() as usize;
        let scratch_base = scratch.as_mut_ptr() as usize;
        self.run(ntasks, &|i| {
            let start = i * chunk_len;
            let end = ((i + 1) * chunk_len).min(len);
            // SAFETY: disjoint data ranges and distinct scratch slots per
            // task index; borrows outlive the blocking `run` call.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            let scr = unsafe { &mut *(scratch_base as *mut S).add(i) };
            f(start, chunk, scr);
        });
    }

    /// Pool-scoped form of [`crate::for_each_zip_chunks_mut`]: matching
    /// chunks of two equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ or `granule == 0`.
    pub fn for_each_zip_chunks_mut<T: Send>(
        &self,
        a: &mut [T],
        b: &mut [T],
        granule: usize,
        f: impl Fn(usize, &mut [T], &mut [T]) + Sync,
    ) {
        assert_eq!(a.len(), b.len(), "zip slices must match");
        let workers = self.plan_workers(a.len(), granule);
        if workers < 2 {
            let _guard = RegionGuard::enter();
            f(0, a, b);
            return;
        }
        let len = a.len();
        let chunk_len = chunk_len_for(len, granule, workers);
        let ntasks = len.div_ceil(chunk_len);
        let a_base = a.as_mut_ptr() as usize;
        let b_base = b.as_mut_ptr() as usize;
        self.run(ntasks, &|i| {
            let start = i * chunk_len;
            let end = ((i + 1) * chunk_len).min(len);
            // SAFETY: disjoint ranges per task in both slices; borrows
            // outlive the blocking `run` call.
            let ca = unsafe {
                std::slice::from_raw_parts_mut((a_base as *mut T).add(start), end - start)
            };
            let cb = unsafe {
                std::slice::from_raw_parts_mut((b_base as *mut T).add(start), end - start)
            };
            f(start, ca, cb);
        });
    }

    /// Pool-scoped form of [`crate::join`]: runs `a` and `b` concurrently
    /// (one on the caller, one stolen by a worker when available).
    pub fn join<RA: Send, RB: Send>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB) {
        if self.inner.threads < 2 || in_parallel_region() {
            return (a(), b());
        }
        let fa = Mutex::new(Some(a));
        let fb = Mutex::new(Some(b));
        let ra: Mutex<Option<RA>> = Mutex::new(None);
        let rb: Mutex<Option<RB>> = Mutex::new(None);
        self.run(2, &|i| {
            if i == 0 {
                let f = lock_recover(&fa).take().expect("task 0 runs once");
                *lock_recover(&ra) = Some(f());
            } else {
                let f = lock_recover(&fb).take().expect("task 1 runs once");
                *lock_recover(&rb) = Some(f());
            }
        });
        (
            ra.into_inner().unwrap().expect("join task 0 completed"),
            rb.into_inner().unwrap().expect("join task 1 completed"),
        )
    }

    /// Worker budget for `len` items of `granule`-sized units on this
    /// pool: 1 (serial) unless multiple units exist and we are not
    /// already inside a parallel region.
    fn plan_workers(&self, len: usize, granule: usize) -> usize {
        assert!(granule > 0, "granule must be positive");
        if in_parallel_region() {
            return 1;
        }
        let units = len.div_ceil(granule);
        self.inner.threads.min(units).max(1)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Lock/unlock pairs with workers' wait to avoid a missed wakeup.
        drop(lock_recover(&self.inner.queue));
        self.inner.cv.notify_all();
        let handles: Vec<_> = lock_recover(&self.inner.handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.inner.threads)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The process-wide pool used by the free helpers in the crate root.
/// Sized by [`crate::max_threads`] (`OSCAR_THREADS` or the machine's
/// available parallelism); workers spawn on the first parallel region
/// and persist for the life of the process.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::with_threads(crate::max_threads()))
}

/// Steals tasks from `region` until its cursor is exhausted. Runs on
/// both workers and the submitting thread; marks the thread as inside a
/// parallel region so nested helper calls degrade to serial. Returns
/// how many tasks this participant executed and records the drain's
/// busy time (when it did any work).
fn execute_tasks(region: &Region, inner: &Inner) -> usize {
    let _guard = RegionGuard::enter();
    let started = Instant::now();
    let mut executed = 0usize;
    loop {
        let i = region.cursor.fetch_add(1, Ordering::AcqRel);
        if i >= region.ntasks {
            if executed > 0 {
                pool_metrics().busy_us.record_duration(started.elapsed());
            }
            return executed;
        }
        // SAFETY: the submitter keeps the closure alive until every task
        // completed (it blocks in `run`).
        let task = unsafe { &*region.run };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut slot = lock_recover(&region.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        inner.tasks_run.fetch_add(1, Ordering::Relaxed);
        executed += 1;
        let done = region.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == region.ntasks {
            // Notify under the region lock, pairing with the submitter's
            // locked wait (here the region cannot be freed yet — a worker
            // is still pinned, or we *are* the submitter — but keeping
            // every notify lock-held makes the teardown order uniform).
            let guard = lock_recover(&region.sync);
            region.cv.notify_all();
            drop(guard);
        }
    }
}

/// Worker main loop: sleep until a region has work, steal its tasks,
/// repeat. Exits on pool shutdown.
fn worker_loop(inner: &Inner) {
    loop {
        let region_ptr = {
            let mut queue = lock_recover(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // SAFETY: we hold the slab lock — entries are removed
                // from the slab before their region is freed, and only
                // after `pinned == 0`, so every installed pointer is live.
                let found = unsafe { queue.find_ready() };
                if let Some(p) = found {
                    // Pin under the queue lock so the submitter cannot
                    // free the region while we hold the pointer.
                    let region = unsafe { &*p.0 };
                    region.pinned.fetch_add(1, Ordering::AcqRel);
                    break p;
                }
                queue = wait_recover(&inner.cv, queue);
            }
        };
        // SAFETY: pinned above; the submitter waits for `pinned == 0`.
        let region = unsafe { &*region_ptr.0 };
        let stolen = execute_tasks(region, inner);
        if stolen > 0 {
            pool_metrics().steals.add(stolen as u64);
        }
        // Unpin and notify while holding the region's lock: the
        // submitter re-checks its wait condition only under this lock,
        // so it cannot observe `pinned == 0`, return, and free the
        // stack-allocated region while we still touch it. The unlock is
        // our final access.
        let guard = lock_recover(&region.sync);
        region.pinned.fetch_sub(1, Ordering::AcqRel);
        region.cv.notify_all();
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = WorkerPool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn serial_pool_never_spawns() {
        let pool = WorkerPool::with_threads(1);
        let mut v = vec![1u64; 4096];
        pool.for_each_chunk_mut(&mut v, 16, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
        assert_eq!(pool.stats().threads_spawned, 0);
    }

    #[test]
    fn workers_spawn_once_and_are_reused() {
        let pool = WorkerPool::with_threads(3);
        let mut v = vec![0u64; 10_000];
        for round in 0..20 {
            pool.for_each_chunk_mut(&mut v, 8, |offset, chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x += (offset + k + round) as u64;
                }
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 2, "exactly threads-1 spawns");
        assert!(stats.regions_run >= 20);
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let pool = WorkerPool::with_threads(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool stays usable after a panicked region.
        let mut v = vec![0u8; 256];
        pool.for_each_chunk_mut(&mut v, 4, |_, chunk| chunk.fill(1));
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::with_threads(4));
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                let mut v = vec![0u64; 8192];
                pool.for_each_chunk_mut(&mut v, 32, |offset, chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = t * 1_000_000 + (offset + k) as u64;
                    }
                });
                v
            }));
        }
        for (t, join) in joins.into_iter().enumerate() {
            let v = join.join().expect("submitter thread");
            assert!(v
                .iter()
                .enumerate()
                .all(|(i, &x)| x == t as u64 * 1_000_000 + i as u64));
        }
    }

    #[test]
    fn region_slab_bounds_and_reuses_slots() {
        // install/remove never dereference the pointers, so markers of
        // the wrong pointee type are fine here.
        let markers = [0u8; MAX_REGIONS + 1];
        let ptrs: Vec<*const Region> = markers
            .iter()
            .map(|m| m as *const u8 as *const Region)
            .collect();
        let mut slab = RegionSlab::new();
        for &p in &ptrs[..MAX_REGIONS] {
            assert!(slab.install(RegionPtr(p)));
        }
        assert!(!slab.install(RegionPtr(ptrs[MAX_REGIONS])), "slab full");
        slab.remove(ptrs[3]);
        assert!(
            slab.install(RegionPtr(ptrs[MAX_REGIONS])),
            "freed slot is reused"
        );
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let pool = WorkerPool::with_threads(4);
        let mut outer = vec![0u32; 1024];
        pool.for_each_chunk_mut(&mut outer, 8, |_, chunk| {
            assert!(in_parallel_region());
            let inner_pool = global();
            inner_pool.for_each_chunk_mut(chunk, 2, |_, c| {
                for x in c {
                    *x += 1;
                }
            });
        });
        assert!(outer.iter().all(|&x| x == 1));
    }
}
