//! # oscar-par — data-parallel helpers on a persistent worker pool
//!
//! A small, dependency-free stand-in for the slice-parallel subset of
//! `rayon` that the OSCAR hot paths need (this build environment has no
//! crates.io access, so rayon itself cannot be used):
//!
//! * [`for_each_chunk_mut`] — split a slice into per-thread contiguous
//!   chunks (aligned to a granule) and process them concurrently;
//! * [`for_each_chunk_mut_with`] — the same, with one reusable scratch
//!   object per worker so steady-state callers stay allocation-free;
//! * [`for_each_zip_chunks_mut`] — process two equal-length slices in
//!   lock-step chunks (butterfly halves of a gate kernel);
//! * [`join`] — run two closures concurrently.
//!
//! Since PR 2 all helpers execute on a **lazily initialized persistent
//! worker pool** ([`pool::WorkerPool`]) instead of spawning fresh scoped
//! threads per call: the global pool spawns `max_threads() - 1` workers
//! on the first parallel region and reuses them for the life of the
//! process, so a tight loop of parallel applies (a FISTA solve, a batch
//! of landscape evaluations) pays zero spawn cost in steady state. Idle
//! workers steal chunks from any active region, so concurrent callers
//! (e.g. several `oscar-runtime` batch jobs) share one set of threads
//! without oversubscription.
//!
//! All helpers degrade to serial execution when the machine has one
//! core, when the work is below the caller's threshold, or when called
//! from inside another `oscar-par` region (no nested oversubscription).
//! Results are bit-identical to the serial path: parallelism only
//! changes *who* computes each disjoint chunk, never the arithmetic or
//! the chunk boundaries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::sync::OnceLock;

pub mod pool;

pub use pool::{PoolStats, WorkerPool};

thread_local! {
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for "this thread is inside a parallel region". Restores
/// the previous value on drop, so nested serial fallbacks do not clear
/// an enclosing region's flag.
pub(crate) struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    pub(crate) fn enter() -> Self {
        RegionGuard {
            prev: IN_PARALLEL.with(|f| f.replace(true)),
        }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|f| f.set(prev));
    }
}

/// The worker budget: `OSCAR_THREADS` if set, else the machine's
/// available parallelism. Read once per process; it sizes the global
/// worker pool ([`pool::global`]).
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(v) = std::env::var("OSCAR_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `true` when the current thread is already inside an `oscar-par`
/// parallel region (helpers then run serially to avoid nesting).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(|f| f.get())
}

/// Runs `a` and `b` concurrently on the global pool and returns both
/// results.
///
/// Falls back to sequential execution on single-core machines or inside
/// an existing parallel region.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    pool::global().join(a, b)
}

/// Splits `data` into at most `max_threads()` contiguous chunks whose
/// lengths are multiples of `granule` (except possibly the last) and
/// calls `f(offset, chunk)` for each, concurrently on the global pool.
///
/// `granule` is the indivisible unit of work — a matrix row, a
/// `2 * stride` butterfly block — so a caller's index arithmetic stays
/// valid inside each chunk. `offset` is the chunk's starting index in
/// `data`.
///
/// # Panics
///
/// Panics if `granule == 0`.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    granule: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    pool::global().for_each_chunk_mut(data, granule, f);
}

/// Like [`for_each_chunk_mut`], but hands each worker a dedicated
/// scratch object from `scratch` (one per worker; the chunk count is
/// capped at `scratch.len()`), enabling allocation-free parallel
/// kernels.
///
/// # Panics
///
/// Panics if `granule == 0` or `scratch` is empty.
pub fn for_each_chunk_mut_with<T: Send, S: Send>(
    data: &mut [T],
    granule: usize,
    scratch: &mut [S],
    f: impl Fn(usize, &mut [T], &mut S) + Sync,
) {
    pool::global().for_each_chunk_mut_with(data, granule, scratch, f);
}

/// Processes two equal-length slices in matching contiguous chunks:
/// `f(offset, a_chunk, b_chunk)`, concurrently on the global pool. Used
/// for butterfly kernels where element `i` of `a` pairs with element
/// `i` of `b`.
///
/// # Panics
///
/// Panics if the slices' lengths differ or `granule == 0`.
pub fn for_each_zip_chunks_mut<T: Send>(
    a: &mut [T],
    b: &mut [T],
    granule: usize,
    f: impl Fn(usize, &mut [T], &mut [T]) + Sync,
) {
    pool::global().for_each_zip_chunks_mut(a, b, granule, f);
}

/// Chunk length: the granule multiple closest to an even split.
pub(crate) fn chunk_len_for(len: usize, granule: usize, workers: usize) -> usize {
    let units = len.div_ceil(granule);
    let units_per_chunk = units.div_ceil(workers);
    (units_per_chunk * granule).max(granule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_map_covers_every_element() {
        let mut v: Vec<u64> = (0..10_000).collect();
        for_each_chunk_mut(&mut v, 7, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                assert_eq!(*x, (offset + i) as u64, "chunk offset wrong");
                *x *= 2;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn granule_alignment_respected() {
        let mut v = vec![0u8; 1000];
        for_each_chunk_mut(&mut v, 32, |offset, chunk| {
            assert_eq!(offset % 32, 0, "chunk must start on a granule");
            if offset + chunk.len() != 1000 {
                assert_eq!(
                    chunk.len() % 32,
                    0,
                    "non-final chunk must be granule-aligned"
                );
            }
        });
    }

    #[test]
    fn scratch_variant_gives_each_worker_private_state() {
        let mut v = vec![1u64; 4096];
        let mut scratch: Vec<u64> = vec![0; max_threads().max(1)];
        for_each_chunk_mut_with(&mut v, 1, &mut scratch, |_, chunk, acc| {
            *acc += chunk.iter().sum::<u64>();
        });
        assert_eq!(scratch.iter().sum::<u64>(), 4096);
    }

    #[test]
    fn zip_chunks_pair_matching_indices() {
        let mut a: Vec<usize> = (0..512).collect();
        let mut b: Vec<usize> = (512..1024).collect();
        for_each_zip_chunks_mut(&mut a, &mut b, 8, |offset, ca, cb| {
            for i in 0..ca.len() {
                assert_eq!(ca[i], offset + i);
                assert_eq!(cb[i], 512 + offset + i);
                ca[i] += cb[i];
            }
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == 512 + 2 * i));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_regions_run_serially_without_deadlock() {
        let mut outer = vec![0u32; 256];
        for_each_chunk_mut(&mut outer, 16, |_, chunk| {
            // A nested call must not spawn; it should just run inline.
            for_each_chunk_mut(chunk, 4, |_, inner| {
                for x in inner {
                    *x += 1;
                }
            });
            assert!(in_parallel_region());
        });
        assert!(outer.iter().all(|&x| x == 1));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk_mut(&mut empty, 4, |_, chunk| {
            assert!(chunk.is_empty());
        });
        let mut one = vec![7u8];
        for_each_chunk_mut(&mut one, 4, |off, chunk| {
            assert_eq!((off, chunk.len()), (0, 1));
        });
    }
}
