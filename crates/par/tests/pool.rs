//! Pool correctness pins: results bit-identical to serial for worker
//! budgets of 1, 2 and 4, and zero thread spawns in steady state.

use oscar_par::WorkerPool;

/// A deterministic but non-trivial per-element float computation keyed
/// by the global index, so any chunk/offset mix-up changes bits.
fn reference(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64 * 0.137 + 0.25;
            (x.sin() * 1e3).mul_add(0.5, x.sqrt()) / (1.0 + x.cos().abs())
        })
        .collect()
}

fn compute_with_pool(pool: &WorkerPool, n: usize, granule: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    pool.for_each_chunk_mut(&mut out, granule, |offset, chunk| {
        for (k, v) in chunk.iter_mut().enumerate() {
            let i = offset + k;
            let x = i as f64 * 0.137 + 0.25;
            *v = (x.sin() * 1e3).mul_add(0.5, x.sqrt()) / (1.0 + x.cos().abs());
        }
    });
    out
}

#[test]
fn chunked_results_bit_identical_across_thread_counts() {
    // The serial reference is computed inline with no pool at all; the
    // 1-, 2- and 4-worker pools must reproduce it bit for bit, for both
    // granule-aligned and ragged sizes.
    for &(n, granule) in &[(10_000usize, 7usize), (4096, 32), (513, 64), (1, 4)] {
        let want = reference(n);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::with_threads(threads);
            let got = compute_with_pool(&pool, n, granule);
            assert!(
                want.iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads} n={n} granule={granule}: drift from serial"
            );
        }
    }
}

#[test]
fn zip_results_bit_identical_across_thread_counts() {
    let n = 8192;
    let serial: (Vec<f64>, Vec<f64>) = {
        let mut a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        for i in 0..n {
            let (x, y) = (a[i], b[i]);
            a[i] = x * y + x;
            b[i] = x - y * y;
        }
        (a, b)
    };
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::with_threads(threads);
        let mut a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
        pool.for_each_zip_chunks_mut(&mut a, &mut b, 16, |_, ca, cb| {
            for i in 0..ca.len() {
                let (x, y) = (ca[i], cb[i]);
                ca[i] = x * y + x;
                cb[i] = x - y * y;
            }
        });
        assert!(
            serial
                .0
                .iter()
                .zip(&a)
                .chain(serial.1.iter().zip(&b))
                .all(|(u, v)| u.to_bits() == v.to_bits()),
            "threads={threads}: zip drift from serial"
        );
    }
}

#[test]
fn scratch_variant_totals_match_across_thread_counts() {
    let n = 65_536u64;
    let want: u64 = (0..n).map(|i| i * i % 977).sum();
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::with_threads(threads);
        let mut data: Vec<u64> = (0..n).collect();
        let mut partials = vec![0u64; threads];
        pool.for_each_chunk_mut_with(&mut data, 64, &mut partials, |_, chunk, acc| {
            *acc += chunk.iter().map(|&i| i * i % 977).sum::<u64>();
        });
        assert_eq!(
            partials.iter().sum::<u64>(),
            want,
            "threads={threads}: partial sums lost work"
        );
    }
}

#[test]
fn steady_state_applies_spawn_no_new_threads() {
    let pool = WorkerPool::with_threads(4);
    let mut v = vec![0.0f64; 50_000];
    // Warm-up: the first region spawns the persistent workers.
    pool.for_each_chunk_mut(&mut v, 50, |off, chunk| {
        for (k, x) in chunk.iter_mut().enumerate() {
            *x = (off + k) as f64;
        }
    });
    let after_warmup = pool.stats().threads_spawned;
    assert_eq!(after_warmup, 3, "4-thread pool spawns exactly 3 workers");

    // 200 steady-state parallel applies: the spawn counter must not move.
    for round in 0..200 {
        pool.for_each_chunk_mut(&mut v, 50, |_, chunk| {
            for x in chunk.iter_mut() {
                *x += round as f64;
            }
        });
    }
    let stats = pool.stats();
    assert_eq!(
        stats.threads_spawned, after_warmup,
        "steady-state parallel applies must not spawn threads"
    );
    assert!(stats.regions_run >= 200, "regions should run on the pool");
}

#[test]
fn join_bit_identical_and_pool_backed() {
    let pool = WorkerPool::with_threads(2);
    let (a, b) = pool.join(
        || (0..1000).map(|i| (i as f64).sqrt()).sum::<f64>(),
        || (0..1000).map(|i| (i as f64).cbrt()).sum::<f64>(),
    );
    let sa: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
    let sb: f64 = (0..1000).map(|i| (i as f64).cbrt()).sum();
    assert_eq!(a.to_bits(), sa.to_bits());
    assert_eq!(b.to_bits(), sb.to_bits());
}
