//! Nelder–Mead downhill simplex — a classic gradient-free optimizer used
//! as a cross-check against COBYLA in the optimizer-selection use case.

use crate::objective::{CountingObjective, OptimResult, Optimizer};

/// Nelder–Mead configuration (standard reflection/expansion/contraction
/// coefficients).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NelderMead {
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Maximum objective queries.
    pub max_queries: usize,
    /// Stop when the simplex's value spread falls below this.
    pub f_tol: f64,
    /// Stop when the simplex's coordinate spread falls below this.
    pub x_tol: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            initial_step: 0.25,
            max_queries: 2000,
            f_tol: 1e-8,
            x_tol: 1e-8,
        }
    }
}

impl Optimizer for NelderMead {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let mut obj = CountingObjective::new(f);
        let dim = x0.len();

        // Initial simplex: x0 plus one step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
        let f0 = obj.eval(x0);
        simplex.push((x0.to_vec(), f0));
        for i in 0..dim {
            let mut v = x0.to_vec();
            v[i] += self.initial_step;
            let fv = obj.eval(&v);
            simplex.push((v, fv));
        }
        let mut trace = vec![(x0.to_vec(), f0)];
        let mut iterations = 0;
        let mut converged = false;

        while obj.count() + dim + 2 < self.max_queries {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = simplex[0].clone();
            let worst = simplex[dim].clone();
            let second_worst_f = simplex[dim - 1].1;

            // Convergence checks.
            let spread = (worst.1 - best.1).abs();
            let max_coord_spread = (0..dim)
                .map(|i| {
                    let lo = simplex
                        .iter()
                        .map(|(v, _)| v[i])
                        .fold(f64::INFINITY, f64::min);
                    let hi = simplex
                        .iter()
                        .map(|(v, _)| v[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    hi - lo
                })
                .fold(0.0f64, f64::max);
            // Both criteria must hold (as in SciPy): a value tie alone can
            // be a simplex symmetric around the optimum.
            if spread < self.f_tol && max_coord_spread < self.x_tol {
                converged = true;
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; dim];
            for (v, _) in simplex.iter().take(dim) {
                for i in 0..dim {
                    centroid[i] += v[i] / dim as f64;
                }
            }

            let lerp = |t: f64| -> Vec<f64> {
                (0..dim)
                    .map(|i| centroid[i] + t * (centroid[i] - worst.0[i]))
                    .collect()
            };

            // Reflection.
            let xr = lerp(1.0);
            let fr = obj.eval(&xr);
            if fr < best.1 {
                // Expansion.
                let xe = lerp(2.0);
                let fe = obj.eval(&xe);
                simplex[dim] = if fe < fr { (xe, fe) } else { (xr, fr) };
            } else if fr < second_worst_f {
                simplex[dim] = (xr, fr);
            } else {
                // Contraction (outside if reflected better than worst).
                let xc = if fr < worst.1 { lerp(0.5) } else { lerp(-0.5) };
                let fc = obj.eval(&xc);
                if fc < worst.1.min(fr) {
                    simplex[dim] = (xc, fc);
                } else {
                    // Shrink toward the best vertex.
                    for k in 1..=dim {
                        let v: Vec<f64> = (0..dim)
                            .map(|i| best.0[i] + 0.5 * (simplex[k].0[i] - best.0[i]))
                            .collect();
                        let fv = obj.eval(&v);
                        simplex[k] = (v, fv);
                    }
                }
            }
            let cur_best = simplex.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
            trace.push(cur_best.clone());
        }

        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (x, fx) = simplex[0].clone();
        trace.push((x.clone(), fx));
        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations,
            trace,
            converged,
        }
    }

    fn name(&self) -> &str {
        "NelderMead"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let nm = NelderMead::default();
        let mut f = |x: &[f64]| (x[0] - 0.5).powi(2) + (x[1] + 0.25).powi(2);
        let res = nm.minimize(&mut f, &[2.0, 2.0]);
        assert!((res.x[0] - 0.5).abs() < 1e-3, "{:?}", res.x);
        assert!((res.x[1] + 0.25).abs() < 1e-3, "{:?}", res.x);
        assert!(res.converged);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let nm = NelderMead {
            max_queries: 20_000,
            ..NelderMead::default()
        };
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let res = nm.minimize(&mut f, &[-1.2, 1.0]);
        assert!(res.fx < 1e-4, "fx {}", res.fx);
    }

    #[test]
    fn respects_query_budget() {
        let nm = NelderMead {
            max_queries: 100,
            f_tol: 0.0,
            x_tol: 0.0,
            ..NelderMead::default()
        };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum();
        let res = nm.minimize(&mut f, &[1.0; 4]);
        assert!(res.queries <= 100);
    }

    #[test]
    fn one_dimensional_works() {
        let nm = NelderMead::default();
        let mut f = |x: &[f64]| (x[0] - 3.0).powi(2);
        let res = nm.minimize(&mut f, &[0.0]);
        assert!((res.x[0] - 3.0).abs() < 1e-3);
    }
}
