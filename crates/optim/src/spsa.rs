//! Simultaneous Perturbation Stochastic Approximation — a shot-frugal
//! stochastic optimizer popular on noisy quantum hardware (two objective
//! queries per iteration regardless of dimension).

use crate::objective::{CountingObjective, OptimResult, Optimizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SPSA configuration with the standard gain schedules
/// `a_k = a / (k + 1 + A)^alpha`, `c_k = c / (k + 1)^gamma`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Spsa {
    /// Step-size numerator.
    pub a: f64,
    /// Perturbation-size numerator.
    pub c: f64,
    /// Step-size stability offset.
    pub big_a: f64,
    /// Step-size decay exponent.
    pub alpha: f64,
    /// Perturbation decay exponent.
    pub gamma: f64,
    /// Number of iterations.
    pub max_iter: usize,
    /// RNG seed for the random perturbation directions.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            a: 0.2,
            c: 0.1,
            big_a: 10.0,
            alpha: 0.602,
            gamma: 0.101,
            max_iter: 300,
            seed: 0,
        }
    }
}

impl Optimizer for Spsa {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let mut obj = CountingObjective::new(f);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dim = x0.len();
        let mut x = x0.to_vec();
        let mut fx = obj.eval(&x);
        let mut trace = vec![(x.clone(), fx)];

        for k in 0..self.max_iter {
            let ak = self.a / (k as f64 + 1.0 + self.big_a).powf(self.alpha);
            let ck = self.c / (k as f64 + 1.0).powf(self.gamma);
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..dim)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let xp: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v + ck * d).collect();
            let xm: Vec<f64> = x.iter().zip(&delta).map(|(v, d)| v - ck * d).collect();
            let fp = obj.eval(&xp);
            let fm = obj.eval(&xm);
            let ghat = (fp - fm) / (2.0 * ck);
            for i in 0..dim {
                x[i] -= ak * ghat / delta[i];
            }
            fx = obj.eval(&x);
            trace.push((x.clone(), fx));
        }

        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations: self.max_iter,
            trace,
            converged: true,
        }
    }

    fn name(&self) -> &str {
        "SPSA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let spsa = Spsa {
            max_iter: 2000,
            ..Spsa::default()
        };
        let mut f = |x: &[f64]| x[0] * x[0] + (x[1] - 1.0).powi(2);
        let res = spsa.minimize(&mut f, &[1.5, -0.5]);
        assert!(res.fx < 0.05, "fx {}", res.fx);
    }

    #[test]
    fn robust_to_observation_noise() {
        // SPSA tolerates noisy objectives; seed the noise deterministically.
        let mut state = 0u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.01
        };
        let spsa = Spsa {
            max_iter: 3000,
            ..Spsa::default()
        };
        let mut f = move |x: &[f64]| x[0] * x[0] + noise();
        let res = spsa.minimize(&mut f, &[1.0]);
        assert!(res.x[0].abs() < 0.2, "x {:?}", res.x);
    }

    #[test]
    fn three_queries_per_iteration() {
        let spsa = Spsa {
            max_iter: 50,
            ..Spsa::default()
        };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum();
        let res = spsa.minimize(&mut f, &[0.3; 6]);
        assert_eq!(res.queries, 1 + 50 * 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let spsa = Spsa {
            max_iter: 20,
            seed: 7,
            ..Spsa::default()
        };
        let mut f1 = |x: &[f64]| x[0].cos();
        let mut f2 = |x: &[f64]| x[0].cos();
        let r1 = spsa.minimize(&mut f1, &[0.2]);
        let r2 = spsa.minimize(&mut f2, &[0.2]);
        assert_eq!(r1.x, r2.x);
    }
}
