//! ADAM with finite-difference gradients — the gradient-based optimizer of
//! the paper's use cases (Figures 11–13, Table 6), configured like Qiskit's
//! defaults.

use crate::gradient::central_difference;
use crate::objective::{CountingObjective, OptimResult, Optimizer};

/// ADAM configuration (defaults follow Qiskit's `ADAM` optimizer).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor in the update denominator.
    pub eps: f64,
    /// Finite-difference step for the gradient estimate.
    pub fd_eps: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Stop when the gradient norm falls below this.
    pub grad_tol: f64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            lr: 0.1,
            beta1: 0.9,
            beta2: 0.99,
            eps: 1e-8,
            fd_eps: 1e-6,
            max_iter: 300,
            grad_tol: 1e-6,
        }
    }
}

impl Optimizer for Adam {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        let mut obj = CountingObjective::new(f);
        let dim = x0.len();
        let mut x = x0.to_vec();
        let mut m = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let mut fx = obj.eval(&x);
        let mut trace = vec![(x.clone(), fx)];
        let mut converged = false;
        let mut iterations = 0;

        for t in 1..=self.max_iter {
            iterations = t;
            let grad = central_difference(&mut |p| obj.eval(p), &x, self.fd_eps);
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < self.grad_tol {
                converged = true;
                break;
            }
            let b1t = 1.0 - self.beta1.powi(t as i32);
            let b2t = 1.0 - self.beta2.powi(t as i32);
            for i in 0..dim {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = m[i] / b1t;
                let v_hat = v[i] / b2t;
                x[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            fx = obj.eval(&x);
            trace.push((x.clone(), fx));
        }

        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations,
            trace,
            converged,
        }
    }

    fn name(&self) -> &str {
        "ADAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        let adam = Adam {
            max_iter: 500,
            ..Adam::default()
        };
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
        let res = adam.minimize(&mut f, &[0.0, 0.0]);
        assert!((res.x[0] - 1.0).abs() < 0.01, "{:?}", res.x);
        assert!((res.x[1] + 2.0).abs() < 0.01, "{:?}", res.x);
    }

    #[test]
    fn minimizes_sinusoidal_landscape() {
        // Structure similar to a QAOA slice: sum of sinusoids.
        let adam = Adam {
            lr: 0.05,
            max_iter: 800,
            ..Adam::default()
        };
        let mut f = |x: &[f64]| -((2.0 * x[0]).sin() * x[1].cos());
        let res = adam.minimize(&mut f, &[0.5, 0.3]);
        assert!(res.fx < -0.95, "fx {}", res.fx);
    }

    #[test]
    fn query_count_matches_trace() {
        let adam = Adam {
            max_iter: 10,
            grad_tol: 0.0,
            ..Adam::default()
        };
        let mut f = |x: &[f64]| x[0] * x[0];
        let res = adam.minimize(&mut f, &[3.0]);
        // 1 initial eval + per iter (2*dim grad + 1 value).
        assert_eq!(res.queries, 1 + 10 * 3);
        assert_eq!(res.trace.len(), 11);
    }

    #[test]
    fn converges_flag_on_flat_function() {
        let adam = Adam::default();
        let mut f = |_: &[f64]| 7.0;
        let res = adam.minimize(&mut f, &[0.4]);
        assert!(res.converged);
        assert_eq!(res.fx, 7.0);
    }

    #[test]
    fn trace_starts_at_initial_point() {
        let adam = Adam {
            max_iter: 5,
            ..Adam::default()
        };
        let mut f = |x: &[f64]| x[0] * x[0];
        let res = adam.minimize(&mut f, &[2.5]);
        assert_eq!(res.trace[0].0, vec![2.5]);
    }
}
