//! COBYLA-style linear-approximation trust-region optimizer.
//!
//! Powell's COBYLA maintains a simplex of `n+1` points, fits a linear model
//! of the objective by interpolation, and steps against the model gradient
//! within a trust radius `ρ` that shrinks as progress stalls. We implement
//! the unconstrained core of that scheme (the paper uses COBYLA purely as a
//! gradient-free objective minimizer with box-free parameters), preserving
//! the properties that matter for the paper's use cases: very low query
//! counts (Table 6) and robustness to landscape jaggedness (Figure 13).

use crate::objective::{CountingObjective, OptimResult, Optimizer};

/// COBYLA configuration (defaults mirror the common SciPy/Qiskit settings).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cobyla {
    /// Initial trust-region radius.
    pub rho_begin: f64,
    /// Final trust-region radius (convergence threshold).
    pub rho_end: f64,
    /// Maximum objective queries.
    pub max_queries: usize,
}

impl Default for Cobyla {
    fn default() -> Self {
        Cobyla {
            rho_begin: 0.5,
            rho_end: 1e-4,
            max_queries: 1000,
        }
    }
}

impl Optimizer for Cobyla {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        assert!(
            self.rho_begin > self.rho_end && self.rho_end > 0.0,
            "need rho_begin > rho_end > 0"
        );
        let mut obj = CountingObjective::new(f);
        let dim = x0.len();
        let mut rho = self.rho_begin;

        // Interpolation simplex: x0 plus rho along each axis.
        let f0 = obj.eval(x0);
        let mut simplex: Vec<(Vec<f64>, f64)> = vec![(x0.to_vec(), f0)];
        for i in 0..dim {
            let mut v = x0.to_vec();
            v[i] += rho;
            let fv = obj.eval(&v);
            simplex.push((v, fv));
        }
        let mut trace = vec![(x0.to_vec(), f0)];
        let mut iterations = 0;
        let mut converged = false;

        while obj.count() < self.max_queries {
            iterations += 1;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = simplex[0].clone();

            // Fit the linear model g with (x_k - x_best) . g = f_k - f_best.
            let rows: Vec<Vec<f64>> = simplex[1..]
                .iter()
                .map(|(v, _)| v.iter().zip(&best.0).map(|(a, b)| a - b).collect())
                .collect();
            let rhs: Vec<f64> = simplex[1..].iter().map(|(_, fv)| fv - best.1).collect();
            let grad = match solve_linear(&rows, &rhs) {
                Some(g) => g,
                None => {
                    // Degenerate simplex: rebuild around the best point.
                    rebuild_simplex(&mut simplex, &best, rho, &mut obj);
                    continue;
                }
            };
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < 1e-14 {
                // Flat model: shrink or finish.
                if !shrink(&mut rho, self.rho_end) {
                    converged = true;
                    break;
                }
                rebuild_simplex(&mut simplex, &best, rho, &mut obj);
                continue;
            }

            // Trust-region step against the model gradient.
            let xt: Vec<f64> = best
                .0
                .iter()
                .zip(&grad)
                .map(|(x, g)| x - rho * g / gnorm)
                .collect();
            if obj.count() >= self.max_queries {
                break;
            }
            let ft = obj.eval(&xt);
            let predicted = rho * gnorm; // model decrease
            let actual = best.1 - ft;

            if actual > 0.1 * predicted {
                // Good step: replace the worst vertex.
                let worst_idx = simplex
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
                    .map(|(i, _)| i)
                    .unwrap();
                simplex[worst_idx] = (xt.clone(), ft);
                trace.push((xt, ft));
            } else {
                // Poor step: shrink the trust region and rebuild geometry.
                if !shrink(&mut rho, self.rho_end) {
                    converged = true;
                    break;
                }
                rebuild_simplex(&mut simplex, &best, rho, &mut obj);
            }
        }

        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (x, fx) = simplex[0].clone();
        trace.push((x.clone(), fx));
        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations,
            trace,
            converged,
        }
    }

    fn name(&self) -> &str {
        "COBYLA"
    }
}

/// Halves `rho`; returns `false` once it crosses `rho_end`.
fn shrink(rho: &mut f64, rho_end: f64) -> bool {
    *rho *= 0.5;
    *rho >= rho_end
}

fn rebuild_simplex<F: FnMut(&[f64]) -> f64>(
    simplex: &mut Vec<(Vec<f64>, f64)>,
    best: &(Vec<f64>, f64),
    rho: f64,
    obj: &mut CountingObjective<F>,
) {
    let dim = best.0.len();
    simplex.clear();
    simplex.push(best.clone());
    for i in 0..dim {
        let mut v = best.0.clone();
        v[i] += rho;
        let fv = obj.eval(&v);
        simplex.push((v, fv));
    }
}

/// Solves the square system `rows * g = rhs` by Gaussian elimination with
/// partial pivoting; `None` when (numerically) singular.
fn solve_linear(rows: &[Vec<f64>], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = rhs.len();
    let mut a: Vec<Vec<f64>> = rows.to_vec();
    let mut b = rhs.to_vec();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_identity() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear(&rows, &[3.0, -2.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singular() {
        let rows = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_linear(&rows, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn minimizes_quadratic() {
        let cobyla = Cobyla::default();
        let mut f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2);
        let res = cobyla.minimize(&mut f, &[0.0, 0.0]);
        assert!((res.x[0] - 1.0).abs() < 0.01, "{:?}", res.x);
        assert!((res.x[1] - 2.0).abs() < 0.01, "{:?}", res.x);
    }

    #[test]
    fn frugal_query_count_on_easy_problem() {
        // COBYLA's selling point in Table 6: tens of queries, not
        // thousands.
        let cobyla = Cobyla::default();
        let mut f = |x: &[f64]| x[0] * x[0] + x[1] * x[1];
        let res = cobyla.minimize(&mut f, &[0.5, -0.5]);
        assert!(res.queries < 200, "queries {}", res.queries);
        assert!(res.fx < 1e-4, "fx {}", res.fx);
    }

    #[test]
    fn minimizes_sinusoidal_landscape() {
        let cobyla = Cobyla {
            max_queries: 400,
            ..Cobyla::default()
        };
        let mut f = |x: &[f64]| -((2.0 * x[0]).sin() * x[1].cos());
        let res = cobyla.minimize(&mut f, &[0.6, 0.2]);
        assert!(res.fx < -0.98, "fx {}", res.fx);
    }

    #[test]
    fn respects_query_budget() {
        let cobyla = Cobyla {
            max_queries: 30,
            ..Cobyla::default()
        };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum();
        let res = cobyla.minimize(&mut f, &[1.0; 3]);
        assert!(res.queries <= 31, "queries {}", res.queries);
    }

    #[test]
    fn handles_one_dimension() {
        let cobyla = Cobyla::default();
        let mut f = |x: &[f64]| (x[0] + 4.0).powi(2);
        let res = cobyla.minimize(&mut f, &[0.0]);
        assert!((res.x[0] + 4.0).abs() < 0.01, "{:?}", res.x);
    }
}
