//! Objective-function plumbing: query counting and optimization traces.
//!
//! OSCAR's use cases hinge on *how many* cost-function queries an optimizer
//! issues (paper Table 6) and on the *path* it traces over the landscape
//! (Figures 2, 11, 13), so every optimizer in this crate reports both.

/// A recorded optimization run.
#[derive(Clone, Debug)]
pub struct OptimResult {
    /// Final parameter vector.
    pub x: Vec<f64>,
    /// Final objective value.
    pub fx: f64,
    /// Total number of objective queries issued.
    pub queries: usize,
    /// Number of optimizer iterations (outer steps).
    pub iterations: usize,
    /// Accepted iterates in order: `(parameters, value)`. The first entry
    /// is the initial point, the last equals (`x`, `fx`).
    pub trace: Vec<(Vec<f64>, f64)>,
    /// Whether the run stopped because a tolerance was met (vs budget).
    pub converged: bool,
}

impl OptimResult {
    /// Euclidean distance between this run's endpoint and another's.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn endpoint_distance(&self, other: &OptimResult) -> f64 {
        assert_eq!(self.x.len(), other.x.len(), "dimension mismatch");
        self.x
            .iter()
            .zip(other.x.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Wraps a closure, counting every evaluation.
///
/// # Examples
///
/// ```
/// use oscar_optim::objective::CountingObjective;
///
/// let mut obj = CountingObjective::new(|x: &[f64]| x[0] * x[0]);
/// let _ = obj.eval(&[2.0]);
/// let _ = obj.eval(&[3.0]);
/// assert_eq!(obj.count(), 2);
/// ```
pub struct CountingObjective<F> {
    f: F,
    count: usize,
}

impl<F> std::fmt::Debug for CountingObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingObjective")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&[f64]) -> f64> CountingObjective<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        CountingObjective { f, count: 0 }
    }

    /// Evaluates the objective, incrementing the counter.
    pub fn eval(&mut self, x: &[f64]) -> f64 {
        self.count += 1;
        (self.f)(x)
    }

    /// Number of evaluations so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// A shared trait implemented by every optimizer in this crate.
pub trait Optimizer {
    /// Minimizes `f` starting from `x0`, reporting the full run record.
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult;

    /// A short display name for reports ("ADAM", "COBYLA", ...).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_objective_counts() {
        let mut obj = CountingObjective::new(|x: &[f64]| x.iter().sum());
        for _ in 0..5 {
            obj.eval(&[1.0, 2.0]);
        }
        assert_eq!(obj.count(), 5);
    }

    #[test]
    fn endpoint_distance_euclidean() {
        let a = OptimResult {
            x: vec![0.0, 0.0],
            fx: 0.0,
            queries: 0,
            iterations: 0,
            trace: vec![],
            converged: true,
        };
        let b = OptimResult {
            x: vec![3.0, 4.0],
            ..a.clone()
        };
        assert!((a.endpoint_distance(&b) - 5.0).abs() < 1e-12);
    }
}
