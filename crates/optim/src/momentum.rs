//! Gradient descent with classical momentum — the simplest gradient-based
//! baseline, useful for isolating how much of ADAM's behaviour on VQA
//! landscapes comes from its adaptive step sizes.

use crate::gradient::central_difference;
use crate::objective::{CountingObjective, OptimResult, Optimizer};

/// Gradient descent with momentum (`v <- mu v - lr grad; x <- x + v`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MomentumGd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// Finite-difference step.
    pub fd_eps: f64,
    /// Maximum iterations.
    pub max_iter: usize,
    /// Stop when the gradient norm falls below this.
    pub grad_tol: f64,
}

impl Default for MomentumGd {
    fn default() -> Self {
        MomentumGd {
            lr: 0.05,
            momentum: 0.9,
            fd_eps: 1e-6,
            max_iter: 300,
            grad_tol: 1e-6,
        }
    }
}

impl Optimizer for MomentumGd {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        assert!(
            (0.0..1.0).contains(&self.momentum),
            "momentum must be in [0,1)"
        );
        let mut obj = CountingObjective::new(f);
        let dim = x0.len();
        let mut x = x0.to_vec();
        let mut v = vec![0.0; dim];
        let mut fx = obj.eval(&x);
        let mut trace = vec![(x.clone(), fx)];
        let mut converged = false;
        let mut iterations = 0;

        for t in 1..=self.max_iter {
            iterations = t;
            let grad = central_difference(&mut |p| obj.eval(p), &x, self.fd_eps);
            let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if gnorm < self.grad_tol {
                converged = true;
                break;
            }
            for i in 0..dim {
                v[i] = self.momentum * v[i] - self.lr * grad[i];
                x[i] += v[i];
            }
            fx = obj.eval(&x);
            trace.push((x.clone(), fx));
        }

        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations,
            trace,
            converged,
        }
    }

    fn name(&self) -> &str {
        "MomentumGD"
    }
}

/// Wraps an objective with box constraints by clamping query points.
///
/// Optimizers in this crate are unconstrained; landscapes, however, only
/// carry information inside their grid box. Clamping (rather than
/// penalizing) matches how the interpolated-reconstruction use case treats
/// out-of-box queries.
///
/// # Examples
///
/// ```
/// use oscar_optim::momentum::BoundedObjective;
///
/// let mut bounded = BoundedObjective::new(
///     |x: &[f64]| x[0],
///     vec![(-1.0, 1.0)],
/// );
/// assert_eq!(bounded.eval(&[5.0]), 1.0);
/// ```
pub struct BoundedObjective<F> {
    f: F,
    bounds: Vec<(f64, f64)>,
}

impl<F> std::fmt::Debug for BoundedObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedObjective")
            .field("bounds", &self.bounds)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(&[f64]) -> f64> BoundedObjective<F> {
    /// Creates the wrapper.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `lo >= hi`.
    pub fn new(f: F, bounds: Vec<(f64, f64)>) -> Self {
        assert!(
            bounds.iter().all(|&(lo, hi)| lo < hi),
            "bounds must satisfy lo < hi"
        );
        BoundedObjective { f, bounds }
    }

    /// Evaluates with the query clamped into the box.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != bounds.len()`.
    pub fn eval(&mut self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.bounds.len(), "dimension mismatch");
        let clamped: Vec<f64> = x
            .iter()
            .zip(&self.bounds)
            .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
            .collect();
        (self.f)(&clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let gd = MomentumGd::default();
        let mut f = |x: &[f64]| (x[0] + 1.0).powi(2) + (x[1] - 0.5).powi(2);
        let res = gd.minimize(&mut f, &[1.0, -1.0]);
        assert!((res.x[0] + 1.0).abs() < 0.02, "{:?}", res.x);
        assert!((res.x[1] - 0.5).abs() < 0.02, "{:?}", res.x);
    }

    #[test]
    fn momentum_accelerates_on_narrow_valley() {
        let plain = MomentumGd {
            momentum: 0.0,
            max_iter: 200,
            ..MomentumGd::default()
        };
        let with = MomentumGd {
            momentum: 0.9,
            max_iter: 200,
            ..MomentumGd::default()
        };
        let valley = |x: &[f64]| 0.05 * x[0] * x[0] + 5.0 * x[1] * x[1];
        let mut f1 = valley;
        let mut f2 = valley;
        let r_plain = plain.minimize(&mut f1, &[4.0, 0.1]);
        let r_with = with.minimize(&mut f2, &[4.0, 0.1]);
        assert!(
            r_with.fx < r_plain.fx,
            "momentum {} should beat plain {}",
            r_with.fx,
            r_plain.fx
        );
    }

    #[test]
    fn bounded_objective_clamps() {
        let mut bounded = BoundedObjective::new(|x: &[f64]| x[0] + x[1], vec![(0.0, 1.0); 2]);
        assert_eq!(bounded.eval(&[-3.0, 7.0]), 1.0);
        assert_eq!(bounded.eval(&[0.25, 0.25]), 0.5);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0,1)")]
    fn rejects_bad_momentum() {
        let gd = MomentumGd {
            momentum: 1.0,
            ..MomentumGd::default()
        };
        let mut f = |_: &[f64]| 0.0;
        let _ = gd.minimize(&mut f, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_inverted_bounds() {
        let _ = BoundedObjective::new(|_: &[f64]| 0.0, vec![(1.0, 0.0)]);
    }
}
