//! Deterministic compass (pattern) search — the fully gradient-free
//! baseline of the optimizer lineup.
//!
//! Compass search polls the objective at `x ± step · e_i` along every
//! coordinate axis, moves to the best improving poll point, and halves
//! the step when no poll improves. It estimates nothing — no gradients,
//! no model fitting, no randomness — which makes it the most robust
//! optimizer on the salt-like jagged landscapes Richardson ZNE produces
//! (Figure 13's regime) and the easiest to reason about in determinism
//! tests: the entire run is a pure function of `(config, x0)`.

use crate::objective::{CountingObjective, OptimResult, Optimizer};

/// Compass-search configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PatternSearch {
    /// Initial poll step.
    pub initial_step: f64,
    /// Stop when the step shrinks below this.
    pub min_step: f64,
    /// Maximum objective queries.
    pub max_queries: usize,
}

impl Default for PatternSearch {
    fn default() -> Self {
        PatternSearch {
            initial_step: 0.5,
            min_step: 1e-6,
            max_queries: 1000,
        }
    }
}

impl Optimizer for PatternSearch {
    fn minimize(&self, f: &mut dyn FnMut(&[f64]) -> f64, x0: &[f64]) -> OptimResult {
        assert!(!x0.is_empty(), "need at least one parameter");
        assert!(
            self.initial_step > self.min_step && self.min_step > 0.0,
            "need initial_step > min_step > 0"
        );
        let mut obj = CountingObjective::new(f);
        let dim = x0.len();
        let mut x = x0.to_vec();
        let mut fx = obj.eval(&x);
        let mut trace = vec![(x.clone(), fx)];
        let mut step = self.initial_step;
        let mut iterations = 0;
        let mut converged = false;

        let mut budget_spent = false;
        loop {
            iterations += 1;
            // Poll every axis in both directions; take the best improving
            // point (fixed axis order keeps the run deterministic).
            let mut best: Option<(Vec<f64>, f64)> = None;
            'poll: for i in 0..dim {
                for dir in [1.0, -1.0] {
                    if obj.count() >= self.max_queries {
                        budget_spent = true;
                        break 'poll;
                    }
                    let mut xp = x.clone();
                    xp[i] += dir * step;
                    let fp = obj.eval(&xp);
                    if fp < fx && best.as_ref().is_none_or(|(_, fb)| fp < *fb) {
                        best = Some((xp, fp));
                    }
                }
            }
            // Commit the best improving poll point even when the budget
            // ran out mid-sweep: its query is already spent, and
            // discarding it would return a worse point than was seen.
            match best {
                Some((xp, fp)) => {
                    x = xp;
                    fx = fp;
                    trace.push((x.clone(), fx));
                }
                None if !budget_spent => {
                    step *= 0.5;
                    if step < self.min_step {
                        converged = true;
                        break;
                    }
                }
                None => {}
            }
            if budget_spent {
                break;
            }
        }

        OptimResult {
            queries: obj.count(),
            x,
            fx,
            iterations,
            trace,
            converged,
        }
    }

    fn name(&self) -> &str {
        "PatternSearch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let ps = PatternSearch::default();
        let mut f = |x: &[f64]| (x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2);
        let res = ps.minimize(&mut f, &[0.0, 0.0]);
        assert!((res.x[0] - 1.5).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] + 0.5).abs() < 1e-4, "{:?}", res.x);
        assert!(res.converged);
    }

    #[test]
    fn is_a_pure_function_of_config_and_start() {
        let ps = PatternSearch::default();
        let mut f1 = |x: &[f64]| x[0].sin() + 0.1 * x[0] * x[0];
        let mut f2 = |x: &[f64]| x[0].sin() + 0.1 * x[0] * x[0];
        let a = ps.minimize(&mut f1, &[2.0]);
        let b = ps.minimize(&mut f2, &[2.0]);
        assert_eq!(a.x, b.x);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn robust_on_jagged_objective() {
        // High-frequency salt on a quadratic bowl: the poll step strides
        // over the jaggedness that traps finite-difference gradients.
        let mut f = |x: &[f64]| x[0] * x[0] + 0.05 * (80.0 * x[0]).sin();
        let res = PatternSearch::default().minimize(&mut f, &[2.0]);
        assert!(res.fx < 0.1, "fx {}", res.fx);
    }

    #[test]
    fn respects_query_budget() {
        let ps = PatternSearch {
            max_queries: 25,
            ..PatternSearch::default()
        };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum();
        let res = ps.minimize(&mut f, &[1.0; 5]);
        assert!(res.queries <= 25);
        assert!(!res.converged);
    }

    #[test]
    fn commits_improving_poll_found_before_budget_exhaustion() {
        // Budget dies mid-sweep right after an improving poll: the
        // returned point must be that poll, not the stale previous x.
        // Query trace: eval x0 (1), poll (1.5, 1) worse (2), poll
        // (0.5, 1) better (3) — budget of 3 exhausted before axis 1.
        let ps = PatternSearch {
            max_queries: 3,
            ..PatternSearch::default()
        };
        let mut f = |x: &[f64]| x[0] * x[0] + x[1] * x[1];
        let res = ps.minimize(&mut f, &[1.0, 1.0]);
        assert_eq!(res.x, vec![0.5, 1.0]);
        assert!((res.fx - 1.25).abs() < 1e-12, "fx {}", res.fx);
        assert_eq!(res.queries, 3);
    }

    #[test]
    #[should_panic(expected = "initial_step > min_step")]
    fn rejects_bad_steps() {
        let ps = PatternSearch {
            initial_step: 1e-9,
            ..PatternSearch::default()
        };
        let mut f = |_: &[f64]| 0.0;
        let _ = ps.minimize(&mut f, &[0.0]);
    }
}
