//! # oscar-optim — classical optimizers with query accounting
//!
//! The optimizer zoo for the VQA workflow and OSCAR's debugging use cases:
//!
//! * [`adam::Adam`] — gradient-based (finite differences), the expensive
//!   baseline of Table 6;
//! * [`cobyla::Cobyla`] — linear-approximation trust region, the frugal
//!   gradient-free optimizer;
//! * [`nelder_mead::NelderMead`] — downhill simplex cross-check;
//! * [`spsa::Spsa`] — stochastic perturbation optimizer for noisy
//!   objectives;
//! * [`pattern::PatternSearch`] — deterministic compass search, the
//!   fully gradient-free baseline;
//! * [`gradient`] — finite-difference and parameter-shift estimators;
//! * [`objective`] — the [`objective::Optimizer`] trait, query counting and
//!   optimization traces.
//!
//! # Example
//!
//! ```
//! use oscar_optim::prelude::*;
//!
//! let adam = Adam::default();
//! let mut objective = |x: &[f64]| (x[0] - 1.0).powi(2);
//! let result = adam.minimize(&mut objective, &[0.0]);
//! assert!((result.x[0] - 1.0).abs() < 0.05);
//! assert!(result.queries > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adam;
pub mod cobyla;
pub mod gradient;
pub mod momentum;
pub mod nelder_mead;
pub mod objective;
pub mod pattern;
pub mod spsa;

/// Glob-import of the most used types.
pub mod prelude {
    pub use crate::adam::Adam;
    pub use crate::cobyla::Cobyla;
    pub use crate::gradient::{central_difference, forward_difference, parameter_shift};
    pub use crate::momentum::{BoundedObjective, MomentumGd};
    pub use crate::nelder_mead::NelderMead;
    pub use crate::objective::{CountingObjective, OptimResult, Optimizer};
    pub use crate::pattern::PatternSearch;
    pub use crate::spsa::Spsa;
}
