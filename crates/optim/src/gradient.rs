//! Gradient estimators for black-box objectives.
//!
//! The VQA workflow cannot differentiate through a quantum circuit
//! analytically at the workflow level, so gradient-based optimizers use
//! finite differences (as Qiskit's ADAM does) or, for circuits built from
//! Pauli rotations, the exact parameter-shift rule.

/// Central finite-difference gradient: `(f(x+εe_i) - f(x-εe_i)) / 2ε`.
///
/// Issues `2 * dim` objective queries.
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn central_difference(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64], eps: f64) -> Vec<f64> {
    assert!(eps > 0.0, "step must be positive");
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + eps;
        let fp = f(&probe);
        probe[i] = x[i] - eps;
        let fm = f(&probe);
        probe[i] = x[i];
        grad[i] = (fp - fm) / (2.0 * eps);
    }
    grad
}

/// Forward finite-difference gradient reusing a precomputed `f(x)`.
///
/// Issues `dim` objective queries.
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn forward_difference(
    f: &mut dyn FnMut(&[f64]) -> f64,
    x: &[f64],
    fx: f64,
    eps: f64,
) -> Vec<f64> {
    assert!(eps > 0.0, "step must be positive");
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + eps;
        grad[i] = (f(&probe) - fx) / eps;
        probe[i] = x[i];
    }
    grad
}

/// Exact parameter-shift gradient for objectives built from Pauli-rotation
/// parameters: `df/dθ_i = [f(θ + π/2 e_i) - f(θ - π/2 e_i)] / 2`.
///
/// Valid when every parameter enters only as the angle of `exp(-i θ P / 2)`
/// with `P^2 = I` (true for RX/RY/RZ/RZZ/PauliRot parameters).
pub fn parameter_shift(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let shift = std::f64::consts::FRAC_PI_2;
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        probe[i] = x[i] + shift;
        let fp = f(&probe);
        probe[i] = x[i] - shift;
        let fm = f(&probe);
        probe[i] = x[i];
        grad[i] = 0.5 * (fp - fm);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_difference_on_quadratic() {
        let mut f = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
        let g = central_difference(&mut f, &[2.0, 1.0], 1e-6);
        assert!((g[0] - 4.0).abs() < 1e-6);
        assert!((g[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn forward_difference_close_to_central() {
        let mut f = |x: &[f64]| (x[0]).sin() * (x[1]).cos();
        let x = [0.4, 1.1];
        let fx = f(&x);
        let gf = forward_difference(&mut f, &x, fx, 1e-7);
        let gc = central_difference(&mut f, &x, 1e-6);
        for (a, b) in gf.iter().zip(&gc) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parameter_shift_exact_on_sinusoid() {
        // f(θ) = cos(θ) has derivative -sin(θ); parameter shift is exact
        // for single-frequency sinusoids.
        let mut f = |x: &[f64]| x[0].cos();
        for theta in [0.0, 0.3, 1.2, -2.0] {
            let g = parameter_shift(&mut f, &[theta]);
            assert!((g[0] + theta.sin()).abs() < 1e-12, "at {theta}");
        }
    }

    #[test]
    fn parameter_shift_on_circuit_expectation() {
        use oscar_qsim::prelude::*;
        // <Z> after RX(θ) on |0> is cos(θ).
        let mut c = Circuit::new(1, 1);
        c.push(Op::Rx(0, Param::Var(0)));
        let z = PauliSum::from_strings(vec![PauliString::parse("Z", 1.0).unwrap()]);
        let mut f = |x: &[f64]| c.run(x).expectation(&z);
        let g = parameter_shift(&mut f, &[0.7]);
        assert!((g[0] + 0.7f64.sin()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_eps() {
        let mut f = |_: &[f64]| 0.0;
        let _ = central_difference(&mut f, &[0.0], 0.0);
    }
}
