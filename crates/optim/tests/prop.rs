//! Property-based tests and the optimizer conformance suite.
//!
//! The conformance tests pin the contract the batch runtime's `Descent`
//! dispatch relies on for every optimizer in the lineup (the six
//! `Descent` variants): convergence on seeded convex quadratics,
//! bit-determinism given the same configuration and seed, and respect
//! for box bounds when driven through `BoundedObjective`.

use oscar_optim::prelude::*;
use proptest::prelude::*;

/// The full optimizer lineup the runtime's `Descent` enum dispatches
/// to, configured for reliable convergence on small quadratics. `seed`
/// only affects the stochastic member (SPSA).
fn lineup(seed: u64) -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(NelderMead::default()),
        Box::new(Adam {
            max_iter: 2000,
            grad_tol: 1e-9,
            ..Adam::default()
        }),
        Box::new(MomentumGd {
            max_iter: 2000,
            grad_tol: 1e-9,
            ..MomentumGd::default()
        }),
        Box::new(Spsa {
            max_iter: 4000,
            seed,
            ..Spsa::default()
        }),
        Box::new(Cobyla::default()),
        Box::new(PatternSearch::default()),
    ]
}

/// A seeded strictly convex quadratic: `sum a_i (x_i - m_i)^2 + b`
/// with `a_i in [0.5, 1.5]`, `m_i in [-1, 1]`, derived from `seed` by
/// an LCG so every seed is a different well-conditioned problem.
fn seeded_quadratic(seed: u64, dim: usize) -> (impl Fn(&[f64]) -> f64 + Clone, Vec<f64>, f64) {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut unit = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let a: Vec<f64> = (0..dim).map(|_| 0.5 + unit()).collect();
    let m: Vec<f64> = (0..dim).map(|_| 2.0 * unit() - 1.0).collect();
    let b = 2.0 * unit() - 1.0;
    let (af, mf) = (a.clone(), m.clone());
    let f = move |x: &[f64]| {
        x.iter()
            .zip(af.iter().zip(&mf))
            .map(|(&xi, (&ai, &mi))| ai * (xi - mi) * (xi - mi))
            .sum::<f64>()
            + b
    };
    (f, m, b)
}

#[test]
fn all_six_optimizers_converge_on_seeded_convex_quadratics() {
    for seed in [3u64, 17, 91] {
        let (f, minimum, fmin) = seeded_quadratic(seed, 2);
        for opt in lineup(seed) {
            let mut obj = f.clone();
            let res = opt.minimize(&mut obj, &[1.2, -0.8]);
            assert!(
                res.fx - fmin < 5e-2,
                "{} seed {seed}: fx {} vs minimum {fmin} (target {minimum:?}, got {:?})",
                opt.name(),
                res.fx,
                res.x
            );
        }
    }
}

#[test]
fn all_six_optimizers_are_bit_deterministic_given_the_same_seed() {
    let (f, _, _) = seeded_quadratic(7, 3);
    for opt in lineup(42) {
        let run = || {
            let mut obj = f.clone();
            opt.minimize(&mut obj, &[0.9, -0.3, 0.4])
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{} endpoint drifted between identical runs",
            opt.name()
        );
        assert_eq!(a.fx.to_bits(), b.fx.to_bits(), "{} fx drifted", opt.name());
        assert_eq!(a.queries, b.queries, "{} query count drifted", opt.name());
        assert_eq!(
            a.trace.len(),
            b.trace.len(),
            "{} trace length drifted",
            opt.name()
        );
    }
}

#[test]
fn spsa_differs_across_seeds_but_pins_per_seed() {
    let (f, _, _) = seeded_quadratic(11, 2);
    let run = |seed: u64| {
        let spsa = Spsa {
            max_iter: 50,
            seed,
            ..Spsa::default()
        };
        let mut obj = f.clone();
        spsa.minimize(&mut obj, &[1.0, 1.0])
    };
    assert_eq!(run(5).x, run(5).x);
    assert_ne!(
        run(5).x,
        run(6).x,
        "different seeds must take different perturbation paths"
    );
}

#[test]
fn all_six_optimizers_respect_bounds_through_bounded_objective() {
    // The quadratic's minimum (2, -2) lies outside the box [-1, 1]^2;
    // driven through BoundedObjective (how the runtime's descent stage
    // boxes a landscape), every optimizer must do no worse than some
    // in-box point and its reported fx must equal the objective at its
    // clamped endpoint — queries outside the box carry no information
    // gradient descent could exploit to "escape".
    let raw = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] + 2.0).powi(2);
    let bounds = vec![(-1.0, 1.0), (-1.0, 1.0)];
    let boxed_min = raw(&[1.0, -1.0]); // best point in the box: (1, -1)
    for opt in lineup(9) {
        let mut bounded = BoundedObjective::new(raw, bounds.clone());
        let mut obj = |x: &[f64]| bounded.eval(x);
        let res = opt.minimize(&mut obj, &[0.0, 0.0]);
        let clamped: Vec<f64> = res
            .x
            .iter()
            .zip(&bounds)
            .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
            .collect();
        assert!(
            (res.fx - raw(&clamped)).abs() < 1e-9,
            "{}: reported fx must be the bounded objective at the endpoint",
            opt.name()
        );
        assert!(
            res.fx >= boxed_min - 1e-9,
            "{}: fx {} below the in-box minimum {boxed_min}",
            opt.name(),
            res.fx
        );
        assert!(
            res.fx <= boxed_min + 0.2,
            "{}: fx {} failed to approach the boxed minimum {boxed_min}",
            opt.name(),
            res.fx
        );
    }
}

#[test]
fn spsa_is_identical_across_thread_counts() {
    // SPSA holds no global state: N concurrent runs with one seed are
    // bitwise the serial run — the property that lets the runtime seed
    // SPSA from the job seed and stay deterministic under any executor
    // count.
    let (f, _, _) = seeded_quadratic(23, 2);
    let spsa = Spsa {
        max_iter: 200,
        seed: 77,
        ..Spsa::default()
    };
    let mut obj = f.clone();
    let serial = spsa.minimize(&mut obj, &[0.5, -0.5]);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let f = f.clone();
            std::thread::spawn(move || {
                let mut obj = f;
                spsa.minimize(&mut obj, &[0.5, -0.5])
            })
        })
        .collect();
    for h in handles {
        let r = h.join().expect("spsa thread must not panic");
        assert_eq!(
            r.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(r.fx.to_bits(), serial.fx.to_bits());
        assert_eq!(r.queries, serial.queries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every optimizer's reported fx matches re-evaluating its endpoint,
    /// and the trace starts at the initial point.
    #[test]
    fn results_are_self_consistent(
        x0 in prop::collection::vec(-2.0f64..2.0, 1..4),
        c in -1.0f64..1.0,
    ) {
        let objective = move |x: &[f64]| {
            x.iter().map(|v| (v - c) * (v - c)).sum::<f64>()
        };
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Adam { max_iter: 30, ..Adam::default() }),
            Box::new(Cobyla { max_queries: 120, ..Cobyla::default() }),
            Box::new(NelderMead { max_queries: 150, ..NelderMead::default() }),
            Box::new(MomentumGd { max_iter: 30, ..MomentumGd::default() }),
        ];
        for opt in optimizers {
            let mut f = objective;
            let res = opt.minimize(&mut f, &x0);
            prop_assert_eq!(&res.trace[0].0, &x0, "{} trace start", opt.name());
            let refx = objective(&res.x);
            prop_assert!((res.fx - refx).abs() < 1e-9, "{} fx mismatch", opt.name());
            prop_assert!(res.queries >= 1);
        }
    }

    /// Optimizers never end with a worse value than the start on convex
    /// problems.
    #[test]
    fn never_worse_than_start_on_convex(
        x0 in prop::collection::vec(-3.0f64..3.0, 2..4),
        seed in 0u64..100,
    ) {
        let spsa = Spsa { max_iter: 200, seed, ..Spsa::default() };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let res = spsa.minimize(&mut f, &x0);
        let start: f64 = x0.iter().map(|v| v * v).sum();
        prop_assert!(res.fx <= start + 1e-6);
    }

    /// Central differences match analytic gradients of quadratics to
    /// first order.
    #[test]
    fn central_difference_exact_on_quadratics(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        x in -2.0f64..2.0,
        y in -2.0f64..2.0,
    ) {
        let mut f = |p: &[f64]| a * p[0] * p[0] + b * p[1];
        let g = central_difference(&mut f, &[x, y], 1e-5);
        prop_assert!((g[0] - 2.0 * a * x).abs() < 1e-5 * (1.0 + a.abs()));
        prop_assert!((g[1] - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// The parameter-shift rule is exact for single-frequency sinusoids
    /// with arbitrary amplitude and phase.
    #[test]
    fn parameter_shift_exact_on_sinusoids(
        amp in -3.0f64..3.0,
        phase in -3.0f64..3.0,
        theta in -3.0f64..3.0,
    ) {
        let mut f = move |x: &[f64]| amp * (x[0] + phase).cos();
        let g = parameter_shift(&mut f, &[theta]);
        let exact = -amp * (theta + phase).sin();
        prop_assert!((g[0] - exact).abs() < 1e-10);
    }

    /// Endpoint distance is a metric (symmetry + zero on identical runs).
    #[test]
    fn endpoint_distance_is_symmetric(
        x in prop::collection::vec(-5.0f64..5.0, 2..5),
        y_offset in prop::collection::vec(-1.0f64..1.0, 2..5),
    ) {
        let dim = x.len().min(y_offset.len());
        let make = |v: Vec<f64>| OptimResult {
            x: v, fx: 0.0, queries: 0, iterations: 0, trace: vec![], converged: true,
        };
        let a = make(x[..dim].to_vec());
        let b = make(x[..dim].iter().zip(&y_offset[..dim]).map(|(u, o)| u + o).collect());
        prop_assert!((a.endpoint_distance(&b) - b.endpoint_distance(&a)).abs() < 1e-12);
        prop_assert!(a.endpoint_distance(&a) < 1e-12);
    }
}
