//! Property-based tests for the optimizer crate.

use oscar_optim::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every optimizer's reported fx matches re-evaluating its endpoint,
    /// and the trace starts at the initial point.
    #[test]
    fn results_are_self_consistent(
        x0 in prop::collection::vec(-2.0f64..2.0, 1..4),
        c in -1.0f64..1.0,
    ) {
        let objective = move |x: &[f64]| {
            x.iter().map(|v| (v - c) * (v - c)).sum::<f64>()
        };
        let optimizers: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Adam { max_iter: 30, ..Adam::default() }),
            Box::new(Cobyla { max_queries: 120, ..Cobyla::default() }),
            Box::new(NelderMead { max_queries: 150, ..NelderMead::default() }),
            Box::new(MomentumGd { max_iter: 30, ..MomentumGd::default() }),
        ];
        for opt in optimizers {
            let mut f = objective;
            let res = opt.minimize(&mut f, &x0);
            prop_assert_eq!(&res.trace[0].0, &x0, "{} trace start", opt.name());
            let refx = objective(&res.x);
            prop_assert!((res.fx - refx).abs() < 1e-9, "{} fx mismatch", opt.name());
            prop_assert!(res.queries >= 1);
        }
    }

    /// Optimizers never end with a worse value than the start on convex
    /// problems.
    #[test]
    fn never_worse_than_start_on_convex(
        x0 in prop::collection::vec(-3.0f64..3.0, 2..4),
        seed in 0u64..100,
    ) {
        let spsa = Spsa { max_iter: 200, seed, ..Spsa::default() };
        let mut f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let res = spsa.minimize(&mut f, &x0);
        let start: f64 = x0.iter().map(|v| v * v).sum();
        prop_assert!(res.fx <= start + 1e-6);
    }

    /// Central differences match analytic gradients of quadratics to
    /// first order.
    #[test]
    fn central_difference_exact_on_quadratics(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        x in -2.0f64..2.0,
        y in -2.0f64..2.0,
    ) {
        let mut f = |p: &[f64]| a * p[0] * p[0] + b * p[1];
        let g = central_difference(&mut f, &[x, y], 1e-5);
        prop_assert!((g[0] - 2.0 * a * x).abs() < 1e-5 * (1.0 + a.abs()));
        prop_assert!((g[1] - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// The parameter-shift rule is exact for single-frequency sinusoids
    /// with arbitrary amplitude and phase.
    #[test]
    fn parameter_shift_exact_on_sinusoids(
        amp in -3.0f64..3.0,
        phase in -3.0f64..3.0,
        theta in -3.0f64..3.0,
    ) {
        let mut f = move |x: &[f64]| amp * (x[0] + phase).cos();
        let g = parameter_shift(&mut f, &[theta]);
        let exact = -amp * (theta + phase).sin();
        prop_assert!((g[0] - exact).abs() < 1e-10);
    }

    /// Endpoint distance is a metric (symmetry + zero on identical runs).
    #[test]
    fn endpoint_distance_is_symmetric(
        x in prop::collection::vec(-5.0f64..5.0, 2..5),
        y_offset in prop::collection::vec(-1.0f64..1.0, 2..5),
    ) {
        let dim = x.len().min(y_offset.len());
        let make = |v: Vec<f64>| OptimResult {
            x: v, fx: 0.0, queries: 0, iterations: 0, trace: vec![], converged: true,
        };
        let a = make(x[..dim].to_vec());
        let b = make(x[..dim].iter().zip(&y_offset[..dim]).map(|(u, o)| u + o).collect());
        prop_assert!((a.endpoint_distance(&b) - b.endpoint_distance(&a)).abs() < 1e-12);
        prop_assert!(a.endpoint_distance(&a) < 1e-12);
    }
}
