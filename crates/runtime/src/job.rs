//! Reconstruction jobs: the unit of work a [`crate::scheduler::BatchRuntime`]
//! schedules.
//!
//! One job runs the full OSCAR pipeline for one problem instance — a
//! QAOA Ising workload (MaxCut or SK model, any depth) or a molecular
//! VQE scan — over a landscape of any shape:
//!
//! 1. **Landscape sampling** — evaluate (or fetch from the
//!    [`crate::cache::LandscapeCache`]) the ground-truth landscape over
//!    the job's shape, through the spec's [`LandscapeSource`]: exact
//!    noiseless simulation or a noisy simulated device with
//!    deterministic counter-based per-point noise. Grid points run
//!    data-parallel on the shared worker pool either way. The spec's
//!    [`Mitigation`] is applied on top ([`mitigated_landscape`]): ZNE
//!    measures one landscape per noise-scale factor (each individually
//!    cached and shared across jobs) and extrapolates pointwise;
//!    readout correction and Gaussian smoothing post-process the raw
//!    landscape.
//! 2. **CS reconstruction** — sample `fraction` of the points with the
//!    job's seed and recover the full landscape by FISTA
//!    ([`Reconstructor::reconstruct_fraction_seeded`] on 2-D grids,
//!    [`Reconstructor::reconstruct_tensor_fraction_seeded`] on N-D
//!    tensors).
//! 3. **Optimization** — descend the interpolated reconstruction
//!    (bivariate spline on grids, clamped multilinear on tensors) from
//!    its best point with the spec's [`Descent`] optimizer (SPSA
//!    seeded from the job seed; [`Descent::None`] skips the stage),
//!    yielding the suggested minimum the debugging use cases consume.
//!
//! Every stage is deterministic given the [`JobSpec`], so a job's
//! [`JobResult`] is bit-identical whether it runs inline, on one
//! executor, or interleaved with 63 other jobs on four executors.

use crate::cache::LandscapeCache;
use crate::descent::Descent;
use crate::mitigation::{mitigated_landscape, Mitigation};
use crate::source::LandscapeSource;
use oscar_core::grid::{Grid2d, Shape};
use oscar_core::landscape::ShapedLandscape;
use oscar_core::reconstruct::Reconstructor;
use oscar_core::usecases::optimizer_debug::{
    optimize_on_reconstruction, optimize_on_reconstruction_nd,
};
use oscar_cs::fista::FistaConfig;
use oscar_obs::span::{with_stage, JobFrame, Stage};
use oscar_problems::ising::IsingProblem;
use oscar_problems::workload::{Molecule, ProblemInstance};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Per-stage duration histograms (`stage.<name>_us` in the obs
/// registry), indexed by [`Stage`], resolved once.
fn stage_metrics() -> &'static [oscar_obs::Histogram; oscar_obs::span::STAGE_COUNT] {
    static METRICS: OnceLock<[oscar_obs::Histogram; oscar_obs::span::STAGE_COUNT]> =
        OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = oscar_obs::Registry::global();
        Stage::ALL.map(|stage| registry.histogram(&format!("stage.{}_us", stage.as_str())))
    })
}

/// The default landscape shape for a molecular VQE scan: a coarse
/// symmetric window around zero on every ansatz parameter, sized so the
/// landscape stays in the same few-thousand-point budget as the paper's
/// 2-D grids (H2: 3 axes × 10 points; LiH: 8 axes × 3 points).
pub fn default_vqe_shape(molecule: Molecule) -> Shape {
    let per_axis = match molecule {
        Molecule::H2 => 10,
        Molecule::LiH => 3,
    };
    Shape::vqe_scan(&vec![per_axis; molecule.num_params()])
}

/// Everything needed to run one reconstruction job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The problem instance whose energy landscape is reconstructed.
    pub problem: ProblemInstance,
    /// Parameter-space shape of the landscape: a 2-D `(beta, gamma)`
    /// grid for depth-1 QAOA, an N-D tensor for deeper QAOA or VQE.
    /// Its rank must equal the problem's parameter count.
    pub shape: Shape,
    /// Sampling budget as a fraction of landscape points in `(0, 1]`.
    pub fraction: f64,
    /// Seed for the random sampling pattern (stage 2). Two jobs that
    /// differ only here share a cached landscape but sample it
    /// differently.
    pub seed: u64,
    /// Where stage 1's ground-truth landscape comes from: exact
    /// noiseless evaluation (the default) or a noisy simulated device
    /// with deterministic per-point noise.
    pub source: LandscapeSource,
    /// Noise-realization seed for stage 1 when [`Self::source`] is
    /// noisy: every landscape point draws from a counter-based stream
    /// keyed by `(landscape_seed, point_index)`, so two jobs with the
    /// same seed share one bit-identical noisy landscape (and one cache
    /// entry). Ignored — and normalized to 0 in cache keys — for the
    /// exact source.
    pub landscape_seed: u64,
    /// Error mitigation applied between landscape generation and CS
    /// reconstruction. Defaults to [`Mitigation::None`].
    pub mitigation: Mitigation,
    /// Sparse-recovery solver settings.
    pub fista: FistaConfig,
    /// Stage-3 optimizer descending the reconstruction (SPSA seeded
    /// from [`Self::seed`]). Defaults to [`Descent::NelderMead`];
    /// [`Descent::None`] skips the stage for pure-reconstruction
    /// throughput runs.
    pub descent: Descent,
}

impl JobSpec {
    /// A depth-1 QAOA job over a 2-D grid with default solver settings,
    /// no mitigation, and Nelder–Mead optimization — the original OSCAR
    /// workload, kept as the short constructor.
    pub fn new(problem: IsingProblem, grid: Grid2d, fraction: f64, seed: u64) -> Self {
        JobSpec::shaped(
            ProblemInstance::ising(problem, 1),
            Shape::Grid2d(grid),
            fraction,
            seed,
        )
    }

    /// A job over an arbitrary problem instance and landscape shape
    /// (deep QAOA tensors, molecular VQE scans) with default solver
    /// settings, no mitigation, and Nelder–Mead optimization.
    ///
    /// # Panics
    ///
    /// Panics if `shape.rank() != problem.num_params()` — the mismatch
    /// would otherwise surface only when the job runs.
    pub fn shaped(problem: ProblemInstance, shape: Shape, fraction: f64, seed: u64) -> Self {
        assert_eq!(
            shape.rank(),
            problem.num_params(),
            "shape rank must match the problem's parameter count"
        );
        JobSpec {
            problem,
            shape,
            fraction,
            seed,
            source: LandscapeSource::Exact,
            landscape_seed: 0,
            mitigation: Mitigation::None,
            fista: FistaConfig::default(),
            descent: Descent::NelderMead,
        }
    }

    /// Replaces the landscape source (builder-style).
    pub fn with_source(mut self, source: LandscapeSource) -> Self {
        self.source = source;
        self
    }

    /// Replaces the stage-1 noise-realization seed (builder-style).
    pub fn with_landscape_seed(mut self, landscape_seed: u64) -> Self {
        self.landscape_seed = landscape_seed;
        self
    }

    /// Replaces the mitigation stage (builder-style).
    pub fn with_mitigation(mut self, mitigation: Mitigation) -> Self {
        self.mitigation = mitigation;
        self
    }

    /// Replaces the stage-3 optimizer (builder-style).
    pub fn with_descent(mut self, descent: Descent) -> Self {
        self.descent = descent;
        self
    }
}

/// The outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Submission id (0 for jobs run outside a scheduler).
    pub job_id: u64,
    /// Order in which the scheduler *started* this job (1-based; 0 for
    /// jobs run outside a scheduler). Diagnostic only — it pins
    /// priority ordering in tests — and deliberately excluded from
    /// determinism comparisons: with several executors the start order
    /// depends on timing, while the result payload never does.
    pub dispatch_seq: u64,
    /// The reconstructed landscape (2-D grid or N-D tensor, matching
    /// the spec's shape).
    pub reconstruction: ShapedLandscape,
    /// NRMSE against the ground truth (paper Eq. 1).
    pub nrmse: f64,
    /// Circuit evaluations spent on sampling (stage 2 budget).
    pub samples_used: usize,
    /// FISTA iterations performed.
    pub solver_iterations: usize,
    /// Optimized parameter-space minimum on the reconstruction
    /// (stage 3; the reconstruction's argmin under [`Descent::None`]).
    /// One coordinate per landscape axis.
    pub best_point: Vec<f64>,
    /// Objective value at `best_point`.
    pub best_value: f64,
    /// `true` when the ground-truth landscape came from the cache.
    pub landscape_cache_hit: bool,
    /// Wall-clock time of the job body (excluding queue wait).
    pub wall: Duration,
}

/// Runs the full pipeline for `spec` on the calling thread, using
/// `cache` for stage 1 when provided. Deterministic: the result is a
/// pure function of the spec (timings and cache-hit flag aside).
pub fn run_job(spec: &JobSpec, cache: Option<&LandscapeCache>) -> JobResult {
    // lint:allow(wall-clock): feeds only the telemetry `wall` field,
    // which is excluded from result comparison and replay hashes.
    let started = Instant::now();
    // Collect per-stage durations for this job (telemetry only: they
    // feed the obs registry and span ring, never the result).
    let frame = JobFrame::begin();
    let (truth, cache_hit) = mitigated_landscape(
        &spec.problem,
        &spec.shape,
        &spec.source,
        spec.landscape_seed,
        &spec.mitigation,
        cache,
    );

    let reconstructor = Reconstructor::new(spec.fista);
    let (reconstruction, nrmse, samples_used, solver_iterations) = match truth.as_ref() {
        ShapedLandscape::Grid2d(l) => {
            let report = with_stage(Stage::Reconstruction, || {
                reconstructor.reconstruct_fraction_seeded(l, spec.fraction, spec.seed)
            });
            (
                ShapedLandscape::Grid2d(report.landscape),
                report.nrmse,
                report.samples_used,
                report.solver_iterations,
            )
        }
        ShapedLandscape::Tensor(l) => {
            let report = with_stage(Stage::Reconstruction, || {
                reconstructor.reconstruct_tensor_fraction_seeded(l, spec.fraction, spec.seed)
            });
            (
                ShapedLandscape::Tensor(report.landscape),
                report.nrmse,
                report.samples_used,
                report.solver_iterations,
            )
        }
    };

    let (best_point, best_value) = with_stage(Stage::Descent, || {
        match (spec.descent.optimizer(spec.seed), &reconstruction) {
            (Some(optimizer), ShapedLandscape::Grid2d(l)) => {
                let (_, (b0, g0)) = l.argmin();
                let run = optimize_on_reconstruction(optimizer.as_ref(), l, [b0, g0]);
                (vec![run.x[0], run.x[1]], run.fx)
            }
            (Some(optimizer), ShapedLandscape::Tensor(l)) => {
                let (_, x0) = l.argmin();
                let run = optimize_on_reconstruction_nd(optimizer.as_ref(), l, &x0);
                (run.x, run.fx)
            }
            (None, _) => {
                let (value, point) = reconstruction.argmin();
                (point, value)
            }
        }
    });

    let stage_durations = frame.finish();
    let histograms = stage_metrics();
    for (stage, duration) in Stage::ALL.iter().zip(stage_durations) {
        // A cache-served stage spends no time here; recording zeros
        // would drown the distributions in hit noise.
        if !duration.is_zero() {
            histograms[stage.index()].record_duration(duration);
        }
    }

    JobResult {
        job_id: 0,
        dispatch_seq: 0,
        reconstruction,
        nrmse,
        samples_used,
        solver_iterations,
        best_point,
        best_value,
        landscape_cache_hit: cache_hit,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec(seed: u64) -> JobSpec {
        let mut rng = StdRng::seed_from_u64(3);
        let problem = IsingProblem::random_3_regular(6, &mut rng);
        JobSpec::new(problem, Grid2d::small_p1(10, 14), 0.3, seed)
    }

    #[test]
    fn job_is_deterministic() {
        let s = spec(7);
        let a = run_job(&s, None);
        let b = run_job(&s, None);
        assert_eq!(a.reconstruction.values(), b.reconstruction.values());
        assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits());
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(a.samples_used, b.samples_used);
    }

    #[test]
    fn cached_and_uncached_runs_agree() {
        let s = spec(9);
        let cache = LandscapeCache::new(2);
        let plain = run_job(&s, None);
        let miss = run_job(&s, Some(&cache));
        let hit = run_job(&s, Some(&cache));
        assert!(!miss.landscape_cache_hit && hit.landscape_cache_hit);
        for r in [&miss, &hit] {
            assert_eq!(plain.reconstruction.values(), r.reconstruction.values());
            assert_eq!(plain.nrmse.to_bits(), r.nrmse.to_bits());
        }
    }

    #[test]
    fn exact_jobs_with_distinct_landscape_seeds_share_one_cache_entry() {
        // Regression: `run_job` used to fold the unused landscape_seed
        // into the cache key, so exact specs differing only there filled
        // the cache with duplicate identical landscapes and recomputed
        // each one.
        let cache = LandscapeCache::new(4);
        let a = run_job(&spec(7), Some(&cache));
        let b = run_job(&spec(7).with_landscape_seed(99), Some(&cache));
        assert!(!a.landscape_cache_hit);
        assert!(
            b.landscape_cache_hit,
            "seed-only variation must hit the shared exact entry"
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.len, stats.misses, stats.hits),
            (1, 1, 1),
            "{stats:?}"
        );
    }

    #[test]
    fn noisy_job_runs_and_differs_from_exact() {
        use oscar_executor::device::DeviceSpec;
        let exact = spec(7);
        let noisy = spec(7)
            .with_source(LandscapeSource::noisy(
                DeviceSpec::by_name("noisy sim").unwrap(),
            ))
            .with_landscape_seed(3);
        let e = run_job(&exact, None);
        let n = run_job(&noisy, None);
        assert!(n.nrmse.is_finite());
        assert_ne!(
            e.reconstruction.values(),
            n.reconstruction.values(),
            "noisy source must reconstruct a different landscape"
        );
        // Determinism: the same noisy spec reproduces bit-identically.
        let n2 = run_job(&noisy, None);
        assert_eq!(n.reconstruction.values(), n2.reconstruction.values());
        assert_eq!(n.nrmse.to_bits(), n2.nrmse.to_bits());
    }

    #[test]
    fn optimization_stage_improves_on_grid_argmin() {
        let s = spec(11);
        let with = run_job(&s, None);
        let without = run_job(&s.clone().with_descent(Descent::None), None);
        // The spline descent must not be worse than the raw grid argmin
        // it starts from (evaluated on the same reconstruction).
        assert!(with.best_value <= without.best_value + 1e-9);
        assert_eq!(
            with.reconstruction.values(),
            without.reconstruction.values()
        );
    }

    #[test]
    fn every_descent_variant_runs_and_is_deterministic() {
        let base = spec(13);
        let reference = run_job(&base.clone().with_descent(Descent::None), None);
        for descent in Descent::OPTIMIZERS {
            let s = base.clone().with_descent(descent);
            let a = run_job(&s, None);
            let b = run_job(&s, None);
            assert_eq!(
                (a.best_point.clone(), a.best_value.to_bits()),
                (b.best_point.clone(), b.best_value.to_bits()),
                "{} must be deterministic",
                descent.name()
            );
            // Stage 3 never changes stages 1–2.
            assert_eq!(a.reconstruction.values(), reference.reconstruction.values());
            // Descending from the argmin must not end above it.
            assert!(
                a.best_value <= reference.best_value + 1e-9,
                "{}: {} vs argmin {}",
                descent.name(),
                a.best_value,
                reference.best_value
            );
        }
    }

    #[test]
    fn mitigated_job_runs_end_to_end_and_differs_from_raw() {
        use oscar_executor::device::DeviceSpec;
        let noisy = spec(7)
            .with_source(LandscapeSource::noisy(
                DeviceSpec::by_name("ibm perth").unwrap(),
            ))
            .with_landscape_seed(3);
        let raw = run_job(&noisy, None);
        let zne = run_job(
            &noisy.clone().with_mitigation(Mitigation::zne_richardson()),
            None,
        );
        assert!(zne.nrmse.is_finite());
        assert_ne!(
            raw.reconstruction.values(),
            zne.reconstruction.values(),
            "ZNE must reconstruct a different landscape"
        );
        let zne2 = run_job(&noisy.with_mitigation(Mitigation::zne_richardson()), None);
        assert_eq!(zne.reconstruction.values(), zne2.reconstruction.values());
        assert_eq!(zne.nrmse.to_bits(), zne2.nrmse.to_bits());
    }

    #[test]
    fn depth_two_qaoa_job_runs_end_to_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let problem = IsingProblem::random_3_regular(6, &mut rng);
        let s = JobSpec::shaped(
            ProblemInstance::ising(problem, 2),
            Shape::qaoa(2, 5, 6),
            0.35,
            7,
        );
        let a = run_job(&s, None);
        let b = run_job(&s, None);
        assert_eq!(a.reconstruction.values(), b.reconstruction.values());
        assert_eq!(a.best_point.len(), 4, "p=2 has 4 parameters");
        assert!(a.nrmse.is_finite());
        assert_eq!(a.reconstruction.values().len(), 5 * 5 * 6 * 6);
        // The descent must not end above the reconstruction's argmin.
        let (argmin_value, _) = a.reconstruction.argmin();
        assert!(a.best_value <= argmin_value + 1e-9);
    }

    #[test]
    fn vqe_job_runs_end_to_end_with_default_shape() {
        let s = JobSpec::shaped(
            ProblemInstance::molecule(Molecule::H2),
            default_vqe_shape(Molecule::H2),
            0.3,
            11,
        );
        let a = run_job(&s, None);
        let b = run_job(&s, None);
        assert_eq!(a.reconstruction.values(), b.reconstruction.values());
        assert_eq!(a.best_point.len(), 3, "H2 UCCSD has 3 parameters");
        assert!(a.nrmse.is_finite());
        // The optimized energy must respect the variational bound (the
        // H2 ground state is about -1.851 Ha in this encoding) and land
        // at or below the exact landscape's own minimum neighborhood.
        assert!(a.best_value >= -1.9, "below the variational bound");
        let (argmin_value, _) = a.reconstruction.argmin();
        assert!(a.best_value <= argmin_value + 1e-9);
    }

    #[test]
    #[should_panic(expected = "shape rank must match")]
    fn shaped_rejects_rank_mismatch() {
        let mut rng = StdRng::seed_from_u64(3);
        let problem = IsingProblem::random_3_regular(6, &mut rng);
        // Depth 2 needs 4 axes; a 2-D grid has rank 2.
        let _ = JobSpec::shaped(
            ProblemInstance::ising(problem, 2),
            Shape::Grid2d(Grid2d::small_p1(10, 10)),
            0.3,
            1,
        );
    }
}
