//! The batch job scheduler: bounded-concurrency execution of many
//! reconstruction jobs over the shared worker pool.
//!
//! [`BatchRuntime`] owns a small set of persistent *executor* threads
//! (the concurrency bound) draining a priority queue of [`JobSpec`]s:
//! higher-[`Priority`] jobs dispatch first, equal priorities in FIFO
//! submission order. Each executor runs one job at a time through the
//! full pipeline ([`crate::job::run_job`]); the data-parallel stages
//! inside a job (landscape evaluation, large-grid DCT passes) delegate
//! to the global `oscar-par` worker pool, whose chunk-stealing workers
//! are shared by every concurrently running job — so job-level and
//! data-level parallelism compose without oversubscribing the machine.
//!
//! Priorities and cancellation change *when* (and whether) a job runs,
//! never *what* it computes: a [`crate::job::JobResult`] is a pure
//! function of its spec, so results stay bit-identical under any
//! dispatch order.
//!
//! Submission is asynchronous: [`BatchRuntime::submit`] returns a
//! [`JobHandle`] immediately; [`JobHandle::wait`] blocks for that job's
//! [`JobResult`]; [`JobHandle::cancel`] drops a still-queued job without
//! running it. [`BatchRuntime::run_batch`] is the synchronous
//! convenience that submits a whole batch and returns results in
//! submission order.

use crate::cache::{lock, CacheStats, LandscapeCache};
use crate::job::{run_job, JobResult, JobSpec};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Jobs running simultaneously (executor threads). Defaults to the
    /// `oscar-par` worker budget (`OSCAR_THREADS` or the machine's
    /// available parallelism).
    pub concurrency: usize,
    /// Ground-truth landscapes kept resident in the LRU cache.
    pub landscape_cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            concurrency: oscar_par::max_threads(),
            landscape_cache_capacity: 32,
        }
    }
}

/// Dispatch priority of a submitted job. Higher priorities leave the
/// queue first; jobs of equal priority dispatch in submission order
/// (FIFO tie-break), so a stream of same-priority jobs behaves exactly
/// like the pre-priority scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: dispatched only when nothing else waits.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: jumps ahead of every queued non-high job.
    High,
}

/// Job lifecycle, shared between a queue entry and its [`JobHandle`].
/// Transitions: `QUEUED -> RUNNING -> DONE` for the normal path;
/// `QUEUED -> CANCELLED` for a cancel that wins the race with dispatch;
/// `RUNNING -> CANCEL_REQUESTED -> DONE` when cancel arrives too late
/// (the job is not interrupted; the mark is observable but the result
/// is still delivered).
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
const CANCELLED: u8 = 3;
const CANCEL_REQUESTED: u8 = 4;

struct QueuedJob {
    id: u64,
    priority: Priority,
    spec: JobSpec,
    tx: Sender<JobResult>,
    state: Arc<AtomicU8>,
}

// The heap is a max-heap: order by priority, then by *reversed* id so
// the smallest (earliest-submitted) id wins among equal priorities.
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for QueuedJob {}

struct SchedInner {
    queue: Mutex<BinaryHeap<QueuedJob>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cache: LandscapeCache,
    submitted: AtomicU64,
    dispatched: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
}

/// A persistent batch scheduler (see the [module docs](self)).
///
/// Dropping the runtime shuts it down: executors finish the job they
/// are on, remaining queued jobs are abandoned — their handles' `wait`
/// returns `Err(`[`JobLost`]`)`. Prefer draining with
/// [`Self::run_batch`] or by waiting every handle before drop.
pub struct BatchRuntime {
    inner: Arc<SchedInner>,
    executors: Vec<JoinHandle<()>>,
}

/// Error returned by [`JobHandle::wait`] when a job can no longer
/// produce a result: it was cancelled while queued, the runtime was
/// dropped while the job was still queued, or the job itself panicked
/// (the executor contains the panic and keeps draining the queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobLost {
    id: u64,
    cancelled: bool,
}

impl JobLost {
    /// The scheduler-assigned id of the lost job.
    pub fn job_id(&self) -> u64 {
        self.id
    }

    /// `true` when the job was lost because [`JobHandle::cancel`]
    /// dropped it from the queue before it ran.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JobLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            write!(f, "job {} was cancelled before it ran", self.id)
        } else {
            write!(
                f,
                "job {} was lost: the runtime shut down (or the job panicked) \
                 before it completed",
                self.id
            )
        }
    }
}

impl std::error::Error for JobLost {}

/// A claim ticket for one submitted job.
pub struct JobHandle {
    id: u64,
    rx: Receiver<JobResult>,
    state: Arc<AtomicU8>,
}

impl JobHandle {
    /// The scheduler-assigned job id (submission order, starting at 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job finishes and returns its result, or
    /// `Err(`[`JobLost`]`)` when it never will: the job was cancelled
    /// while queued, the runtime was dropped with it still queued, or
    /// it panicked — callers can distinguish every no-result path from
    /// success instead of unwinding.
    pub fn wait(self) -> Result<JobResult, JobLost> {
        self.rx.recv().map_err(|_| JobLost {
            id: self.id,
            cancelled: self.state.load(Ordering::Acquire) == CANCELLED,
        })
    }

    /// Requests cancellation. Returns `true` when the job was still
    /// queued and is now dropped: it will never run, costs nothing
    /// further, and [`Self::wait`] reports it as a cancelled
    /// [`JobLost`]. Returns `false` when the job already started (it is
    /// *marked* cancel-requested but not interrupted — its result is
    /// still computed and delivered) or already finished.
    ///
    /// Cheap either way: one atomic transition; the queue entry is
    /// discarded lazily when an executor pops it.
    pub fn cancel(&self) -> bool {
        if self
            .state
            .compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return true;
        }
        // Too late to drop it; leave a mark on a still-running job.
        let _ = self.state.compare_exchange(
            RUNNING,
            CANCEL_REQUESTED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        false
    }

    /// `true` once the job's result has been computed (it may still be
    /// waiting in the channel until [`Self::wait`] collects it).
    pub fn is_finished(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }
}

impl BatchRuntime {
    /// Starts a runtime with `config.concurrency` executor threads.
    pub fn new(config: RuntimeConfig) -> Self {
        let inner = Arc::new(SchedInner {
            queue: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: LandscapeCache::new(config.landscape_cache_capacity.max(1)),
            submitted: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let executors = (0..config.concurrency.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("oscar-exec-{k}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("failed to spawn executor thread")
            })
            .collect();
        BatchRuntime { inner, executors }
    }

    /// Starts a runtime with the default configuration.
    pub fn with_concurrency(concurrency: usize) -> Self {
        BatchRuntime::new(RuntimeConfig {
            concurrency,
            ..RuntimeConfig::default()
        })
    }

    /// Enqueues a job at [`Priority::Normal`] and returns its handle
    /// immediately.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.submit_with_priority(spec, Priority::Normal)
    }

    /// Enqueues a job at `priority` and returns its handle immediately.
    /// Among queued jobs, higher priority dispatches first; equal
    /// priorities dispatch in submission order.
    pub fn submit_with_priority(&self, spec: JobSpec, priority: Priority) -> JobHandle {
        let id = self.inner.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = channel();
        let state = Arc::new(AtomicU8::new(QUEUED));
        {
            let mut queue = lock(&self.inner.queue);
            queue.push(QueuedJob {
                id,
                priority,
                spec,
                tx,
                state: Arc::clone(&state),
            });
        }
        self.inner.cv.notify_one();
        JobHandle { id, rx, state }
    }

    /// Submits every spec at [`Priority::Normal`] and waits for all
    /// results, returned in submission order.
    ///
    /// Returns `Err(`[`JobLost`]`)` carrying the first failed job's id
    /// if any job panicked (the executor contains the panic, reports
    /// that job lost, and keeps draining the rest); the runtime itself
    /// stays alive for the whole call, so a panicked job is the only
    /// way a batch job can be lost. Use [`Self::submit`] +
    /// [`JobHandle::wait`] for per-job error handling.
    pub fn run_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobResult>, JobLost> {
        let handles: Vec<JobHandle> = specs.into_iter().map(|s| self.submit(s)).collect();
        handles.into_iter().map(|h| h.wait()).collect()
    }

    /// Landscape-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Jobs dropped from the queue by [`JobHandle::cancel`] before they
    /// ran.
    pub fn cancelled(&self) -> u64 {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The concurrency bound (number of executors).
    pub fn concurrency(&self) -> usize {
        self.executors.len()
    }
}

impl Drop for BatchRuntime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Lock/unlock pairs with executors' wait to avoid missed wakeups.
        drop(lock(&self.inner.queue));
        self.inner.cv.notify_all();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for BatchRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRuntime")
            .field("concurrency", &self.executors.len())
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .field("cancelled", &self.cancelled())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

fn executor_loop(inner: &SchedInner) {
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = queue.pop() {
                    break job;
                }
                queue = inner.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Claim the job. A cancel that won the race left CANCELLED
        // here: discard the entry (dropping its sender wakes the
        // handle's `wait` with the cancelled error) and keep draining.
        if job
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            inner.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let seq = inner.dispatched.fetch_add(1, Ordering::Relaxed) + 1;
        // Contain a panicking job: the executor must survive to keep
        // draining the queue — if it died instead, jobs still queued
        // behind the poison pill would wait forever (their senders live
        // in the queue, which the runtime keeps alive). The panicked
        // job's sender is dropped without a send, so its handle's
        // `wait` returns `Err(JobLost)`.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&job.spec, Some(&inner.cache))
        }));
        if let Ok(mut result) = outcome {
            result.job_id = job.id;
            result.dispatch_seq = seq;
            inner.completed.fetch_add(1, Ordering::Relaxed);
            job.state.store(DONE, Ordering::Release);
            // A dropped handle just means nobody is waiting for this result.
            let _ = job.tx.send(result);
        } else {
            job.state.store(DONE, Ordering::Release);
        }
    }
}
