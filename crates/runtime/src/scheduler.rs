//! The batch job scheduler: bounded-concurrency execution of many
//! reconstruction jobs over the shared worker pool.
//!
//! [`BatchRuntime`] owns a small set of persistent *executor* threads
//! (the concurrency bound) draining a FIFO queue of [`JobSpec`]s. Each
//! executor runs one job at a time through the full pipeline
//! ([`crate::job::run_job`]); the data-parallel stages inside a job
//! (landscape evaluation, large-grid DCT passes) delegate to the global
//! `oscar-par` worker pool, whose chunk-stealing workers are shared by
//! every concurrently running job — so job-level and data-level
//! parallelism compose without oversubscribing the machine.
//!
//! Submission is asynchronous: [`BatchRuntime::submit`] returns a
//! [`JobHandle`] immediately; [`JobHandle::wait`] blocks for that job's
//! [`JobResult`]. [`BatchRuntime::run_batch`] is the synchronous
//! convenience that submits a whole batch and returns results in
//! submission order.

use crate::cache::{lock, CacheStats, LandscapeCache};
use crate::job::{run_job, JobResult, JobSpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Jobs running simultaneously (executor threads). Defaults to the
    /// `oscar-par` worker budget (`OSCAR_THREADS` or the machine's
    /// available parallelism).
    pub concurrency: usize,
    /// Ground-truth landscapes kept resident in the LRU cache.
    pub landscape_cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            concurrency: oscar_par::max_threads(),
            landscape_cache_capacity: 32,
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: JobSpec,
    tx: Sender<JobResult>,
}

struct SchedInner {
    queue: Mutex<VecDeque<QueuedJob>>,
    cv: Condvar,
    shutdown: AtomicBool,
    cache: LandscapeCache,
    submitted: AtomicU64,
    completed: AtomicU64,
}

/// A persistent batch scheduler (see the [module docs](self)).
///
/// Dropping the runtime shuts it down: executors finish the job they
/// are on, remaining queued jobs are abandoned — their handles' `wait`
/// returns `Err(`[`JobLost`]`)`. Prefer draining with
/// [`Self::run_batch`] or by waiting every handle before drop.
pub struct BatchRuntime {
    inner: Arc<SchedInner>,
    executors: Vec<JoinHandle<()>>,
}

/// Error returned by [`JobHandle::wait`] when a job can no longer
/// produce a result: the runtime was dropped while the job was still
/// queued, or the job itself panicked (the executor contains the panic
/// and keeps draining the queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobLost {
    id: u64,
}

impl JobLost {
    /// The scheduler-assigned id of the lost job.
    pub fn job_id(&self) -> u64 {
        self.id
    }
}

impl std::fmt::Display for JobLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} was lost: the runtime shut down (or the job panicked) \
             before it completed",
            self.id
        )
    }
}

impl std::error::Error for JobLost {}

/// A claim ticket for one submitted job.
pub struct JobHandle {
    id: u64,
    rx: Receiver<JobResult>,
}

impl JobHandle {
    /// The scheduler-assigned job id (submission order, starting at 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the job finishes and returns its result, or
    /// `Err(`[`JobLost`]`)` when the runtime was dropped with this job
    /// still queued (or the job panicked) — callers can distinguish
    /// shutdown from success instead of unwinding.
    pub fn wait(self) -> Result<JobResult, JobLost> {
        self.rx.recv().map_err(|_| JobLost { id: self.id })
    }
}

impl BatchRuntime {
    /// Starts a runtime with `config.concurrency` executor threads.
    pub fn new(config: RuntimeConfig) -> Self {
        let inner = Arc::new(SchedInner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: LandscapeCache::new(config.landscape_cache_capacity.max(1)),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let executors = (0..config.concurrency.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("oscar-exec-{k}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("failed to spawn executor thread")
            })
            .collect();
        BatchRuntime { inner, executors }
    }

    /// Starts a runtime with the default configuration.
    pub fn with_concurrency(concurrency: usize) -> Self {
        BatchRuntime::new(RuntimeConfig {
            concurrency,
            ..RuntimeConfig::default()
        })
    }

    /// Enqueues a job and returns its handle immediately.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let id = self.inner.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = channel();
        {
            let mut queue = lock(&self.inner.queue);
            queue.push_back(QueuedJob { id, spec, tx });
        }
        self.inner.cv.notify_one();
        JobHandle { id, rx }
    }

    /// Submits every spec and waits for all results, returned in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Panics if a batch job panicked (the executor contains the panic
    /// and reports that job lost); the runtime itself stays alive for
    /// the whole call, so that is the only way a batch job can be
    /// lost. Use [`Self::submit`] + [`JobHandle::wait`] to handle
    /// [`JobLost`] explicitly.
    pub fn run_batch(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<JobResult> {
        let handles: Vec<JobHandle> = specs.into_iter().map(|s| self.submit(s)).collect();
        handles
            .into_iter()
            .map(|h| h.wait().expect("a batch job panicked before completing"))
            .collect()
    }

    /// Landscape-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// The concurrency bound (number of executors).
    pub fn concurrency(&self) -> usize {
        self.executors.len()
    }
}

impl Drop for BatchRuntime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Lock/unlock pairs with executors' wait to avoid missed wakeups.
        drop(lock(&self.inner.queue));
        self.inner.cv.notify_all();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for BatchRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRuntime")
            .field("concurrency", &self.executors.len())
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

fn executor_loop(inner: &SchedInner) {
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inner.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Contain a panicking job: the executor must survive to keep
        // draining the queue — if it died instead, jobs still queued
        // behind the poison pill would wait forever (their senders live
        // in the queue, which the runtime keeps alive). The panicked
        // job's sender is dropped without a send, so its handle's
        // `wait` returns `Err(JobLost)`.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&job.spec, Some(&inner.cache))
        }));
        if let Ok(mut result) = outcome {
            result.job_id = job.id;
            inner.completed.fetch_add(1, Ordering::Relaxed);
            // A dropped handle just means nobody is waiting for this result.
            let _ = job.tx.send(result);
        }
    }
}
