//! The batch job scheduler: bounded-concurrency execution of many
//! reconstruction jobs over the shared worker pool.
//!
//! [`BatchRuntime`] owns a small set of persistent *executor* threads
//! (the concurrency bound) draining a priority queue of [`JobSpec`]s:
//! higher-[`Priority`] jobs dispatch first; within a priority level,
//! jobs carrying a deadline dispatch earliest-deadline-first ahead of
//! deadline-less jobs, and deadline-less jobs keep FIFO submission
//! order. Each executor runs one job at a time through the full
//! pipeline ([`crate::job::run_job`]); the data-parallel stages inside
//! a job (landscape evaluation, large-grid DCT passes) delegate to the
//! global `oscar-par` worker pool, whose chunk-stealing workers are
//! shared by every concurrently running job — so job-level and
//! data-level parallelism compose without oversubscribing the machine.
//!
//! Priorities, deadlines, and cancellation change *when* (and whether)
//! a job runs, never *what* it computes: a [`crate::job::JobResult`]
//! is a pure function of its spec, so results stay bit-identical under
//! any dispatch order.
//!
//! Submission is asynchronous: [`BatchRuntime::submit`] returns a
//! [`JobHandle`] immediately; [`JobHandle::wait`] blocks for that job's
//! [`JobResult`] and [`JobHandle::wait_timeout`] bounds the block;
//! [`JobHandle::cancel`] drops a still-queued job without running it.
//! A queued job whose [`SubmitOptions::deadline`] passes before an
//! executor reaches it is cancelled server-side — it never runs, and
//! its handle reports an *expired* [`JobLost`]. Overdue entries are
//! discarded when an executor pops them; a long-running service can
//! additionally call [`BatchRuntime::expire_overdue`] to sweep them
//! out of the queue eagerly. [`BatchRuntime::run_batch`] is the
//! synchronous convenience that submits a whole batch and returns
//! results in submission order, and [`BatchRuntime::drain`] blocks
//! until everything admitted so far has finished — the graceful-
//! shutdown hook `oscar-serve` uses.

use crate::cache::{lock, CacheStats, LandscapeCache};
use crate::job::{run_job, JobResult, JobSpec};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Jobs running simultaneously (executor threads). Defaults to the
    /// `oscar-par` worker budget (`OSCAR_THREADS` or the machine's
    /// available parallelism).
    pub concurrency: usize,
    /// Ground-truth landscapes kept resident in the LRU cache.
    pub landscape_cache_capacity: usize,
    /// Optional persistent disk tier under the landscape cache
    /// ([`crate::store::LandscapeStore`]): in-memory misses probe it,
    /// fresh landscapes are written behind. `None` (the default) keeps
    /// the runtime purely in-memory.
    pub store: Option<Arc<crate::store::LandscapeStore>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            concurrency: oscar_par::max_threads(),
            landscape_cache_capacity: 32,
            store: None,
        }
    }
}

/// Dispatch priority of a submitted job. Higher priorities leave the
/// queue first; jobs of equal priority dispatch in submission order
/// (FIFO tie-break), so a stream of same-priority jobs behaves exactly
/// like the pre-priority scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: dispatched only when nothing else waits.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work: jumps ahead of every queued non-high job.
    High,
}

impl Priority {
    /// Every priority, dispatch order (lowest first).
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// The priority's metric-name suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Scheduler telemetry (`sched.*` in the obs registry), resolved once.
/// The gauges/counters mirror the runtime's own atomics so `oscar-serve`
/// can expose scheduler health without a reference to the runtime.
struct SchedMetrics {
    queue_depth: [oscar_obs::Gauge; 3],
    dispatch_wait_us: oscar_obs::Histogram,
    submitted: oscar_obs::Counter,
    completed: oscar_obs::Counter,
    cancelled: oscar_obs::Counter,
    expired: oscar_obs::Counter,
    failed: oscar_obs::Counter,
}

fn sched_metrics() -> &'static SchedMetrics {
    static METRICS: std::sync::OnceLock<SchedMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = oscar_obs::Registry::global();
        SchedMetrics {
            queue_depth: Priority::ALL
                .map(|p| registry.gauge(&format!("sched.queue_depth.{}", p.as_str()))),
            dispatch_wait_us: registry.histogram("sched.dispatch_wait_us"),
            submitted: registry.counter("sched.submitted"),
            completed: registry.counter("sched.completed"),
            cancelled: registry.counter("sched.cancelled"),
            expired: registry.counter("sched.expired"),
            failed: registry.counter("sched.failed"),
        }
    })
}

/// Everything [`BatchRuntime::submit_opts`] can attach to a job beyond
/// its spec: a dispatch [`Priority`] and an optional absolute deadline.
///
/// A deadline changes scheduling two ways. While queued, the job sorts
/// earliest-deadline-first *within its priority level*, ahead of
/// deadline-less jobs of the same priority (callers that want a
/// deadline to outrank higher static priorities map it to a higher
/// [`Priority`] themselves — `oscar-serve` derives that mapping from
/// observed latency percentiles). And once the deadline passes, a job
/// still queued is cancelled server-side: it never runs, and its
/// handle's wait reports an expired [`JobLost`]. A deadline never
/// interrupts a job that already started.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubmitOptions {
    /// Dispatch priority ([`Priority::Normal`] by default).
    pub priority: Priority,
    /// Absolute wall-clock deadline for *starting* the job. `None`
    /// (the default) means the job waits indefinitely.
    pub deadline: Option<Instant>,
}

impl SubmitOptions {
    /// Options with the given priority and no deadline.
    pub fn with_priority(priority: Priority) -> Self {
        SubmitOptions {
            priority,
            deadline: None,
        }
    }

    /// Replaces the deadline (builder-style).
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Observable lifecycle of a submitted job (see [`JobHandle::status`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Claimed by an executor and running (or finished with the result
    /// still in flight to the handle's channel).
    Running,
    /// The result has been computed and delivered (or is waiting in the
    /// handle's channel).
    Done,
    /// Dropped from the queue by [`JobHandle::cancel`] before running.
    Cancelled,
    /// Dropped from the queue because its [`SubmitOptions::deadline`]
    /// passed before an executor reached it.
    Expired,
    /// The job panicked while running; no result exists.
    Failed,
}

/// Job lifecycle, shared between a queue entry and its [`JobHandle`].
/// Transitions: `QUEUED -> RUNNING -> DONE` for the normal path;
/// `QUEUED -> CANCELLED` for a cancel that wins the race with dispatch;
/// `QUEUED -> EXPIRED` for a deadline that passes first;
/// `RUNNING -> CANCEL_REQUESTED -> DONE` when cancel arrives too late
/// (the job is not interrupted; the mark is observable but the result
/// is still delivered); `RUNNING -> FAILED` when the job panics.
const QUEUED: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;
const CANCELLED: u8 = 3;
const CANCEL_REQUESTED: u8 = 4;
const FAILED: u8 = 5;
const EXPIRED: u8 = 6;

struct QueuedJob {
    id: u64,
    priority: Priority,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    spec: JobSpec,
    tx: Sender<JobResult>,
    state: Arc<AtomicU8>,
}

// The heap is a max-heap: order by priority, then earliest deadline
// first within a level (a deadline-less job sorts after every
// deadlined one), then by *reversed* id so the smallest
// (earliest-submitted) id wins among remaining ties.
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (None, None) => std::cmp::Ordering::Equal,
            })
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for QueuedJob {}

struct SchedInner {
    queue: Mutex<BinaryHeap<QueuedJob>>,
    cv: Condvar,
    /// Signaled (under the queue mutex) whenever a job settles or a
    /// queue entry is discarded — [`BatchRuntime::drain`] waits here.
    done_cv: Condvar,
    shutdown: AtomicBool,
    cache: LandscapeCache,
    submitted: AtomicU64,
    dispatched: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
    failed: AtomicU64,
    running: AtomicU64,
}

impl SchedInner {
    /// Notifies drain waiters that progress happened (a job settled or
    /// a queue entry was discarded). Locks the queue briefly so the
    /// notification pairs with [`BatchRuntime::drain`]'s locked wait.
    fn notify_progress(&self) {
        drop(lock(&self.queue));
        self.done_cv.notify_all();
    }
}

/// A persistent batch scheduler (see the [module docs](self)).
///
/// Dropping the runtime shuts it down: executors finish the job they
/// are on, remaining queued jobs are abandoned — their handles' `wait`
/// returns `Err(`[`JobLost`]`)`. Prefer draining with
/// [`Self::drain`] / [`Self::run_batch`] or by waiting every handle
/// before drop.
pub struct BatchRuntime {
    inner: Arc<SchedInner>,
    executors: Vec<JoinHandle<()>>,
}

/// Error returned by [`JobHandle::wait`] when a job can no longer
/// produce a result: it was cancelled while queued, its deadline
/// expired while queued, the runtime was dropped while the job was
/// still queued, or the job itself panicked (the executor contains the
/// panic and keeps draining the queue).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobLost {
    id: u64,
    cancelled: bool,
    expired: bool,
}

impl JobLost {
    /// The scheduler-assigned id of the lost job.
    pub fn job_id(&self) -> u64 {
        self.id
    }

    /// `true` when the job was lost because [`JobHandle::cancel`]
    /// dropped it from the queue before it ran.
    pub fn was_cancelled(&self) -> bool {
        self.cancelled
    }

    /// `true` when the job was lost because its
    /// [`SubmitOptions::deadline`] passed before it ran.
    pub fn was_expired(&self) -> bool {
        self.expired
    }
}

impl std::fmt::Display for JobLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            write!(f, "job {} was cancelled before it ran", self.id)
        } else if self.expired {
            write!(f, "job {}'s deadline expired before it ran", self.id)
        } else {
            write!(
                f,
                "job {} was lost: the runtime shut down (or the job panicked) \
                 before it completed",
                self.id
            )
        }
    }
}

impl std::error::Error for JobLost {}

/// Builds the [`JobLost`] matching a job's final state.
fn lost_from_state(id: u64, state: u8) -> JobLost {
    JobLost {
        id,
        cancelled: state == CANCELLED,
        expired: state == EXPIRED,
    }
}

/// A claim ticket for one submitted job.
pub struct JobHandle {
    id: u64,
    rx: Receiver<JobResult>,
    state: Arc<AtomicU8>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The scheduler-assigned job id (submission order, starting at 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's current lifecycle state. A `Cancelled`, `Expired`, or
    /// `Failed` status is terminal: the job will never produce a
    /// result. `Done` means the result exists (it may still be waiting
    /// in the channel until [`Self::wait`] collects it).
    pub fn status(&self) -> JobStatus {
        match self.state.load(Ordering::Acquire) {
            QUEUED => JobStatus::Queued,
            RUNNING | CANCEL_REQUESTED => JobStatus::Running,
            DONE => JobStatus::Done,
            CANCELLED => JobStatus::Cancelled,
            EXPIRED => JobStatus::Expired,
            _ => JobStatus::Failed,
        }
    }

    /// Blocks until the job finishes and returns its result, or
    /// `Err(`[`JobLost`]`)` when it never will: the job was cancelled
    /// or its deadline expired while queued, the runtime was dropped
    /// with it still queued, or it panicked — callers can distinguish
    /// every no-result path from success instead of unwinding.
    ///
    /// A job already marked cancelled or expired returns `Err`
    /// immediately, even while its dead queue entry still waits to be
    /// discarded.
    pub fn wait(self) -> Result<JobResult, JobLost> {
        if let s @ (CANCELLED | EXPIRED) = self.state.load(Ordering::Acquire) {
            return Err(lost_from_state(self.id, s));
        }
        self.rx
            .recv()
            .map_err(|_| lost_from_state(self.id, self.state.load(Ordering::Acquire)))
    }

    /// Bounded [`Self::wait`]: blocks up to `timeout` for the result.
    ///
    /// Returns `Ok(Some(result))` when the job finished, `Ok(None)`
    /// when the timeout elapsed with the job still pending (call again
    /// later — the handle stays valid), and `Err(`[`JobLost`]`)` when
    /// the job will never produce a result (cancelled, expired,
    /// runtime dropped, or panicked).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Option<JobResult>, JobLost> {
        if let s @ (CANCELLED | EXPIRED) = self.state.load(Ordering::Acquire) {
            return Err(lost_from_state(self.id, s));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Ok(Some(result)),
            Err(RecvTimeoutError::Timeout) => {
                // The job may have been cancelled or expired while we
                // blocked; report that instead of a bare timeout.
                match self.state.load(Ordering::Acquire) {
                    s @ (CANCELLED | EXPIRED) => Err(lost_from_state(self.id, s)),
                    _ => Ok(None),
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(lost_from_state(self.id, self.state.load(Ordering::Acquire)))
            }
        }
    }

    /// Requests cancellation. Returns `true` when the job was still
    /// queued and is now dropped: it will never run, costs nothing
    /// further, and [`Self::wait`] reports it as a cancelled
    /// [`JobLost`]. Returns `false` when the job already started (it is
    /// *marked* cancel-requested but not interrupted — its result is
    /// still computed and delivered) or already finished.
    ///
    /// Cheap either way: one atomic transition; the queue entry is
    /// discarded lazily when an executor pops it (or eagerly by
    /// [`BatchRuntime::expire_overdue`]).
    pub fn cancel(&self) -> bool {
        if self
            .state
            .compare_exchange(QUEUED, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return true;
        }
        // Too late to drop it; leave a mark on a still-running job.
        let _ = self.state.compare_exchange(
            RUNNING,
            CANCEL_REQUESTED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        false
    }

    /// `true` once the job has settled without a pending result path:
    /// its result has been computed ([`JobStatus::Done`] — possibly
    /// still waiting in the channel until [`Self::wait`] collects it)
    /// or it panicked ([`JobStatus::Failed`]).
    pub fn is_finished(&self) -> bool {
        matches!(self.state.load(Ordering::Acquire), DONE | FAILED)
    }
}

impl BatchRuntime {
    /// Starts a runtime with `config.concurrency` executor threads.
    pub fn new(config: RuntimeConfig) -> Self {
        let inner = Arc::new(SchedInner {
            queue: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: LandscapeCache::with_store(
                config.landscape_cache_capacity.max(1),
                config.store.clone(),
            ),
            submitted: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            running: AtomicU64::new(0),
        });
        let executors = (0..config.concurrency.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("oscar-exec-{k}"))
                    .spawn(move || executor_loop(&inner))
                    // lint:allow(no-panic): spawn failure at startup
                    // means the host is out of threads; there is no
                    // runtime to degrade into yet.
                    .expect("failed to spawn executor thread")
            })
            .collect();
        BatchRuntime { inner, executors }
    }

    /// Starts a runtime with the default configuration.
    pub fn with_concurrency(concurrency: usize) -> Self {
        BatchRuntime::new(RuntimeConfig {
            concurrency,
            ..RuntimeConfig::default()
        })
    }

    /// Enqueues a job at [`Priority::Normal`] and returns its handle
    /// immediately.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.submit_opts(spec, SubmitOptions::default())
    }

    /// Enqueues a job at `priority` and returns its handle immediately.
    /// Among queued jobs, higher priority dispatches first; equal
    /// priorities dispatch in submission order.
    pub fn submit_with_priority(&self, spec: JobSpec, priority: Priority) -> JobHandle {
        self.submit_opts(spec, SubmitOptions::with_priority(priority))
    }

    /// Enqueues a job with full [`SubmitOptions`] (priority and
    /// optional start deadline) and returns its handle immediately.
    pub fn submit_opts(&self, spec: JobSpec, opts: SubmitOptions) -> JobHandle {
        let id = self.inner.submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = channel();
        let state = Arc::new(AtomicU8::new(QUEUED));
        {
            let mut queue = lock(&self.inner.queue);
            queue.push(QueuedJob {
                id,
                priority: opts.priority,
                deadline: opts.deadline,
                // lint:allow(wall-clock): queue-wait bookkeeping only;
                // never reaches a JobResult.
                enqueued_at: Instant::now(),
                spec,
                tx,
                state: Arc::clone(&state),
            });
        }
        let metrics = sched_metrics();
        metrics.submitted.inc();
        metrics.queue_depth[opts.priority.index()].inc();
        self.inner.cv.notify_one();
        JobHandle { id, rx, state }
    }

    /// Submits every spec at [`Priority::Normal`] and waits for all
    /// results, returned in submission order.
    ///
    /// Returns `Err(`[`JobLost`]`)` carrying the first failed job's id
    /// if any job panicked (the executor contains the panic, reports
    /// that job lost, and keeps draining the rest); the runtime itself
    /// stays alive for the whole call, so a panicked job is the only
    /// way a batch job can be lost. Use [`Self::submit`] +
    /// [`JobHandle::wait`] for per-job error handling.
    pub fn run_batch(
        &self,
        specs: impl IntoIterator<Item = JobSpec>,
    ) -> Result<Vec<JobResult>, JobLost> {
        let handles: Vec<JobHandle> = specs.into_iter().map(|s| self.submit(s)).collect();
        handles.into_iter().map(|h| h.wait()).collect()
    }

    /// Sweeps the queue, discarding entries that will never run: jobs
    /// whose [`SubmitOptions::deadline`] has passed (marked expired)
    /// and jobs already cancelled by their handle. Discarding drops
    /// each entry's result channel, so blocked waiters wake with the
    /// matching [`JobLost`] immediately instead of when an executor
    /// eventually pops the dead entry. Returns how many jobs expired
    /// in this sweep.
    ///
    /// Executors also discard overdue entries at pop time; this sweep
    /// exists so a long-running service (whose executors may be busy
    /// for seconds) can bound how long expired waiters linger. It
    /// rebuilds the heap, so it is O(queue) — call it from a periodic
    /// tick, not a hot path.
    pub fn expire_overdue(&self) -> u64 {
        // lint:allow(wall-clock): deadline enforcement is inherently
        // wall-clock; expired jobs never produce results.
        let now = Instant::now();
        let mut expired_now = 0;
        let mut queue = lock(&self.inner.queue);
        if queue.is_empty() {
            return 0;
        }
        let entries = std::mem::take(&mut *queue).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        let mut discarded = false;
        let metrics = sched_metrics();
        for job in entries {
            if job.state.load(Ordering::Acquire) == CANCELLED {
                self.inner.cancelled.fetch_add(1, Ordering::Relaxed);
                metrics.cancelled.inc();
                metrics.queue_depth[job.priority.index()].dec();
                discarded = true;
                continue;
            }
            if let Some(deadline) = job.deadline {
                if now >= deadline
                    && job
                        .state
                        .compare_exchange(QUEUED, EXPIRED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.inner.expired.fetch_add(1, Ordering::Relaxed);
                    metrics.expired.inc();
                    metrics.queue_depth[job.priority.index()].dec();
                    expired_now += 1;
                    discarded = true;
                    continue;
                }
            }
            kept.push(job);
        }
        *queue = BinaryHeap::from(kept);
        drop(queue);
        if discarded {
            self.inner.done_cv.notify_all();
        }
        expired_now
    }

    /// Blocks until every job admitted so far has settled: the queue is
    /// empty and no executor is running a job. Queued jobs run to
    /// completion (cancelled/expired entries are discarded), so every
    /// outstanding handle resolves. The graceful-shutdown hook: stop
    /// submitting, `drain()`, then drop the runtime.
    ///
    /// Callers must stop submitting first — a concurrent submitter can
    /// extend the drain indefinitely.
    pub fn drain(&self) {
        let mut queue = lock(&self.inner.queue);
        loop {
            if queue.is_empty() && self.inner.running.load(Ordering::Acquire) == 0 {
                return;
            }
            queue = self
                .inner
                .done_cv
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Landscape-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Jobs dropped from the queue by [`JobHandle::cancel`] before they
    /// ran.
    pub fn cancelled(&self) -> u64 {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Jobs dropped from the queue because their deadline passed before
    /// they ran.
    pub fn expired(&self) -> u64 {
        self.inner.expired.load(Ordering::Relaxed)
    }

    /// Jobs that panicked while running (contained; no result).
    pub fn failed(&self) -> u64 {
        self.inner.failed.load(Ordering::Relaxed)
    }

    /// Queue depth: entries waiting for an executor. Includes entries
    /// already cancelled or expired but not yet discarded (they cost a
    /// pop, not a run); [`Self::expire_overdue`] sweeps those out.
    pub fn pending(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// Queue entries claimed by executors and not yet settled (running
    /// jobs, plus entries an executor is about to discard as cancelled
    /// or expired).
    pub fn running(&self) -> u64 {
        self.inner.running.load(Ordering::Acquire)
    }

    /// The concurrency bound (number of executors).
    pub fn concurrency(&self) -> usize {
        self.executors.len()
    }
}

impl Drop for BatchRuntime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Lock/unlock pairs with executors' wait to avoid missed wakeups.
        drop(lock(&self.inner.queue));
        self.inner.cv.notify_all();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Settle the queue-depth gauges for entries abandoned in the
        // queue, so the process-wide depth does not leak across
        // runtimes.
        let metrics = sched_metrics();
        for job in lock(&self.inner.queue).drain() {
            metrics.queue_depth[job.priority.index()].dec();
        }
        // After the executors exit, this runtime holds the only strong
        // reference to the queue: dropping it (when `self.inner` drops
        // right after this body) frees every abandoned entry's sender,
        // so outstanding handles — including cancelled-then-dropped
        // ones — wake from `wait` with `Err(JobLost)` rather than
        // blocking forever.
    }
}

impl std::fmt::Debug for BatchRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRuntime")
            .field("concurrency", &self.executors.len())
            .field("submitted", &self.submitted())
            .field("completed", &self.completed())
            .field("cancelled", &self.cancelled())
            .field("expired", &self.expired())
            .field("pending", &self.pending())
            .field("running", &self.running())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

fn executor_loop(inner: &SchedInner) {
    let metrics = sched_metrics();
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(job) = queue.pop() {
                    // Count the entry in-flight while still holding the
                    // queue lock: `drain` checks `queue.is_empty() &&
                    // running == 0` under this same lock, so it can
                    // never observe the gap between a pop and the
                    // claimed job becoming visible.
                    inner.running.fetch_add(1, Ordering::AcqRel);
                    break job;
                }
                queue = inner.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Popped: the entry is out of the queue whatever happens next.
        metrics.queue_depth[job.priority.index()].dec();
        // Expire an overdue entry before claiming it: it never runs,
        // and dropping it below wakes its waiter with the expired error.
        if let Some(deadline) = job.deadline {
            // lint:allow(wall-clock): deadline check at pop time; an
            // expired job is dropped, not computed.
            if Instant::now() >= deadline
                && job
                    .state
                    .compare_exchange(QUEUED, EXPIRED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                inner.expired.fetch_add(1, Ordering::Relaxed);
                metrics.expired.inc();
                drop(job);
                inner.running.fetch_sub(1, Ordering::AcqRel);
                inner.notify_progress();
                continue;
            }
        }
        // Claim the job. A cancel that won the race left CANCELLED
        // here: discard the entry (dropping its sender wakes the
        // handle's `wait` with the cancelled error) and keep draining.
        if job
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            if job.state.load(Ordering::Acquire) == CANCELLED {
                inner.cancelled.fetch_add(1, Ordering::Relaxed);
                metrics.cancelled.inc();
            }
            drop(job);
            inner.running.fetch_sub(1, Ordering::AcqRel);
            inner.notify_progress();
            continue;
        }
        metrics
            .dispatch_wait_us
            .record_duration(job.enqueued_at.elapsed());
        let seq = inner.dispatched.fetch_add(1, Ordering::Relaxed) + 1;
        // Scope stage spans recorded inside the pipeline to this job's
        // scheduler id (telemetry only — never enters the result).
        let _span_scope = oscar_obs::span::JobScope::enter(job.id);
        // Contain a panicking job: the executor must survive to keep
        // draining the queue — if it died instead, jobs still queued
        // behind the poison pill would wait forever (their senders live
        // in the queue, which the runtime keeps alive). The panicked
        // job's sender is dropped without a send, so its handle's
        // `wait` returns `Err(JobLost)`.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(&job.spec, Some(&inner.cache))
        }));
        if let Ok(mut result) = outcome {
            result.job_id = job.id;
            result.dispatch_seq = seq;
            inner.completed.fetch_add(1, Ordering::Relaxed);
            metrics.completed.inc();
            job.state.store(DONE, Ordering::Release);
            // A dropped handle just means nobody is waiting for this result.
            let _ = job.tx.send(result);
        } else {
            inner.failed.fetch_add(1, Ordering::Relaxed);
            metrics.failed.inc();
            job.state.store(FAILED, Ordering::Release);
        }
        inner.running.fetch_sub(1, Ordering::AcqRel);
        inner.notify_progress();
    }
}
