//! Stage 3 of the job pipeline: which optimizer descends the
//! reconstructed landscape.
//!
//! PR 2 hardcoded Nelder–Mead; [`Descent`] opens the full `oscar-optim`
//! lineup as a job axis — the paper's optimizer-selection use case
//! (Figure 13, Table 6) run through the batch runtime. Every variant is
//! deterministic given the job spec: the only stochastic member, SPSA,
//! is seeded from the job's sampling seed, so a job's result stays a
//! pure function of its [`crate::job::JobSpec`] on any executor count.

use oscar_optim::adam::Adam;
use oscar_optim::cobyla::Cobyla;
use oscar_optim::momentum::MomentumGd;
use oscar_optim::nelder_mead::NelderMead;
use oscar_optim::objective::Optimizer;
use oscar_optim::pattern::PatternSearch;
use oscar_optim::spsa::Spsa;

/// The optimizer a job's stage 3 dispatches to (or [`Descent::None`]
/// to skip the stage and report the reconstruction's grid argmin —
/// pure-reconstruction throughput runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Descent {
    /// Skip stage 3; the best point is the reconstruction's argmin.
    None,
    /// Deterministic downhill simplex (the PR-2 default).
    #[default]
    NelderMead,
    /// ADAM with finite-difference gradients (Qiskit-style defaults).
    Adam,
    /// Gradient descent with classical momentum.
    Momentum,
    /// Simultaneous perturbation stochastic approximation, seeded from
    /// the job's sampling seed.
    Spsa,
    /// COBYLA-style linear-approximation trust region.
    Cobyla,
    /// Deterministic compass (pattern) search — fully gradient-free.
    GradientFree,
}

impl Descent {
    /// Every variant that actually optimizes, in a stable order (the
    /// `oscar-batch` sweep axis).
    pub const OPTIMIZERS: [Descent; 6] = [
        Descent::NelderMead,
        Descent::Adam,
        Descent::Momentum,
        Descent::Spsa,
        Descent::Cobyla,
        Descent::GradientFree,
    ];

    /// Resolves a CLI-style name: `none`, `nelder-mead`, `adam`,
    /// `momentum`, `spsa`, `cobyla`, or `gradient-free`.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "none" => Descent::None,
            "nelder-mead" => Descent::NelderMead,
            "adam" => Descent::Adam,
            "momentum" => Descent::Momentum,
            "spsa" => Descent::Spsa,
            "cobyla" => Descent::Cobyla,
            "gradient-free" => Descent::GradientFree,
            _ => return None,
        })
    }

    /// The CLI-style name (the inverse of [`Self::by_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Descent::None => "none",
            Descent::NelderMead => "nelder-mead",
            Descent::Adam => "adam",
            Descent::Momentum => "momentum",
            Descent::Spsa => "spsa",
            Descent::Cobyla => "cobyla",
            Descent::GradientFree => "gradient-free",
        }
    }

    /// Builds the configured optimizer, or `None` for
    /// [`Descent::None`]. `seed` feeds the stochastic member (SPSA);
    /// deterministic optimizers ignore it.
    pub fn optimizer(self, seed: u64) -> Option<Box<dyn Optimizer>> {
        Some(match self {
            Descent::None => return None,
            Descent::NelderMead => Box::new(NelderMead::default()),
            Descent::Adam => Box::new(Adam::default()),
            Descent::Momentum => Box::new(MomentumGd::default()),
            Descent::Spsa => Box::new(Spsa {
                seed,
                ..Spsa::default()
            }),
            Descent::Cobyla => Box::new(Cobyla::default()),
            Descent::GradientFree => Box::new(PatternSearch::default()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in [Descent::None].into_iter().chain(Descent::OPTIMIZERS) {
            assert_eq!(Descent::by_name(d.name()), Some(d));
        }
        assert_eq!(Descent::by_name("sgd"), None);
    }

    #[test]
    fn only_none_skips_the_stage() {
        assert!(Descent::None.optimizer(0).is_none());
        for d in Descent::OPTIMIZERS {
            assert!(d.optimizer(0).is_some(), "{}", d.name());
        }
    }

    #[test]
    fn spsa_takes_the_job_seed() {
        // 2-D so the Rademacher direction does not cancel out of the
        // update (in 1-D it does, making every seed's path identical).
        let quad = |x: &[f64]| x[0] * x[0] + 2.0 * x[1] * x[1];
        let (mut f1, mut f2) = (quad, quad);
        let a = Descent::Spsa
            .optimizer(3)
            .unwrap()
            .minimize(&mut f1, &[1.0, 0.5]);
        let b = Descent::Spsa
            .optimizer(4)
            .unwrap()
            .minimize(&mut f2, &[1.0, 0.5]);
        assert_ne!(
            a.trace, b.trace,
            "different job seeds must drive different SPSA paths"
        );
    }
}
