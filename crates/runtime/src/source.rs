//! Where a job's stage-1 landscape comes from: exact simulation or a
//! noisy simulated device.
//!
//! The paper's central workload reconstructs *noisy* VQA landscapes
//! from sparse device executions; [`LandscapeSource`] is the runtime's
//! switch between the exact noiseless evaluator and a device-backed
//! noisy evaluation ([`QpuDevice`] for QAOA, [`VqeDevice`] for
//! molecules). Noisy landscapes are **deterministic under
//! concurrency**: every grid point draws its noise from a
//! counter-based RNG keyed by `(landscape_seed, point_index)`
//! ([`oscar_qsim::rng::CounterRng`]) with the flat row-major index as
//! the stream — the same discipline on 2-D grids and N-D tensors — so
//! the landscape is bit-identical no matter how the worker pool
//! interleaves points or how many executors run jobs — the property
//! the batch cache and the `--compare` harness rely on. (The QPU
//! device's internal mutex-guarded RNG stream, by contrast, is
//! execution-order-dependent and is not used here.)

use oscar_core::grid::Shape;
use oscar_core::landscape::{Landscape, NdLandscape, ShapedLandscape};
use oscar_core::usecases::mitigation::{scaled_noisy_landscape, zne_factor_seed};
use oscar_executor::device::{DeviceSpec, QpuDevice, VqeDevice};
use oscar_problems::workload::{ProblemInstance, VqeEvaluator};
use oscar_qsim::fingerprint::{tag, Fingerprint};

/// How stage 1 evaluates the ground-truth landscape.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum LandscapeSource {
    /// Exact noiseless evaluation (infinite shots, no gate errors).
    /// `JobSpec::landscape_seed` is irrelevant for this source and is
    /// normalized to 0 in cache keys, so exact jobs that differ only in
    /// that field share one cached landscape.
    #[default]
    Exact,
    /// Noisy evaluation through a simulated device.
    Noisy {
        /// The device whose noise configuration shapes every point.
        device: DeviceSpec,
        /// Overrides the device's shot count when set (a sweep axis the
        /// paper's noisy experiments vary independently of the device).
        shots: Option<usize>,
    },
}

impl LandscapeSource {
    /// A noisy source using the device's own shot count.
    pub fn noisy(device: DeviceSpec) -> Self {
        LandscapeSource::Noisy {
            device,
            shots: None,
        }
    }

    /// `true` for the exact noiseless source.
    pub fn is_exact(&self) -> bool {
        matches!(self, LandscapeSource::Exact)
    }

    /// The device actually executed: the spec with any shot override
    /// already folded into its noise model. `None` for [`Self::Exact`].
    pub(crate) fn effective_device(&self) -> Option<DeviceSpec> {
        match self {
            LandscapeSource::Exact => None,
            LandscapeSource::Noisy { device, shots } => Some(match shots {
                Some(s) => DeviceSpec {
                    noise: device.noise.with_shots(*s),
                    ..device.clone()
                },
                None => device.clone(),
            }),
        }
    }

    /// Stable 128-bit fingerprint folded into
    /// [`crate::cache::LandscapeKey`]: 0 for [`Self::Exact`], a
    /// process-stable hash ([`oscar_qsim::fingerprint`]) of the
    /// *effective* device otherwise — exact and noisy entries can never
    /// collide, and a shot override that merely restates the device's
    /// own shot count hashes identically to no override (the landscapes
    /// are bit-identical, so they must share one cache entry).
    ///
    /// Canonical encoding: `tag::NOISY`, then the device fingerprint
    /// ([`DeviceSpec::fingerprint`]) as `u128`.
    pub fn fingerprint(&self) -> u128 {
        match self.effective_device() {
            None => 0,
            Some(spec) => {
                let mut h = Fingerprint::new();
                // Domain tag keeps a pathological all-zero device hash
                // from colliding with the exact source's 0.
                h.write_u8(tag::NOISY);
                h.write_u128(spec.fingerprint());
                h.finish()
            }
        }
    }

    /// Fingerprint of this source at ZNE noise scale `scale` — the
    /// cache identity of one per-factor sub-landscape. Scale `1.0`
    /// normalizes to [`Self::fingerprint`]: the factor-1 landscape *is*
    /// the plain unscaled landscape (same seed, same noise draws), so a
    /// ZNE job and a raw job over the same device share that entry.
    /// The exact source is scale-independent (no noise to amplify) and
    /// always fingerprints to 0.
    ///
    /// Canonical encoding (scale ≠ 1): `tag::ZNE_SCALE`, the device
    /// fingerprint as `u128`, the scale's f64 bit pattern.
    pub fn scaled_fingerprint(&self, scale: f64) -> u128 {
        if scale == 1.0 {
            return self.fingerprint();
        }
        match self.effective_device() {
            None => 0,
            Some(spec) => {
                let mut h = Fingerprint::new();
                h.write_u8(tag::ZNE_SCALE);
                h.write_u128(spec.fingerprint());
                h.write_f64(scale);
                h.finish()
            }
        }
    }

    /// Evaluates the ground-truth landscape for `problem` over `shape`.
    ///
    /// Deterministic: a pure function of `(self, problem, shape,
    /// landscape_seed)`, bit-identical across worker counts and
    /// evaluation orders. Grid points run data-parallel on the shared
    /// worker pool for both sources and every shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape's rank differs from the problem's parameter
    /// count, or a depth-`p` QAOA problem with `p > 1` (or a molecule)
    /// is paired with a 2-D grid shape.
    pub fn generate(
        &self,
        problem: &ProblemInstance,
        shape: &Shape,
        landscape_seed: u64,
    ) -> ShapedLandscape {
        self.generate_scaled(problem, shape, landscape_seed, 1.0)
    }

    /// Evaluates the landscape at ZNE noise scale `scale` (depolarizing
    /// rates amplified by gate folding; the per-factor noise seed is
    /// derived so each factor draws fresh shot noise — see
    /// [`oscar_core::usecases::mitigation::zne_factor_seed`]). At
    /// `scale = 1.0` this is bit-identical to [`Self::generate`]; the
    /// exact source ignores the scale entirely.
    ///
    /// # Panics
    ///
    /// See [`Self::generate`].
    pub fn generate_scaled(
        &self,
        problem: &ProblemInstance,
        shape: &Shape,
        landscape_seed: u64,
        scale: f64,
    ) -> ShapedLandscape {
        assert_eq!(
            shape.rank(),
            problem.num_params(),
            "shape rank must match the problem's parameter count"
        );
        match problem {
            ProblemInstance::Ising { problem, depth } => match shape {
                Shape::Grid2d(grid) => {
                    assert_eq!(*depth, 1, "a 2-D grid is a depth-1 QAOA landscape");
                    match self.effective_device() {
                        None => Landscape::from_qaoa(*grid, &problem.qaoa_evaluator()).into(),
                        Some(spec) => {
                            // The internal-RNG seed is irrelevant: every
                            // point draws from its own counter stream
                            // keyed by the (derived) landscape seed and
                            // the flat point index.
                            let qpu = spec.build(problem, 0);
                            scaled_noisy_landscape(&qpu, *grid, landscape_seed, scale).into()
                        }
                    }
                }
                Shape::Tensor(tensor) => {
                    let p = *depth;
                    match self.effective_device() {
                        None => {
                            let eval = problem.qaoa_evaluator();
                            NdLandscape::generate_indexed_par(tensor.clone(), |_, params| {
                                eval.expectation(&params[..p], &params[p..])
                            })
                            .into()
                        }
                        Some(spec) => {
                            let qpu: QpuDevice = spec.with_depth(p).build(problem, 0);
                            let seed = zne_factor_seed(landscape_seed, scale);
                            NdLandscape::generate_indexed_par(tensor.clone(), |i, params| {
                                qpu.execute_scaled_at(
                                    &params[..p],
                                    &params[p..],
                                    scale,
                                    seed,
                                    i as u64,
                                )
                            })
                            .into()
                        }
                    }
                }
            },
            ProblemInstance::Molecule(molecule) => {
                let Shape::Tensor(tensor) = shape else {
                    // lint:allow(no-panic): molecule specs are only built with tensor shapes (default_vqe_shape / Shape::vqe_scan, enforced at the wire by proto validation); a grid-shaped molecule is a caller bug, and the evaluator would reject the parameter-count mismatch anyway.
                    panic!("molecular VQE landscapes are tensor-shaped");
                };
                match self.effective_device() {
                    None => {
                        let eval = VqeEvaluator::new(*molecule);
                        NdLandscape::generate_indexed_par(tensor.clone(), |_, params| {
                            eval.expectation(params)
                        })
                        .into()
                    }
                    Some(spec) => {
                        let dev: VqeDevice = spec.build_vqe(*molecule);
                        let seed = zne_factor_seed(landscape_seed, scale);
                        NdLandscape::generate_indexed_par(tensor.clone(), |i, params| {
                            dev.execute_scaled_at(params, scale, seed, i as u64)
                        })
                        .into()
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::grid::Grid2d;
    use oscar_problems::ising::IsingProblem;
    use oscar_problems::workload::Molecule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem() -> ProblemInstance {
        let mut rng = StdRng::seed_from_u64(21);
        ProblemInstance::ising(IsingProblem::random_3_regular(6, &mut rng), 1)
    }

    fn perth() -> DeviceSpec {
        DeviceSpec::by_name("ibm perth").expect("known device")
    }

    fn grid(nb: usize, ng: usize) -> Shape {
        Shape::Grid2d(Grid2d::small_p1(nb, ng))
    }

    #[test]
    fn noisy_generation_is_bit_stable() {
        let p = problem();
        let shape = grid(8, 10);
        let source = LandscapeSource::noisy(perth());
        let a = source.generate(&p, &shape, 5);
        let b = source.generate(&p, &shape, 5);
        assert_eq!(a.values(), b.values());
        // A different landscape seed is a different noise realization.
        let c = source.generate(&p, &shape, 6);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn noisy_differs_from_exact_but_correlates() {
        let p = problem();
        let shape = grid(10, 12);
        let exact = LandscapeSource::Exact.generate(&p, &shape, 0);
        let noisy = LandscapeSource::noisy(perth()).generate(&p, &shape, 1);
        assert_ne!(exact.values(), noisy.values());
        // The noisy landscape is the exact one damped toward the mixed
        // mean plus bounded shot noise — it must stay in the same range
        // neighborhood, not be garbage.
        assert!(noisy.values().iter().all(|v| v.is_finite()));
        let span = |l: &ShapedLandscape| {
            let vs = l.values();
            vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - vs.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(span(&noisy) < span(&exact) * 1.5);
    }

    #[test]
    fn shot_override_changes_fingerprint_and_values() {
        let p = problem();
        let shape = grid(6, 8);
        let base = LandscapeSource::noisy(perth());
        let overridden = LandscapeSource::Noisy {
            device: perth(),
            shots: Some(64),
        };
        assert_ne!(base.fingerprint(), overridden.fingerprint());
        let a = base.generate(&p, &shape, 3);
        let b = overridden.generate(&p, &shape, 3);
        assert_ne!(a.values(), b.values(), "64 shots must be noisier than 4096");
    }

    #[test]
    fn redundant_shot_override_shares_the_no_override_fingerprint() {
        // "ibm perth" already runs at 4096 shots: restating that as an
        // override changes nothing about the landscape, so it must hash
        // to the same cache key (the noisy analogue of the exact
        // source's seed normalization).
        let spelled_out = LandscapeSource::Noisy {
            device: perth(),
            shots: Some(4096),
        };
        let implicit = LandscapeSource::noisy(perth());
        assert_eq!(spelled_out.fingerprint(), implicit.fingerprint());
        let p = problem();
        let shape = grid(6, 8);
        assert_eq!(
            spelled_out.generate(&p, &shape, 3).values(),
            implicit.generate(&p, &shape, 3).values()
        );
    }

    #[test]
    fn scaled_generation_unit_scale_matches_generate() {
        let p = problem();
        let shape = grid(6, 8);
        let source = LandscapeSource::noisy(perth());
        assert_eq!(
            source.generate(&p, &shape, 4).values(),
            source.generate_scaled(&p, &shape, 4, 1.0).values()
        );
        // Higher scales damp harder and draw fresh noise.
        let s3 = source.generate_scaled(&p, &shape, 4, 3.0);
        assert_ne!(source.generate(&p, &shape, 4).values(), s3.values());
        assert_eq!(
            s3.values(),
            source.generate_scaled(&p, &shape, 4, 3.0).values(),
            "scaled generation must be bit-stable"
        );
    }

    #[test]
    fn scaled_fingerprints_normalize_unit_scale_and_separate_factors() {
        let source = LandscapeSource::noisy(perth());
        assert_eq!(source.scaled_fingerprint(1.0), source.fingerprint());
        assert_ne!(source.scaled_fingerprint(2.0), source.fingerprint());
        assert_ne!(
            source.scaled_fingerprint(2.0),
            source.scaled_fingerprint(3.0)
        );
        // Exact sources are scale-independent.
        assert_eq!(LandscapeSource::Exact.scaled_fingerprint(3.0), 0);
    }

    #[test]
    fn exact_fingerprint_is_zero_and_noisy_is_not() {
        assert_eq!(LandscapeSource::Exact.fingerprint(), 0);
        assert_ne!(LandscapeSource::noisy(perth()).fingerprint(), 0);
        assert_eq!(
            LandscapeSource::noisy(perth()).fingerprint(),
            LandscapeSource::noisy(perth()).fingerprint()
        );
    }

    #[test]
    fn depth_two_tensor_generation_is_deterministic_and_noisy_differs() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = ProblemInstance::ising(IsingProblem::random_3_regular(6, &mut rng), 2);
        let shape = Shape::qaoa(2, 4, 5);
        assert_eq!(shape.rank(), 4);
        let exact = LandscapeSource::Exact.generate(&p, &shape, 0);
        assert_eq!(exact.values().len(), 400);
        let source = LandscapeSource::noisy(perth());
        let a = source.generate(&p, &shape, 5);
        let b = source.generate(&p, &shape, 5);
        assert_eq!(a.values(), b.values(), "4-D noisy must be bit-stable");
        assert_ne!(a.values(), exact.values());
        assert_ne!(a.values(), source.generate(&p, &shape, 6).values());
    }

    #[test]
    fn vqe_generation_runs_exact_and_noisy() {
        let p = ProblemInstance::molecule(Molecule::H2);
        let shape = Shape::vqe_scan(&[5, 5, 5]);
        let exact = LandscapeSource::Exact.generate(&p, &shape, 0);
        assert_eq!(exact.values().len(), 125);
        assert!(exact.values().iter().all(|v| v.is_finite()));
        let source = LandscapeSource::noisy(perth());
        let a = source.generate(&p, &shape, 3);
        let b = source.generate(&p, &shape, 3);
        assert_eq!(a.values(), b.values(), "VQE noisy must be bit-stable");
        assert_ne!(a.values(), exact.values());
    }

    #[test]
    #[should_panic(expected = "shape rank must match")]
    fn rejects_rank_mismatch() {
        let p = ProblemInstance::molecule(Molecule::H2);
        let _ = LandscapeSource::Exact.generate(&p, &grid(4, 4), 0);
    }
}
