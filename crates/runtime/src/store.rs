//! Persistent on-disk tier under the in-memory landscape cache.
//!
//! The LRU ([`crate::cache::LandscapeCache`]) dies with the process, so
//! every restart of a sweep service re-pays the dominant pipeline cost:
//! landscape generation, seconds per entry. [`LandscapeStore`] keeps
//! those landscapes on disk, keyed by the same process-stable 128-bit
//! [`LandscapeKey`] the in-memory tier uses — a warm store makes a
//! repeated sweep pure reconstruction in a fresh process.
//!
//! # Design
//!
//! * **One file per entry**, named by the FNV-1a-128 hash of the key's
//!   canonical bytes (`<hash:032x>.osl`). The full 72-byte key block is
//!   stored in the header and verified on open, so even a filename hash
//!   collision degrades to a miss, never to wrong data.
//! * **Write-behind**: [`LandscapeStore::save`] enqueues the entry on an
//!   unbounded channel served by one writer thread — the executor hot
//!   path never blocks on disk. Entries are written to a temp file and
//!   atomically renamed into place, so readers (including concurrent
//!   processes sharing a store directory) never observe a torn entry.
//!   [`LandscapeStore::flush`] drains the queue; dropping the last
//!   handle joins the writer, so process exit flushes too.
//! * **Corruption-safe open**: every failure mode — zero-length or
//!   truncated file, bad magic, unknown format version, checksum
//!   mismatch, inconsistent shape/payload header — is a clean miss
//!   (plus a `store.corrupt_entries` metric), never a panic. A missed
//!   entry is simply regenerated and rewritten.
//!
//! # On-disk format (version 1, normative)
//!
//! All integers little-endian; `f64` as IEEE-754 bit patterns.
//!
//! | field | size | contents |
//! |---|---|---|
//! | magic | 8 | `b"OSCARLS\0"` |
//! | version | 4 | `u32` = 1 |
//! | key | 72 | [`LandscapeKey`] canonical bytes (4×`u128` + `u64`) |
//! | shape kind | 1 | 0 = 2-D grid, 1 = N-D tensor |
//! | rank | 8 | axis count (`u64`; 2 for grids) |
//! | axes | rank×24 | per axis: `lo` `f64`, `hi` `f64`, `n` `u64` |
//! | count | 8 | payload value count (`u64`, = ∏ nᵢ) |
//! | payload | count×8 | raw `f64` values, row-major ([`oscar_core::io`]) |
//! | checksum | 16 | FNV-1a-128 over **all** preceding bytes |

use crate::cache::{lock, LandscapeKey};
use oscar_core::grid::{Axis, Grid2d, TensorShape};
use oscar_core::io::{f64s_from_le_bytes, f64s_to_le_bytes};
use oscar_core::landscape::{Landscape, NdLandscape, ShapedLandscape};
use oscar_qsim::fingerprint::Fingerprint;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Format magic, first 8 bytes of every entry.
const MAGIC: [u8; 8] = *b"OSCARLS\0";
/// Current format version.
const VERSION: u32 = 1;
/// Entry file extension.
const EXT: &str = "osl";
/// Bytes before the axis blocks: magic + version + key + kind + rank.
const FIXED_HEADER: usize = 8 + 4 + 72 + 1 + 8;
/// Trailing checksum size.
const CHECKSUM: usize = 16;

/// `store.*` counters in the obs registry, resolved once.
struct StoreMetrics {
    hits: oscar_obs::Counter,
    misses: oscar_obs::Counter,
    writes: oscar_obs::Counter,
    write_errors: oscar_obs::Counter,
    corrupt_entries: oscar_obs::Counter,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = oscar_obs::Registry::global();
        StoreMetrics {
            hits: registry.counter("store.hits"),
            misses: registry.counter("store.misses"),
            writes: registry.counter("store.writes"),
            write_errors: registry.counter("store.write_errors"),
            corrupt_entries: registry.counter("store.corrupt_entries"),
        }
    })
}

/// A snapshot of the store's effectiveness counters (process-wide, from
/// the obs registry — all stores in a process share them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Probes that found no (valid) entry.
    pub misses: u64,
    /// Entries written behind.
    pub writes: u64,
    /// Failed write attempts (disk full, permissions, …).
    pub write_errors: u64,
    /// Entries that failed validation on open (each also counts a miss).
    pub corrupt_entries: u64,
}

/// Reads the process-wide `store.*` counter snapshot.
pub fn store_stats() -> StoreStats {
    let m = store_metrics();
    StoreStats {
        hits: m.hits.get(),
        misses: m.misses.get(),
        writes: m.writes.get(),
        write_errors: m.write_errors.get(),
        corrupt_entries: m.corrupt_entries.get(),
    }
}

/// What the write-behind thread processes.
enum WriteReq {
    Entry {
        key: LandscapeKey,
        landscape: Arc<ShapedLandscape>,
    },
    Flush(Sender<()>),
}

/// The persistent disk tier. See the module docs for format and
/// semantics. Cheap to share: clone the `Arc` returned by
/// [`Self::open`] into [`crate::scheduler::RuntimeConfig::store`].
pub struct LandscapeStore {
    dir: PathBuf,
    /// `None` once the store has begun shutting down.
    tx: Mutex<Option<Sender<WriteReq>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for LandscapeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LandscapeStore")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl LandscapeStore {
    /// Opens (creating if needed) a store rooted at `dir` and starts
    /// its write-behind thread.
    ///
    /// # Errors
    ///
    /// Propagates failures to create the directory or spawn the writer
    /// thread.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Arc<LandscapeStore>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (tx, rx) = mpsc::channel::<WriteReq>();
        let writer_dir = dir.clone();
        let writer = std::thread::Builder::new()
            .name("oscar-store-writer".into())
            .spawn(move || {
                while let Ok(req) = rx.recv() {
                    match req {
                        WriteReq::Entry { key, landscape } => {
                            write_entry(&writer_dir, &key, &landscape);
                        }
                        WriteReq::Flush(ack) => {
                            // Everything enqueued before the flush has
                            // already been written (single consumer, in
                            // order); just acknowledge.
                            let _ = ack.send(());
                        }
                    }
                }
            })?;
        Ok(Arc::new(LandscapeStore {
            dir,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        }))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for `key`.
    fn entry_path(&self, key: &LandscapeKey) -> PathBuf {
        self.dir.join(format!("{:032x}.{EXT}", key.store_hash()))
    }

    /// Probes the disk tier for `key`. Any invalid entry — truncated,
    /// bad magic, unknown version, checksum mismatch, key mismatch,
    /// inconsistent header — is a miss; structurally invalid entries
    /// also count `store.corrupt_entries`. Never panics, never blocks
    /// on the write-behind queue.
    pub fn load(&self, key: &LandscapeKey) -> Option<ShapedLandscape> {
        let metrics = store_metrics();
        let bytes = match std::fs::read(self.entry_path(key)) {
            Ok(bytes) => bytes,
            Err(e) => {
                if e.kind() != ErrorKind::NotFound {
                    // Unreadable is indistinguishable from absent for
                    // correctness, but worth counting as corruption.
                    metrics.corrupt_entries.inc();
                }
                metrics.misses.inc();
                return None;
            }
        };
        match decode_entry(key, &bytes) {
            Ok(landscape) => {
                metrics.hits.inc();
                Some(landscape)
            }
            Err(DecodeError::KeyMismatch) => {
                // A filename-hash collision with a *valid* foreign
                // entry: not corruption, just not our landscape.
                metrics.misses.inc();
                None
            }
            Err(DecodeError::Corrupt) => {
                metrics.corrupt_entries.inc();
                metrics.misses.inc();
                None
            }
        }
    }

    /// Enqueues `landscape` for write-behind under `key` and returns
    /// immediately; the writer thread encodes and writes it. Dropped
    /// silently (counting `store.write_errors`) if the store is
    /// shutting down.
    pub fn save(&self, key: &LandscapeKey, landscape: &Arc<ShapedLandscape>) {
        let sent = match lock(&self.tx).as_ref() {
            Some(tx) => tx
                .send(WriteReq::Entry {
                    key: *key,
                    landscape: Arc::clone(landscape),
                })
                .is_ok(),
            None => false,
        };
        if !sent {
            store_metrics().write_errors.inc();
        }
    }

    /// Blocks until every previously enqueued write has been written
    /// (or failed, counting `store.write_errors`). Call before
    /// measuring a warm run or comparing directory contents; process
    /// exit via drop flushes too.
    pub fn flush(&self) {
        let tx = lock(&self.tx).clone();
        if let Some(tx) = tx {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(WriteReq::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }
}

impl Drop for LandscapeStore {
    fn drop(&mut self) {
        // Closing the channel ends the writer loop after it drains the
        // queue; joining guarantees every accepted write is durable
        // before the process can exit.
        *lock(&self.tx) = None;
        let writer = lock(&self.writer).take();
        if let Some(writer) = writer {
            let _ = writer.join();
        }
    }
}

/// Encodes and writes one entry: temp file + atomic rename, so a
/// concurrent reader (or a crash) never sees a partial entry.
fn write_entry(dir: &Path, key: &LandscapeKey, landscape: &ShapedLandscape) {
    let metrics = store_metrics();
    let bytes = encode_entry(key, landscape);
    let hash = key.store_hash();
    let tmp = dir.join(format!("{hash:032x}.tmp"));
    let path = dir.join(format!("{hash:032x}.{EXT}"));
    let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
    match result {
        Ok(()) => metrics.writes.inc(),
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
            metrics.write_errors.inc();
        }
    }
}

/// Serializes one entry per the module-level format table.
fn encode_entry(key: &LandscapeKey, landscape: &ShapedLandscape) -> Vec<u8> {
    let (kind, axes): (u8, Vec<Axis>) = match landscape {
        ShapedLandscape::Grid2d(l) => (0, vec![l.grid().beta, l.grid().gamma]),
        ShapedLandscape::Tensor(l) => (1, l.shape().axes().to_vec()),
    };
    let values = landscape.values();
    let mut out = Vec::with_capacity(FIXED_HEADER + axes.len() * 24 + 8 + values.len() * 8 + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&key.encode());
    out.push(kind);
    out.extend_from_slice(&(axes.len() as u64).to_le_bytes());
    for axis in &axes {
        out.extend_from_slice(&axis.lo.to_bits().to_le_bytes());
        out.extend_from_slice(&axis.hi.to_bits().to_le_bytes());
        out.extend_from_slice(&(axis.n as u64).to_le_bytes());
    }
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    out.extend_from_slice(&f64s_to_le_bytes(values));
    let mut h = Fingerprint::new();
    h.write_bytes(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Why an entry failed to decode.
enum DecodeError {
    /// Structurally invalid: counts `store.corrupt_entries`.
    Corrupt,
    /// A valid entry for a different key (filename-hash collision).
    KeyMismatch,
}

/// Bounded little-endian reader over an entry body; every read is
/// length-checked so malformed entries can never index out of bounds.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(chunk)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Some(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Option<u64> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Some(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

/// Validates and decodes one entry for `key`. Pure; every failure path
/// returns an error instead of panicking.
fn decode_entry(key: &LandscapeKey, bytes: &[u8]) -> Result<ShapedLandscape, DecodeError> {
    // Structure: verify the envelope (length, magic, version, checksum)
    // before trusting any field past the fixed header.
    if bytes.len() < FIXED_HEADER + CHECKSUM {
        return Err(DecodeError::Corrupt);
    }
    let (body, sum) = bytes.split_at(bytes.len() - CHECKSUM);
    let mut h = Fingerprint::new();
    h.write_bytes(body);
    if h.finish().to_le_bytes() != sum {
        return Err(DecodeError::Corrupt);
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(8) != Some(&MAGIC) {
        return Err(DecodeError::Corrupt);
    }
    if r.u32() != Some(VERSION) {
        return Err(DecodeError::Corrupt);
    }
    if r.take(72) != Some(&key.encode()[..]) {
        return Err(DecodeError::KeyMismatch);
    }
    let kind = r.u8().ok_or(DecodeError::Corrupt)?;
    let rank = r.u64().ok_or(DecodeError::Corrupt)?;
    // A rank beyond any real workload is corruption, and bounding it
    // keeps a bit-flipped header from driving a huge axis loop.
    if rank == 0 || rank > 64 {
        return Err(DecodeError::Corrupt);
    }
    let mut axes = Vec::with_capacity(rank as usize);
    let mut expected_len: usize = 1;
    for _ in 0..rank {
        let lo = r.f64().ok_or(DecodeError::Corrupt)?;
        let hi = r.f64().ok_or(DecodeError::Corrupt)?;
        let n = r.u64().ok_or(DecodeError::Corrupt)?;
        // The Axis contract (`lo < hi`, `n >= 2`), checked here so the
        // plain struct construction below can never build an invalid
        // axis from corrupt bytes.
        if !(lo.is_finite() && hi.is_finite() && lo < hi) || n < 2 {
            return Err(DecodeError::Corrupt);
        }
        let n = usize::try_from(n).map_err(|_| DecodeError::Corrupt)?;
        expected_len = expected_len.checked_mul(n).ok_or(DecodeError::Corrupt)?;
        axes.push(Axis { lo, hi, n });
    }
    let count = r.u64().ok_or(DecodeError::Corrupt)?;
    if count != expected_len as u64 {
        return Err(DecodeError::Corrupt);
    }
    let payload = r.take(expected_len.checked_mul(8).ok_or(DecodeError::Corrupt)?);
    let values = payload
        .and_then(f64s_from_le_bytes)
        .ok_or(DecodeError::Corrupt)?;
    // Trailing garbage between payload and checksum is also corruption.
    if r.pos != body.len() {
        return Err(DecodeError::Corrupt);
    }
    match kind {
        0 if axes.len() == 2 => {
            let grid = Grid2d {
                beta: axes[0],
                gamma: axes[1],
            };
            Ok(Landscape::from_values(grid, values).into())
        }
        1 => Ok(NdLandscape::from_values(TensorShape::new(axes), values).into()),
        _ => Err(DecodeError::Corrupt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::grid::Shape;
    use oscar_problems::ising::IsingProblem;
    use oscar_problems::workload::ProblemInstance;

    fn test_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("oscar-store-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (LandscapeKey, Arc<ShapedLandscape>) {
        let problem = ProblemInstance::ising(IsingProblem::mesh(2, 3), 1);
        let grid = oscar_core::grid::Grid2d::small_p1(6, 8);
        let shape = Shape::Grid2d(grid);
        let key = LandscapeKey::exact(&problem, &shape);
        let landscape: ShapedLandscape =
            Landscape::generate(grid, |b, g| (3.0 * b).sin() * g + b).into();
        (key, Arc::new(landscape))
    }

    fn entry_file(dir: &Path) -> PathBuf {
        let mut entries: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == EXT))
            .collect();
        assert_eq!(entries.len(), 1, "expected exactly one entry in {dir:?}");
        entries.pop().unwrap()
    }

    #[test]
    fn save_flush_load_roundtrip_is_bit_exact() {
        let dir = test_dir("roundtrip");
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, landscape) = sample();
        assert!(store.load(&key).is_none(), "cold store must miss");
        store.save(&key, &landscape);
        store.flush();
        let back = store.load(&key).expect("warm store must hit");
        assert_eq!(back.shape(), landscape.shape());
        let bits = |l: &ShapedLandscape| l.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&landscape));
        drop(store);
        // A fresh handle over the same directory (a "restart") hits too.
        let reopened = LandscapeStore::open(&dir).unwrap();
        let again = reopened.load(&key).expect("reopened store must hit");
        assert_eq!(bits(&again), bits(&landscape));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tensor_entries_roundtrip() {
        let dir = test_dir("tensor");
        let store = LandscapeStore::open(&dir).unwrap();
        let problem = ProblemInstance::ising(IsingProblem::mesh(2, 2), 2);
        let shape = Shape::qaoa(2, 3, 4);
        let key = LandscapeKey::exact(&problem, &shape);
        let Shape::Tensor(tensor) = &shape else {
            unreachable!("qaoa(2, ..) is tensor-shaped")
        };
        let landscape: Arc<ShapedLandscape> = Arc::new(
            NdLandscape::generate_indexed_par(tensor.clone(), |i, p| i as f64 + p[0]).into(),
        );
        store.save(&key, &landscape);
        store.flush();
        let back = store.load(&key).expect("tensor entry must load");
        assert_eq!(back.shape(), shape);
        assert_eq!(back.values(), landscape.values());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes_pending_writes() {
        let dir = test_dir("drop-flush");
        {
            let store = LandscapeStore::open(&dir).unwrap();
            let (key, landscape) = sample();
            store.save(&key, &landscape);
            // No explicit flush: drop must drain the queue.
        }
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, _) = sample();
        assert!(store.load(&key).is_some(), "drop must flush the write");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The corruption matrix: every damaged form of a valid entry must
    /// open as a clean miss and count `store.corrupt_entries`.
    #[test]
    fn corruption_matrix_degrades_to_misses() {
        let dir = test_dir("matrix");
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, landscape) = sample();
        store.save(&key, &landscape);
        store.flush();
        let path = entry_file(&dir);
        let pristine = std::fs::read(&path).unwrap();

        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("zero-length file", Vec::new()),
            ("truncated header", pristine[..40].to_vec()),
            (
                "truncated payload",
                pristine[..pristine.len() - 24].to_vec(),
            ),
            ("bit-flipped checksum", {
                let mut b = pristine.clone();
                let last = b.len() - 1;
                b[last] ^= 0x01;
                b
            }),
            ("bit-flipped payload byte", {
                let mut b = pristine.clone();
                b[FIXED_HEADER + 60] ^= 0x80;
                b
            }),
            ("wrong magic", {
                let mut b = pristine.clone();
                b[0] = b'X';
                b
            }),
            ("unknown version", {
                let mut b = pristine.clone();
                b[8..12].copy_from_slice(&99u32.to_le_bytes());
                b
            }),
        ];
        for (name, mutated) in cases {
            std::fs::write(&path, &mutated).unwrap();
            let before = store_stats();
            assert!(store.load(&key).is_none(), "{name} must be a miss");
            let after = store_stats();
            assert!(
                after.corrupt_entries > before.corrupt_entries,
                "{name} must count store.corrupt_entries"
            );
            assert!(after.misses > before.misses, "{name} must count a miss");
        }

        // The pristine bytes still load (the matrix damaged copies).
        std::fs::write(&path, &pristine).unwrap();
        assert!(store.load(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_version_with_valid_checksum_is_still_rejected() {
        // A future-format entry whose checksum is internally consistent
        // must still read as a miss for this version of the code.
        let dir = test_dir("future-version");
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, landscape) = sample();
        store.save(&key, &landscape);
        store.flush();
        let path = entry_file(&dir);
        let bytes = std::fs::read(&path).unwrap();
        let mut body = bytes[..bytes.len() - CHECKSUM].to_vec();
        body[8..12].copy_from_slice(&2u32.to_le_bytes());
        let mut h = Fingerprint::new();
        h.write_bytes(&body);
        body.extend_from_slice(&h.finish().to_le_bytes());
        std::fs::write(&path, &body).unwrap();
        let before = store_stats();
        assert!(store.load(&key).is_none());
        assert!(store_stats().corrupt_entries > before.corrupt_entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_a_miss_not_corruption() {
        let dir = test_dir("key-mismatch");
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, landscape) = sample();
        store.save(&key, &landscape);
        store.flush();
        // Rename the (valid) entry to another key's filename: the open
        // verifies the embedded key block and must refuse to serve it.
        let other_problem = ProblemInstance::ising(IsingProblem::mesh(3, 3), 1);
        let other = LandscapeKey::exact(
            &other_problem,
            &Shape::Grid2d(oscar_core::grid::Grid2d::small_p1(6, 8)),
        );
        let from = entry_file(&dir);
        let to = dir.join(format!("{:032x}.{EXT}", other.store_hash()));
        std::fs::rename(&from, &to).unwrap();
        let before = store_stats();
        assert!(store.load(&other).is_none());
        let after = store_stats();
        assert!(after.misses > before.misses);
        assert_eq!(
            after.corrupt_entries, before.corrupt_entries,
            "a foreign valid entry is not corruption"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writes_count_and_write_errors_never_panic() {
        let dir = test_dir("counters");
        let store = LandscapeStore::open(&dir).unwrap();
        let (key, landscape) = sample();
        let before = store_stats();
        store.save(&key, &landscape);
        store.flush();
        assert!(store_stats().writes > before.writes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
