//! Bounded LRU caching for landscapes (and anything else hashable).
//!
//! A batch of reconstruction jobs frequently revisits the same
//! `(problem, grid, seed)` triple — parameter sweeps vary the sampling
//! seed or solver config while the ground-truth landscape (a full grid
//! of circuit evaluations, by far the most expensive pipeline stage)
//! stays fixed. [`LandscapeCache`] dedupes those repeats behind a
//! bounded [`LruCache`].

use crate::source::LandscapeSource;
use oscar_core::grid::Shape;
use oscar_core::landscape::ShapedLandscape;
use oscar_problems::ising::IsingKind;
use oscar_problems::workload::ProblemInstance;
use oscar_qsim::fingerprint::{tag, Fingerprint};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

struct Slot<V> {
    value: V,
    last_used: u64,
}

/// A bounded least-recently-used map. Simple by intent: recency is a
/// monotonic tick per access and eviction scans for the minimum, which
/// is O(len) — fine for the small capacities a landscape cache uses
/// (tens of entries, each worth milliseconds-to-seconds of recompute).
pub struct LruCache<K: Eq + Hash + Clone, V: Clone> {
    capacity: usize,
    map: HashMap<K, Slot<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("capacity", &self.capacity)
            .field("len", &self.map.len())
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let found = self.get_untracked(key);
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Like [`Self::get`] but without touching the hit/miss counters —
    /// for callers that retry one logical lookup several times (e.g.
    /// waiting out another thread's in-flight computation) and account
    /// for it themselves.
    pub fn get_untracked(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.last_used = tick;
            slot.value.clone()
        })
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry
    /// when the cache is full and `key` is new (the evicted key is
    /// returned so callers can attribute the eviction). An existing key
    /// is overwritten (and refreshed) without eviction.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.value = value;
            slot.last_used = tick;
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                // lint:allow(map-iteration): `last_used` ticks are
                // unique and strictly increasing, so the minimum is a
                // single well-defined entry whatever the hash order.
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
                evicted = Some(oldest);
            }
        }
        self.map.insert(
            key,
            Slot {
                value,
                last_used: tick,
            },
        );
        evicted
    }

    /// `true` when `key` is resident (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Cache key for a ground-truth landscape: a fingerprint of the problem
/// instance (couplings and depth for QAOA, the molecule for VQE), the
/// exact landscape shape, the landscape source, the generation seed,
/// and the mitigation applied on top.
///
/// Every fingerprint field is a process-stable 128-bit digest
/// (FNV-1a-128 over the canonical encoding, [`oscar_qsim::fingerprint`])
/// — the same key identifies an entry in the in-memory LRU and in the
/// persistent on-disk store ([`crate::store::LandscapeStore`]), across
/// restarts and toolchain upgrades.
///
/// The source fingerprint ([`LandscapeSource::fingerprint`]) keeps exact
/// and noisy entries — and noisy entries from different devices — from
/// ever colliding. For the [`LandscapeSource::Exact`] source the seed is
/// **normalized to 0**: exact evaluation ignores `landscape_seed`, so
/// two exact jobs differing only there would otherwise fill the cache
/// with duplicate identical landscapes (each a full grid of circuit
/// evaluations) and recompute what is already resident.
///
/// The mitigation fingerprint
/// ([`crate::mitigation::Mitigation::fingerprint`]) separates the
/// *mitigated* landscape a job's stage 2 consumes from the raw landscape
/// of the same `(device, seed)` — they are different fields and must
/// share nothing — while ZNE's per-factor sub-landscapes get raw keys of
/// *scaled* sources ([`Self::zne_factor`]) so they are shared by every
/// job that measures the same factor.
#[derive(Clone, Copy, Debug)]
pub struct LandscapeKey {
    problem: u128,
    shape: u128,
    source: u128,
    seed: u64,
    mitigation: u128,
    /// Telemetry label only — see [`KeyClass`]. Deliberately excluded
    /// from equality and hashing: a ZNE factor-1.0 key must keep
    /// sharing the raw noisy entry even though the two requests carry
    /// different class labels.
    class: KeyClass,
}

impl PartialEq for LandscapeKey {
    fn eq(&self, other: &Self) -> bool {
        self.problem == other.problem
            && self.shape == other.shape
            && self.source == other.source
            && self.seed == other.seed
            && self.mitigation == other.mitigation
    }
}

impl Eq for LandscapeKey {}

impl Hash for LandscapeKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.problem.hash(state);
        self.shape.hash(state);
        self.source.hash(state);
        self.seed.hash(state);
        self.mitigation.hash(state);
    }
}

/// The source class of a [`LandscapeKey`], used to label cache
/// telemetry (`cache.hits.<class>` etc. in the obs registry). Purely
/// an attribution tag for the *requesting* lookup: it never enters key
/// identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyClass {
    /// Raw exact (noiseless) landscape.
    Exact,
    /// Raw noisy-device landscape.
    Noisy,
    /// One ZNE scale factor's sub-landscape.
    ZneFactor,
    /// A fully mitigated landscape (nonzero mitigation fingerprint).
    Mitigated,
}

impl KeyClass {
    /// Every class, registry order.
    pub const ALL: [KeyClass; 4] = [
        KeyClass::Exact,
        KeyClass::Noisy,
        KeyClass::ZneFactor,
        KeyClass::Mitigated,
    ];

    /// The class's metric-name suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            KeyClass::Exact => "exact",
            KeyClass::Noisy => "noisy",
            KeyClass::ZneFactor => "zne_factor",
            KeyClass::Mitigated => "mitigated",
        }
    }

    fn index(self) -> usize {
        match self {
            KeyClass::Exact => 0,
            KeyClass::Noisy => 1,
            KeyClass::ZneFactor => 2,
            KeyClass::Mitigated => 3,
        }
    }
}

/// Per-class landscape-cache counters (`cache.*` in the obs registry),
/// resolved once; every update is one relaxed atomic add.
struct CacheMetrics {
    hits: [oscar_obs::Counter; 4],
    misses: [oscar_obs::Counter; 4],
    evictions: [oscar_obs::Counter; 4],
    dedup_waits: [oscar_obs::Counter; 4],
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = oscar_obs::Registry::global();
        let family = |kind: &str| {
            KeyClass::ALL.map(|class| registry.counter(&format!("cache.{kind}.{}", class.as_str())))
        };
        CacheMetrics {
            hits: family("hits"),
            misses: family("misses"),
            evictions: family("evictions"),
            dedup_waits: family("dedup_waits"),
        }
    })
}

impl LandscapeKey {
    /// Builds the key for a raw (unmitigated) landscape of
    /// `(problem, shape, source, landscape_seed)`.
    pub fn new(
        problem: &ProblemInstance,
        shape: &Shape,
        source: &LandscapeSource,
        landscape_seed: u64,
    ) -> Self {
        LandscapeKey {
            problem: problem_fingerprint(problem),
            shape: shape_fingerprint(shape),
            source: source.fingerprint(),
            // Exact evaluation is seed-independent; see the type docs.
            seed: if source.is_exact() { 0 } else { landscape_seed },
            mitigation: 0,
            class: if source.is_exact() {
                KeyClass::Exact
            } else {
                KeyClass::Noisy
            },
        }
    }

    /// The key of the *mitigated* landscape: [`Self::new`] with the
    /// mitigation fingerprint folded in (`0` restates the raw key, so a
    /// normalized-to-`None` mitigation shares the raw entry).
    pub fn mitigated(
        problem: &ProblemInstance,
        shape: &Shape,
        source: &LandscapeSource,
        landscape_seed: u64,
        mitigation: u128,
    ) -> Self {
        let base = LandscapeKey::new(problem, shape, source, landscape_seed);
        LandscapeKey {
            mitigation,
            // Fingerprint 0 restates the raw key, so it keeps the raw
            // class label too.
            class: if mitigation == 0 {
                base.class
            } else {
                KeyClass::Mitigated
            },
            ..base
        }
    }

    /// The key of one ZNE scale factor's sub-landscape: a *raw* key
    /// whose source fingerprint is the scaled source
    /// ([`LandscapeSource::scaled_fingerprint`]). Scale `1.0` restates
    /// the plain raw key, so the factor-1 entry is shared with
    /// unmitigated jobs over the same device and seed.
    pub fn zne_factor(
        problem: &ProblemInstance,
        shape: &Shape,
        source: &LandscapeSource,
        landscape_seed: u64,
        scale: f64,
    ) -> Self {
        LandscapeKey {
            source: source.scaled_fingerprint(scale),
            class: KeyClass::ZneFactor,
            ..LandscapeKey::new(problem, shape, source, landscape_seed)
        }
    }

    /// The key for an exact noiseless landscape of `(problem, shape)`.
    pub fn exact(problem: &ProblemInstance, shape: &Shape) -> Self {
        LandscapeKey::new(problem, shape, &LandscapeSource::Exact, 0)
    }

    /// The telemetry class this key was requested under.
    pub fn class(&self) -> KeyClass {
        self.class
    }

    /// Canonical byte encoding of the key identity (the `class` label
    /// is excluded, exactly like equality): problem, shape, source,
    /// mitigation as `u128` little-endian, then the seed as `u64`
    /// little-endian — 72 bytes. This is both the on-disk key block a
    /// store entry carries and the input of [`Self::store_hash`].
    pub(crate) fn encode(&self) -> [u8; 72] {
        let mut out = [0u8; 72];
        out[0..16].copy_from_slice(&self.problem.to_le_bytes());
        out[16..32].copy_from_slice(&self.shape.to_le_bytes());
        out[32..48].copy_from_slice(&self.source.to_le_bytes());
        out[48..64].copy_from_slice(&self.mitigation.to_le_bytes());
        out[64..72].copy_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// The store filename hash: FNV-1a-128 of `tag::STORE_KEY` + the
    /// canonical key bytes. Collisions are astronomically unlikely, and
    /// harmless anyway: the store verifies the full key block on open
    /// and treats a mismatch as a miss.
    pub(crate) fn store_hash(&self) -> u128 {
        let mut h = Fingerprint::new();
        h.write_u8(tag::STORE_KEY);
        h.write_bytes(&self.encode());
        h.finish()
    }
}

/// Stable 128-bit fingerprint of a problem instance
/// ([`oscar_qsim::fingerprint`], process-stable). For QAOA: a kind tag
/// byte (`tag::MAXCUT`/`tag::SK_MODEL` — no per-lookup `format!`
/// allocation), depth, vertex count, then the edge count and the exact
/// edge list including weight bit patterns. For molecules:
/// `tag::MOLECULE` plus the molecule name (the Hamiltonian and ansatz
/// are fixed by it).
pub fn problem_fingerprint(problem: &ProblemInstance) -> u128 {
    let mut h = Fingerprint::new();
    match problem {
        ProblemInstance::Ising { problem, depth } => {
            h.write_u8(match problem.kind() {
                IsingKind::MaxCut => tag::MAXCUT,
                IsingKind::SherringtonKirkpatrick => tag::SK_MODEL,
            });
            h.write_usize(*depth);
            h.write_usize(problem.num_qubits());
            let edges = problem.graph().edges();
            h.write_usize(edges.len());
            for &(a, b, w) in edges {
                h.write_usize(a);
                h.write_usize(b);
                h.write_f64(w);
            }
        }
        ProblemInstance::Molecule(m) => {
            h.write_u8(tag::MOLECULE);
            h.write_str(m.name());
        }
    }
    h.finish()
}

/// Stable 128-bit fingerprint of a landscape shape: a variant tag plus
/// the axis count and every axis's exact bounds (bit patterns) and
/// point count, so a 2-D grid and a rank-2 tensor over the same ranges
/// never collide.
fn shape_fingerprint(shape: &Shape) -> u128 {
    let mut h = Fingerprint::new();
    fn write_axes(h: &mut Fingerprint, axes: &[oscar_core::grid::Axis]) {
        h.write_usize(axes.len());
        for axis in axes {
            h.write_f64(axis.lo);
            h.write_f64(axis.hi);
            h.write_usize(axis.n);
        }
    }
    match shape {
        Shape::Grid2d(grid) => {
            h.write_u8(tag::GRID2D);
            write_axes(&mut h, &[grid.beta, grid.gamma]);
        }
        Shape::Tensor(tensor) => {
            h.write_u8(tag::TENSOR);
            write_axes(&mut h, tensor.axes());
        }
    }
    h.finish()
}

/// A thread-safe bounded LRU of ground-truth landscapes, shared by
/// every executor of a [`crate::scheduler::BatchRuntime`].
///
/// Values are `Arc<ShapedLandscape>`, so a hit costs one reference bump and
/// concurrent jobs read the same buffer. Misses are deduplicated
/// in-flight: when several executors request the same key at once (the
/// common shape of a batch sweeping sampling seeds over one instance),
/// exactly one computes while the rest wait for its result — repeat
/// sampling requests never duplicate the expensive grid evaluation.
///
/// Panic-hardened: the internal mutexes guard plain map/set state that
/// every lock/unlock leaves valid, so a worker that panicked while
/// holding one (its own job is already lost) poisons nothing for the
/// rest of the batch — poisoned guards are recovered
/// (`PoisonError::into_inner`) instead of cascading the panic into
/// every later lookup.
pub struct LandscapeCache {
    inner: Mutex<LruCache<LandscapeKey, Arc<ShapedLandscape>>>,
    /// Keys currently being computed by some thread.
    pending: Mutex<HashSet<LandscapeKey>>,
    /// Signaled whenever a pending computation finishes (or unwinds).
    pending_cv: Condvar,
    /// One hit or miss per [`Self::get_or_compute`] call, counted here
    /// rather than in the LRU so a waiter's retries are not
    /// double-counted: a call is a miss iff it ran the producer.
    hits: AtomicU64,
    misses: AtomicU64,
    /// Optional disk tier probed on in-memory misses; fresh landscapes
    /// are written behind ([`crate::store::LandscapeStore`]).
    store: Option<Arc<crate::store::LandscapeStore>>,
}

impl std::fmt::Debug for LandscapeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LandscapeCache").finish_non_exhaustive()
    }
}

/// Locks `m`, recovering from poison — shared by this crate's caches
/// and the scheduler queue (see [`LandscapeCache`]'s panic-hardening
/// note: every guarded structure is valid after any unwind).
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Removes the claim on unwind too, so a panicking producer does not
/// strand its waiters.
struct PendingClaim<'a> {
    cache: &'a LandscapeCache,
    key: LandscapeKey,
}

impl Drop for PendingClaim<'_> {
    fn drop(&mut self) {
        lock(&self.cache.pending).remove(&self.key);
        self.cache.pending_cv.notify_all();
    }
}

impl LandscapeCache {
    /// Creates a cache bounded to `capacity` landscapes, with no disk
    /// tier.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        LandscapeCache::with_store(capacity, None)
    }

    /// Creates a cache bounded to `capacity` landscapes, backed by an
    /// optional persistent [`crate::store::LandscapeStore`] tier: an
    /// in-memory miss first probes the store, and freshly computed
    /// landscapes are written behind without blocking the caller.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_store(capacity: usize, store: Option<Arc<crate::store::LandscapeStore>>) -> Self {
        LandscapeCache {
            inner: Mutex::new(LruCache::new(capacity)),
            pending: Mutex::new(HashSet::new()),
            pending_cv: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            store,
        }
    }

    /// Returns the cached landscape for `key`, or computes it with
    /// `produce` and caches the result. The second return value is
    /// `true` whenever the producer did *not* run: an in-memory hit,
    /// waiting out another thread's in-flight computation of the same
    /// key, or a disk-tier hit when a store is attached. [`Self::stats`]
    /// counts the in-memory tier only (a disk hit still counts an
    /// in-memory miss there); the disk tier reports through the
    /// `store.*` metrics ([`crate::store::store_stats`]).
    pub fn get_or_compute(
        &self,
        key: LandscapeKey,
        produce: impl FnOnce() -> ShapedLandscape,
    ) -> (Arc<ShapedLandscape>, bool) {
        let metrics = cache_metrics();
        let class = key.class.index();
        let mut waited = false;
        loop {
            if let Some(hit) = lock(&self.inner).get_untracked(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics.hits[class].inc();
                return (hit, true);
            }
            {
                let mut pending = lock(&self.pending);
                // Re-check the cache under the pending lock: a producer
                // inserts its value *before* releasing its claim (which
                // needs this lock), so if the key is neither cached nor
                // pending here, no producer exists and we safely become
                // one. Without this, a producer finishing between our
                // probe and this point would let us recompute the value.
                if let Some(hit) = lock(&self.inner).get_untracked(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    metrics.hits[class].inc();
                    return (hit, true);
                }
                if pending.contains(&key) {
                    // Another thread is computing this key: wait for it
                    // and re-check the cache (on the rare eviction before
                    // we reread, we loop around and become the producer).
                    if !waited {
                        // One logical dedup event per call, however many
                        // wakeups the wait takes.
                        metrics.dedup_waits[class].inc();
                        waited = true;
                    }
                    let _g = self
                        .pending_cv
                        .wait(pending)
                        .unwrap_or_else(PoisonError::into_inner);
                    continue;
                }
                pending.insert(key);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            metrics.misses[class].inc();
            let claim = PendingClaim { cache: self, key };
            // Disk tier: only the claim winner probes, so a batch of
            // waiters costs one read. A disk hit is promoted into the
            // LRU and reported as a hit — the producer never ran.
            if let Some(from_disk) = self.store.as_ref().and_then(|s| s.load(&key)) {
                let value = Arc::new(from_disk);
                if let Some(evicted) = lock(&self.inner).insert(key, Arc::clone(&value)) {
                    metrics.evictions[evicted.class.index()].inc();
                }
                drop(claim);
                return (value, true);
            }
            // Compute outside the locks: landscape generation is the
            // heavy stage and runs data-parallel on the worker pool;
            // holding a cache lock would serialize unrelated jobs.
            let fresh = Arc::new(produce());
            if let Some(store) = &self.store {
                // Write-behind: enqueue and move on, the store's writer
                // thread does the disk work.
                store.save(&key, &fresh);
            }
            if let Some(evicted) = lock(&self.inner).insert(key, Arc::clone(&fresh)) {
                // Attribute the eviction to the class of the entry that
                // was displaced, not the one being inserted.
                metrics.evictions[evicted.class.index()].inc();
            }
            drop(claim);
            return (fresh, false);
        }
    }

    /// Counter snapshot: hits/misses are per [`Self::get_or_compute`]
    /// call (a call is a miss iff it ran the producer); len, capacity
    /// and evictions come from the underlying LRU.
    pub fn stats(&self) -> CacheStats {
        let mut stats = lock(&self.inner).stats();
        stats.hits = self.hits.load(Ordering::Relaxed);
        stats.misses = self.misses.load(Ordering::Relaxed);
        stats
    }

    /// Drops every cached landscape.
    pub fn clear(&self) {
        lock(&self.inner).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_problems::ising::IsingProblem;

    #[test]
    fn hit_returns_inserted_value() {
        let mut lru: LruCache<u32, String> = LruCache::new(4);
        lru.insert(1, "one".into());
        lru.insert(2, "two".into());
        assert_eq!(lru.get(&1).as_deref(), Some("one"));
        assert_eq!(lru.get(&3), None);
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 2));
    }

    #[test]
    fn eviction_removes_least_recently_used() {
        let mut lru: LruCache<u32, u32> = LruCache::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        // Touch 1 and 3 so 2 is the LRU entry.
        assert!(lru.get(&1).is_some());
        assert!(lru.get(&3).is_some());
        lru.insert(4, 40);
        assert!(!lru.contains(&2), "LRU entry must be evicted");
        assert!(lru.contains(&1) && lru.contains(&3) && lru.contains(&4));
        assert_eq!(lru.stats().evictions, 1);
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut lru: LruCache<u32, u32> = LruCache::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // overwrite, no eviction
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get(&1), Some(11));
        // 2 is now LRU (1 was refreshed by overwrite + get).
        lru.insert(3, 30);
        assert!(!lru.contains(&2));
    }

    #[test]
    fn capacity_one_always_holds_newest() {
        let mut lru: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            lru.insert(i, i);
            assert_eq!(lru.get(&i), Some(i));
        }
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.stats().evictions, 9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _: LruCache<u8, u8> = LruCache::new(0);
    }

    fn ising(problem: IsingProblem) -> ProblemInstance {
        ProblemInstance::ising(problem, 1)
    }

    fn grid_shape(nb: usize, ng: usize) -> Shape {
        Shape::Grid2d(oscar_core::grid::Grid2d::small_p1(nb, ng))
    }

    #[test]
    fn landscape_keys_separate_problems_shapes_depths_and_seeds() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let raw1 = IsingProblem::random_3_regular(8, &mut rng);
        let p1 = ising(raw1.clone());
        let p2 = ising(IsingProblem::random_3_regular(8, &mut rng));
        let g1 = grid_shape(10, 12);
        let g2 = grid_shape(10, 14);
        let base = LandscapeKey::exact(&p1, &g1);
        assert_eq!(base, LandscapeKey::exact(&p1, &g1));
        assert_ne!(base, LandscapeKey::exact(&p2, &g1));
        assert_ne!(base, LandscapeKey::exact(&p1, &g2));
        // Depth is part of the problem identity.
        let deep = ProblemInstance::ising(raw1, 2);
        assert_ne!(base, LandscapeKey::exact(&deep, &g1));
        // Molecules never collide with Ising instances, and tensor
        // shapes never collide with 2-D grids.
        use oscar_problems::workload::Molecule;
        let h2 = ProblemInstance::molecule(Molecule::H2);
        let scan = Shape::vqe_scan(&[5, 5, 5]);
        let vqe = LandscapeKey::exact(&h2, &scan);
        assert_ne!(vqe, base);
        assert_ne!(
            vqe,
            LandscapeKey::exact(&ProblemInstance::molecule(Molecule::LiH), &scan)
        );
        assert_ne!(vqe, LandscapeKey::exact(&h2, &Shape::vqe_scan(&[5, 5, 6])));
    }

    #[test]
    fn exact_keys_normalize_landscape_seed_noisy_keys_keep_it() {
        use oscar_executor::device::DeviceSpec;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let p = ising(IsingProblem::random_3_regular(8, &mut rng));
        let g = grid_shape(10, 12);
        let exact = LandscapeSource::Exact;
        // Exact evaluation ignores the seed, so the key must too.
        assert_eq!(
            LandscapeKey::new(&p, &g, &exact, 0),
            LandscapeKey::new(&p, &g, &exact, 99)
        );
        // Noisy sources keep the seed (distinct noise realizations) and
        // never collide with exact keys or with other devices.
        let perth = LandscapeSource::noisy(DeviceSpec::by_name("ibm perth").unwrap());
        let lagos = LandscapeSource::noisy(DeviceSpec::by_name("ibm lagos").unwrap());
        let n0 = LandscapeKey::new(&p, &g, &perth, 0);
        assert_ne!(n0, LandscapeKey::new(&p, &g, &perth, 1));
        assert_ne!(n0, LandscapeKey::new(&p, &g, &exact, 0));
        assert_ne!(n0, LandscapeKey::new(&p, &g, &lagos, 0));
    }

    #[test]
    fn landscape_cache_dedupes_computation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let problem = IsingProblem::random_3_regular(6, &mut rng);
        let instance = ising(problem.clone());
        let grid = oscar_core::grid::Grid2d::small_p1(6, 8);
        let cache = LandscapeCache::new(4);
        let key = LandscapeKey::exact(&instance, &Shape::Grid2d(grid));
        let mut computes = 0;
        let (a, hit_a) = cache.get_or_compute(key, || {
            computes += 1;
            oscar_core::landscape::Landscape::from_qaoa(grid, &problem.qaoa_evaluator()).into()
        });
        let (b, hit_b) = cache.get_or_compute(key, || {
            computes += 1;
            oscar_core::landscape::Landscape::from_qaoa(grid, &problem.qaoa_evaluator()).into()
        });
        assert!(!hit_a && hit_b);
        assert_eq!(computes, 1, "second lookup must be served from cache");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_misses_compute_once() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut rng = StdRng::seed_from_u64(6);
        let problem = IsingProblem::random_3_regular(6, &mut rng);
        let grid = oscar_core::grid::Grid2d::small_p1(8, 10);
        let cache = Arc::new(LandscapeCache::new(4));
        let computes = Arc::new(AtomicUsize::new(0));
        let key = LandscapeKey::exact(&ising(problem.clone()), &Shape::Grid2d(grid));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let problem = problem.clone();
                std::thread::spawn(move || {
                    cache.get_or_compute(key, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        oscar_core::landscape::Landscape::from_qaoa(grid, &problem.qaoa_evaluator())
                            .into()
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            computes.load(Ordering::Relaxed),
            1,
            "in-flight dedup must collapse concurrent misses into one compute"
        );
        assert_eq!(results.iter().filter(|(_, hit)| !hit).count(), 1);
        for (l, _) in &results {
            assert!(Arc::ptr_eq(l, &results[0].0));
        }
    }

    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::panic::AssertUnwindSafe;
        let mut rng = StdRng::seed_from_u64(12);
        let problem = IsingProblem::random_3_regular(4, &mut rng);
        let grid = oscar_core::grid::Grid2d::small_p1(5, 5);
        let cache = LandscapeCache::new(2);
        // Poison both internal mutexes the way a dying worker would:
        // panic while holding the guard.
        for _ in 0..2 {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _g = lock(&cache.inner);
                panic!("worker died holding the LRU lock");
            }));
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _g = cache.pending.lock().unwrap_or_else(PoisonError::into_inner);
                panic!("worker died holding the pending lock");
            }));
        }
        // Every entry point must still work: compute, hit, stats, clear.
        let key = LandscapeKey::exact(&ising(problem.clone()), &Shape::Grid2d(grid));
        let (l, hit) = cache.get_or_compute(key, || {
            oscar_core::landscape::Landscape::from_qaoa(grid, &problem.qaoa_evaluator()).into()
        });
        assert!(!hit);
        assert_eq!(l.values().len(), 25);
        let (_, hit2) = cache.get_or_compute(key, || unreachable!("must be cached"));
        assert!(hit2, "cache must still serve hits after poisoning");
        assert_eq!(cache.stats().len, 1);
        cache.clear();
        assert_eq!(cache.stats().len, 0);
    }

    #[test]
    fn panicking_producer_does_not_strand_waiters() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let problem = IsingProblem::random_3_regular(4, &mut rng);
        let grid = oscar_core::grid::Grid2d::small_p1(6, 6);
        let cache = LandscapeCache::new(2);
        let key = LandscapeKey::exact(&ising(problem.clone()), &Shape::Grid2d(grid));
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(key, || panic!("producer died"));
        }));
        assert!(boom.is_err());
        // The pending claim must have been released: a retry computes.
        let (l, hit) = cache.get_or_compute(key, || {
            oscar_core::landscape::Landscape::from_qaoa(grid, &problem.qaoa_evaluator()).into()
        });
        assert!(!hit);
        assert_eq!(l.values().len(), 36);
    }

    /// Pins the 128-bit fingerprints of fixed inputs to their current
    /// values. These digests name entries in persistent stores
    /// ([`crate::store::LandscapeStore`]); any change here is a silent
    /// full-store invalidation for every user, so it must be a
    /// deliberate format bump, not an accidental refactor. (The old
    /// `DefaultHasher` scheme had no such guarantee: its output is
    /// explicitly unstable across releases and processes.)
    #[test]
    fn fingerprints_are_pinned_process_stable_constants() {
        use oscar_executor::device::DeviceSpec;
        use oscar_runtime_test_pins::*;

        // Problems: a deterministic mesh instance at two depths.
        let mesh = IsingProblem::mesh(2, 3);
        assert_eq!(
            problem_fingerprint(&ising(mesh.clone())),
            PROBLEM_MESH_2X3_D1
        );
        assert_eq!(
            problem_fingerprint(&ProblemInstance::ising(mesh, 2)),
            PROBLEM_MESH_2X3_D2
        );
        use oscar_problems::workload::Molecule;
        assert_eq!(
            problem_fingerprint(&ProblemInstance::molecule(Molecule::H2)),
            PROBLEM_H2
        );

        // Shapes: the reduced p=1 grid and a p=2 tensor.
        assert_eq!(shape_fingerprint(&grid_shape(6, 8)), SHAPE_GRID_6X8);
        assert_eq!(shape_fingerprint(&Shape::qaoa(2, 3, 4)), SHAPE_QAOA_P2_3X4);

        // Sources: exact is 0 by contract; a named device is pinned,
        // as is its unit-scale normalization and a scaled variant.
        let perth = LandscapeSource::noisy(DeviceSpec::by_name("ibm perth").unwrap());
        assert_eq!(LandscapeSource::Exact.fingerprint(), 0);
        assert_eq!(perth.fingerprint(), SOURCE_PERTH);
        assert_eq!(perth.scaled_fingerprint(1.0), SOURCE_PERTH);
        assert_eq!(perth.scaled_fingerprint(2.0), SOURCE_PERTH_SCALE2);

        // Mitigations: None normalizes to 0; ZNE over a noisy source is
        // pinned (and odd, by the `| 1` nonzero guarantee).
        assert_eq!(crate::mitigation::Mitigation::None.fingerprint(&perth), 0);
        let zne = crate::mitigation::Mitigation::zne_richardson().fingerprint(&perth);
        assert_eq!(zne, MITIGATION_ZNE_RICHARDSON_PERTH);
        assert_eq!(zne & 1, 1);
    }

    /// The pinned digests, kept out of the assertion bodies so a
    /// legitimate format bump updates one block.
    mod oscar_runtime_test_pins {
        pub const PROBLEM_MESH_2X3_D1: u128 = 0x8ecdad3752f8770c41e44cedd848a1c9;
        pub const PROBLEM_MESH_2X3_D2: u128 = 0x8f7646a2623ecd07bfd86ad1adb73566;
        pub const PROBLEM_H2: u128 = 0x8798fddec70c83fd4651279b2464835f;
        pub const SHAPE_GRID_6X8: u128 = 0xb2069332e33dd6d8c6d668626d47fa60;
        pub const SHAPE_QAOA_P2_3X4: u128 = 0x66123da1039ced146bd8c180ccfe9021;
        pub const SOURCE_PERTH: u128 = 0x1df1c674daa2fd148846f9a61b7ca9ff;
        pub const SOURCE_PERTH_SCALE2: u128 = 0xb5f20b591935991d28ba5d1777e3581a;
        pub const MITIGATION_ZNE_RICHARDSON_PERTH: u128 = 0x3a7a29364e7956333d7da314a001ded7;
    }
}
