//! # oscar-runtime — persistent runtime for streams of reconstructions
//!
//! PR 1 made a *single* reconstruction fast; this crate is the layer
//! that makes a *stream* of them fast. It amortizes three kinds of
//! state across jobs that the per-call pipeline used to rebuild every
//! time:
//!
//! * **Threads** — all data-parallel kernels run on the lazily
//!   initialized persistent worker pool in `oscar-par`
//!   ([`oscar_par::pool`]): chunk-stealing workers spawned once per
//!   process, shared by every concurrent job, zero spawn cost per
//!   parallel apply in steady state.
//! * **FFT/DCT plans** — twiddle tables (mixed-radix stage tables,
//!   Bluestein chirps) are cached per transform size
//!   ([`oscar_cs::plan_cache`]), so a batch of jobs at one grid side
//!   plans once, on the cheapest decomposition for that side.
//! * **Landscapes** — ground-truth landscapes (a full grid of circuit
//!   evaluations, the most expensive stage) live in a bounded LRU
//!   ([`cache::LandscapeCache`]) keyed by `(problem, shape, seed)`, so
//!   parameter sweeps that revisit an instance skip straight to
//!   reconstruction. An optional persistent disk tier
//!   ([`store::LandscapeStore`], [`scheduler::RuntimeConfig::store`])
//!   carries those landscapes across process restarts: keys are
//!   process-stable 128-bit fingerprints
//!   ([`oscar_qsim::fingerprint`]), entries are checksummed, and any
//!   corrupt entry degrades to a miss.
//!
//! Jobs are generic over both the **problem kind** — MaxCut or SK-model
//! QAOA at any depth, or molecular VQE (H2, LiH UCCSD ansätze) — and
//! the **landscape shape**: depth-1 QAOA runs on the paper's 2-D
//! `(beta, gamma)` grid, while deeper QAOA and VQE scans run on N-D
//! tensors ([`oscar_core::grid::Shape`]) through the same sampling,
//! mitigation, reconstruction, and descent stages
//! ([`job::JobSpec::shaped`]).
//!
//! On top sits the [`scheduler::BatchRuntime`]: a bounded-concurrency
//! batch scheduler with a submit/handle API — priority levels
//! ([`scheduler::Priority`]) with FIFO tie-break and cheap per-job
//! cancellation ([`scheduler::JobHandle::cancel`]) — that pipelines
//! *landscape sampling → mitigation → CS reconstruction →
//! optimization* per job ([`job::run_job`]) and drains many jobs
//! across the pool. Stage 1 runs through the spec's
//! [`source::LandscapeSource`]: exact noiseless simulation, or a noisy
//! simulated device whose per-point noise comes from a counter-based
//! RNG keyed by `(landscape_seed, point_index)`. The spec's
//! [`mitigation::Mitigation`] then post-processes the landscape (ZNE
//! with individually cached per-factor landscapes, readout inversion,
//! Gaussian smoothing), and [`descent::Descent`] selects the stage-3
//! optimizer (the full `oscar-optim` lineup, SPSA seeded from the job
//! seed). Results are deterministic along every axis: a
//! [`job::JobSpec`] fully determines its [`job::JobResult`],
//! bit-identical whether the job runs inline, alone, or interleaved
//! with dozens of others on any number of executors.
//!
//! The `oscar-batch` binary (in `oscar-bench`) drives this end to end
//! from a job-list file and reports per-job latency and aggregate
//! throughput.
//!
//! # Example
//!
//! ```
//! use oscar_runtime::job::JobSpec;
//! use oscar_runtime::scheduler::{BatchRuntime, RuntimeConfig};
//! use oscar_core::grid::Grid2d;
//! use oscar_problems::ising::IsingProblem;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let problem = IsingProblem::random_3_regular(6, &mut rng);
//! let runtime = BatchRuntime::new(RuntimeConfig {
//!     concurrency: 2,
//!     ..RuntimeConfig::default()
//! });
//! // Four sampling seeds over one instance: the ground-truth landscape
//! // is computed once and served from the cache three times.
//! let jobs = (0..4).map(|seed| {
//!     JobSpec::new(problem.clone(), Grid2d::small_p1(10, 12), 0.3, seed)
//! });
//! let results = runtime.run_batch(jobs).expect("no job panicked");
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.nrmse < 0.3));
//! // In-flight dedup: exactly one job computes the landscape, the
//! // other three hit (waiting out the computation counts as a hit).
//! assert!(runtime.cache_stats().hits >= 3);
//! assert_eq!(runtime.cache_stats().misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod descent;
pub mod job;
pub mod mitigation;
pub mod scheduler;
pub mod source;
pub mod store;

pub use cache::{CacheStats, KeyClass, LandscapeCache, LandscapeKey, LruCache};
pub use descent::Descent;
pub use job::{default_vqe_shape, run_job, JobResult, JobSpec};
pub use mitigation::{mitigated_landscape, Mitigation};
pub use scheduler::{
    BatchRuntime, JobHandle, JobLost, JobStatus, Priority, RuntimeConfig, SubmitOptions,
};
pub use source::LandscapeSource;
pub use store::{store_stats, LandscapeStore, StoreStats};
