//! Stage 1.5 of the job pipeline: error mitigation between landscape
//! generation and CS reconstruction.
//!
//! The paper's central comparison (Table 5, Figures 9–13) runs OSCAR on
//! *mitigated* noisy landscapes — ZNE-extrapolated, readout-corrected,
//! or smoothed — not just raw ones. [`Mitigation`] makes that a
//! first-class, deterministic axis of a [`crate::job::JobSpec`]:
//!
//! * [`Mitigation::Zne`] measures the landscape at every noise-scale
//!   factor (each factor a full deterministic landscape with its own
//!   derived noise seed, individually cached and shared across jobs)
//!   and extrapolates pointwise to zero noise;
//! * [`Mitigation::Readout`] inverts the analytic readout damping per
//!   point using the device's calibrated rates;
//! * [`Mitigation::Gaussian`] smooths the landscape with a
//!   constant-preserving Gaussian filter (no extra shots, trades sharp
//!   features for noise suppression).
//!
//! Every variant is shape-generic: 2-D grids go through the original
//! code paths bit-for-bit, while N-D tensors (deep QAOA, molecular VQE
//! scans) extrapolate pointwise, correct pointwise, or smooth
//! separably per axis ([`GaussianFilter::smooth_nd`]).
//!
//! Every variant is a pure function of the job spec, so mitigated jobs
//! stay bit-identical across executor counts, cache hit/miss, and
//! scheduling order — the invariant `oscar-batch --compare` verifies.
//!
//! ## Cache identity
//!
//! The landscape a mitigated job's stage 2 consumes is cached under a
//! key carrying the mitigation fingerprint
//! ([`LandscapeKey::mitigated`]), so mitigated and raw variants of the
//! same `(device, seed)` never share an entry. ZNE's per-factor
//! sub-landscapes are cached as *raw* landscapes of *scaled* sources
//! ([`LandscapeKey::zne_factor`]): two ZNE jobs that measure the same
//! factor share one entry, and the factor-1 entry is the plain noisy
//! landscape itself, shared with unmitigated jobs of the same seed.

use crate::cache::{LandscapeCache, LandscapeKey};
use crate::source::LandscapeSource;
use oscar_core::grid::Shape;
use oscar_core::landscape::{Landscape, NdLandscape, ShapedLandscape};
use oscar_core::usecases::mitigation::extrapolated_landscape;
use oscar_mitigation::gaussian::GaussianFilter;
use oscar_mitigation::readout::correct_damped_expectation;
use oscar_mitigation::zne::{Extrapolation, ZneConfig};
use oscar_obs::span::{with_stage, Stage};
use oscar_problems::workload::ProblemInstance;
use oscar_qsim::fingerprint::{tag, Fingerprint};
use oscar_qsim::noise::ReadoutError;
use std::sync::Arc;

/// How (and whether) a job mitigates its stage-1 landscape.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Mitigation {
    /// No mitigation: stage 2 reconstructs the raw landscape.
    #[default]
    None,
    /// Zero-noise extrapolation: measure at every factor, extrapolate
    /// pointwise to zero noise (paper Figures 9–10).
    Zne {
        /// Noise amplification factors (≥ 2, positive, strictly
        /// increasing — [`ZneConfig::new`]'s contract, enforced when
        /// the job runs).
        factors: Vec<f64>,
        /// The extrapolation model.
        extrapolator: Extrapolation,
    },
    /// Invert the device's readout damping per grid point using its
    /// calibrated error rates (shot-frugal; amplifies shot noise by
    /// the inverse damping).
    Readout,
    /// Gaussian smoothing of the landscape (`sigma` in grid-cell
    /// units). The only variant that also acts on exact landscapes.
    Gaussian {
        /// Filter standard deviation in grid cells.
        sigma: f64,
    },
}

impl Mitigation {
    /// The paper's Richardson ZNE configuration: scales `{1, 2, 3}`.
    pub fn zne_richardson() -> Self {
        Mitigation::Zne {
            factors: vec![1.0, 2.0, 3.0],
            extrapolator: Extrapolation::Richardson,
        }
    }

    /// The paper's linear ZNE configuration: scales `{1, 3}`.
    pub fn zne_linear() -> Self {
        Mitigation::Zne {
            factors: vec![1.0, 3.0],
            extrapolator: Extrapolation::Linear,
        }
    }

    /// Gaussian smoothing with the default 1-cell standard deviation.
    pub fn gaussian() -> Self {
        Mitigation::Gaussian { sigma: 1.0 }
    }

    /// Resolves a CLI-style name: `none`, `zne` (Richardson {1,2,3}),
    /// `zne-linear` ({1,3}), `readout`, or `gaussian`.
    pub fn by_name(name: &str) -> Option<Self> {
        Some(match name {
            "none" => Mitigation::None,
            "zne" => Mitigation::zne_richardson(),
            "zne-linear" => Mitigation::zne_linear(),
            "readout" => Mitigation::Readout,
            "gaussian" => Mitigation::gaussian(),
            _ => return None,
        })
    }

    /// The CLI-style name of this variant (the inverse of
    /// [`Self::by_name`] for its five named configurations; custom ZNE
    /// factor sets all render as `zne`/`zne-linear`).
    pub fn name(&self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::Zne {
                extrapolator: Extrapolation::Richardson,
                ..
            } => "zne",
            Mitigation::Zne {
                extrapolator: Extrapolation::Linear,
                ..
            } => "zne-linear",
            Mitigation::Readout => "readout",
            Mitigation::Gaussian { .. } => "gaussian",
        }
    }

    /// The variant that actually runs for `source`, with no-op
    /// configurations normalized to [`Mitigation::None`] so they share
    /// the raw landscape's cache entry instead of duplicating it:
    ///
    /// * ZNE and readout correction on the [`LandscapeSource::Exact`]
    ///   source change nothing (no noise to extrapolate, no readout to
    ///   invert);
    /// * readout correction on a device with ideal readout is the
    ///   identity.
    ///
    /// Gaussian smoothing is never normalized away — it blurs exact
    /// landscapes too.
    pub fn normalized(&self, source: &LandscapeSource) -> Mitigation {
        match self {
            Mitigation::None | Mitigation::Gaussian { .. } => self.clone(),
            Mitigation::Zne { .. } if source.is_exact() => Mitigation::None,
            Mitigation::Readout => match source.effective_device() {
                None => Mitigation::None,
                Some(spec) if spec.noise.readout == ReadoutError::ideal() => Mitigation::None,
                Some(_) => Mitigation::Readout,
            },
            Mitigation::Zne { .. } => self.clone(),
        }
    }

    /// Stable 128-bit fingerprint folded into
    /// [`LandscapeKey::mitigated`]: `0` iff the mitigation normalizes
    /// to [`Mitigation::None`] for `source` (the raw key), so mitigated
    /// and raw variants of the same device and seed never collide while
    /// no-op configurations share the raw entry. Process-stable
    /// ([`oscar_qsim::fingerprint`]), so persistent-store entries keyed
    /// by it survive restarts.
    ///
    /// Canonical encoding: `tag::ZNE` + factor count + each factor's
    /// f64 bit pattern + a Richardson flag byte; `tag::READOUT`; or
    /// `tag::GAUSSIAN` + sigma's bit pattern. The digest is forced
    /// nonzero (`| 1`).
    pub fn fingerprint(&self, source: &LandscapeSource) -> u128 {
        let mut h = Fingerprint::new();
        match self.normalized(source) {
            Mitigation::None => return 0,
            Mitigation::Zne {
                factors,
                extrapolator,
            } => {
                h.write_u8(tag::ZNE);
                h.write_usize(factors.len());
                for f in &factors {
                    h.write_f64(*f);
                }
                h.write_bool(matches!(extrapolator, Extrapolation::Richardson));
            }
            Mitigation::Readout => h.write_u8(tag::READOUT),
            Mitigation::Gaussian { sigma } => {
                h.write_u8(tag::GAUSSIAN);
                h.write_f64(sigma);
            }
        }
        // Keep a pathological all-zero hash from aliasing the raw key.
        h.finish() | 1
    }
}

/// Stage 1 + 1.5 of the pipeline: the (possibly mitigated) ground-truth
/// landscape stage 2 reconstructs, served from `cache` when provided.
///
/// Deterministic: a pure function of the arguments (the cache-hit flag
/// aside), bit-identical whether sub-landscapes come from the cache or
/// are recomputed, on any executor count. The returned flag reports a
/// hit on the *final* entry — the one keyed with the mitigation
/// fingerprint (equal to the raw key when the mitigation normalizes to
/// none).
///
/// # Panics
///
/// Panics if a [`Mitigation::Zne`] factor list violates
/// [`ZneConfig::new`]'s contract, a [`Mitigation::Gaussian`] sigma is
/// not finite and positive, or `shape` does not fit `problem` (see
/// [`LandscapeSource::generate`]).
pub fn mitigated_landscape(
    problem: &ProblemInstance,
    shape: &Shape,
    source: &LandscapeSource,
    landscape_seed: u64,
    mitigation: &Mitigation,
    cache: Option<&LandscapeCache>,
) -> (Arc<ShapedLandscape>, bool) {
    let mitigation = mitigation.normalized(source);
    // Stage spans wrap the *leaf* work sites (generation here, the
    // transform/extrapolation math below), never whole cache lookups,
    // so a cache hit costs the span machinery nothing and nothing
    // double-counts. A waiter in the in-flight dedup never runs the
    // producer, so generation time attributes to the producing job.
    let raw = || {
        with_stage(Stage::LandscapeGen, || {
            source.generate(problem, shape, landscape_seed)
        })
    };
    if mitigation == Mitigation::None {
        let key = LandscapeKey::new(problem, shape, source, landscape_seed);
        return match cache {
            Some(cache) => cache.get_or_compute(key, raw),
            None => (Arc::new(raw()), false),
        };
    }
    let apply = || apply_mitigation(problem, shape, source, landscape_seed, &mitigation, cache);
    let key = LandscapeKey::mitigated(
        problem,
        shape,
        source,
        landscape_seed,
        mitigation.fingerprint(source),
    );
    match cache {
        Some(cache) => cache.get_or_compute(key, apply),
        None => (Arc::new(apply()), false),
    }
}

/// Computes the mitigated landscape (the producer of the final cache
/// entry). Sub-computations — ZNE factor landscapes, the raw landscape
/// readout/Gaussian corrections start from — go through `cache` under
/// their own keys, so they are shared across jobs.
fn apply_mitigation(
    problem: &ProblemInstance,
    shape: &Shape,
    source: &LandscapeSource,
    landscape_seed: u64,
    mitigation: &Mitigation,
    cache: Option<&LandscapeCache>,
) -> ShapedLandscape {
    let raw_arc = || {
        let key = LandscapeKey::new(problem, shape, source, landscape_seed);
        let raw = || {
            with_stage(Stage::LandscapeGen, || {
                source.generate(problem, shape, landscape_seed)
            })
        };
        match cache {
            Some(cache) => cache.get_or_compute(key, raw).0,
            None => Arc::new(raw()),
        }
    };
    match mitigation {
        Mitigation::None => unreachable!("normalized away by the caller"),
        Mitigation::Zne {
            factors,
            extrapolator,
        } => {
            let zne = ZneConfig::new(factors.clone(), *extrapolator);
            let subs: Vec<Arc<ShapedLandscape>> = zne
                .scale_factors
                .iter()
                .map(|&scale| {
                    let key =
                        LandscapeKey::zne_factor(problem, shape, source, landscape_seed, scale);
                    let gen = || {
                        with_stage(Stage::LandscapeGen, || {
                            source.generate_scaled(problem, shape, landscape_seed, scale)
                        })
                    };
                    match cache {
                        Some(cache) => cache.get_or_compute(key, gen).0,
                        None => Arc::new(gen()),
                    }
                })
                .collect();
            with_stage(Stage::Mitigation, || match shape {
                Shape::Grid2d(_) => {
                    let refs: Vec<&Landscape> = subs
                        .iter()
                        // lint:allow(no-panic): generate() with a Grid2d shape always yields Grid2d sub-landscapes; the shape is threaded through unchanged.
                        .map(|s| s.as_grid2d().expect("grid source yields grid landscapes"))
                        .collect();
                    extrapolated_landscape(&zne, &refs).into()
                }
                Shape::Tensor(tensor) => {
                    let mut samples = vec![0.0; subs.len()];
                    let values: Vec<f64> = (0..tensor.len())
                        .map(|i| {
                            for (slot, sub) in samples.iter_mut().zip(&subs) {
                                *slot = sub.values()[i];
                            }
                            zne.extrapolate_values(&samples)
                        })
                        .collect();
                    NdLandscape::from_values(tensor.clone(), values).into()
                }
            })
        }
        Mitigation::Readout => {
            // Normalization keeps `Readout` only for noisy sources; if
            // a noiseless source slips through anyway, a zero readout
            // error makes the correction an exact identity.
            let error = source
                .effective_device()
                .map(|d| d.noise.readout)
                .unwrap_or(ReadoutError::new(0.0, 0.0));
            let mixed = problem.mixed_mean();
            let raw = raw_arc();
            let values = raw.values();
            with_stage(Stage::Mitigation, || match shape {
                Shape::Grid2d(grid) => Landscape::generate_indexed_par(*grid, |i, _, _| {
                    correct_damped_expectation(values[i], mixed, error)
                })
                .into(),
                Shape::Tensor(tensor) => {
                    NdLandscape::generate_indexed_par(tensor.clone(), |i, _| {
                        correct_damped_expectation(values[i], mixed, error)
                    })
                    .into()
                }
            })
        }
        Mitigation::Gaussian { sigma } => {
            let raw = raw_arc();
            with_stage(Stage::Mitigation, || match shape {
                Shape::Grid2d(grid) => {
                    let smoothed = GaussianFilter::new(*sigma).smooth_2d(
                        raw.values(),
                        grid.rows(),
                        grid.cols(),
                    );
                    Landscape::generate_indexed_par(*grid, |i, _, _| smoothed[i]).into()
                }
                Shape::Tensor(tensor) => {
                    let smoothed =
                        GaussianFilter::new(*sigma).smooth_nd(raw.values(), &tensor.dims());
                    NdLandscape::from_values(tensor.clone(), smoothed).into()
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_core::grid::Grid2d;
    use oscar_executor::device::DeviceSpec;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn raw_problem() -> IsingProblem {
        let mut rng = StdRng::seed_from_u64(77);
        IsingProblem::random_3_regular(6, &mut rng)
    }

    fn problem() -> ProblemInstance {
        ProblemInstance::ising(raw_problem(), 1)
    }

    fn perth() -> LandscapeSource {
        LandscapeSource::noisy(DeviceSpec::by_name("ibm perth").expect("known device"))
    }

    #[test]
    fn normalization_drops_noop_configurations() {
        let exact = LandscapeSource::Exact;
        assert_eq!(
            Mitigation::zne_richardson().normalized(&exact),
            Mitigation::None
        );
        assert_eq!(Mitigation::Readout.normalized(&exact), Mitigation::None);
        // Gaussian smoothing acts on exact landscapes too.
        assert_eq!(
            Mitigation::gaussian().normalized(&exact),
            Mitigation::gaussian()
        );
        // "noisy sim" has no readout error: correction is the identity.
        let no_readout = LandscapeSource::noisy(DeviceSpec::by_name("noisy sim").unwrap());
        assert_eq!(
            Mitigation::Readout.normalized(&no_readout),
            Mitigation::None
        );
        assert_eq!(
            Mitigation::Readout.normalized(&perth()),
            Mitigation::Readout
        );
    }

    #[test]
    fn fingerprints_zero_iff_normalized_none_and_separate_variants() {
        let noisy = perth();
        assert_eq!(Mitigation::None.fingerprint(&noisy), 0);
        assert_eq!(
            Mitigation::zne_richardson().fingerprint(&LandscapeSource::Exact),
            0
        );
        let fps = [
            Mitigation::zne_richardson().fingerprint(&noisy),
            Mitigation::zne_linear().fingerprint(&noisy),
            Mitigation::Readout.fingerprint(&noisy),
            Mitigation::gaussian().fingerprint(&noisy),
            Mitigation::Gaussian { sigma: 2.0 }.fingerprint(&noisy),
        ];
        for fp in fps {
            assert_ne!(fp, 0);
        }
        let mut unique = std::collections::HashSet::new();
        for fp in fps {
            assert!(unique.insert(fp), "fingerprint collision");
        }
        // Different factor sets are different fingerprints.
        let custom = Mitigation::Zne {
            factors: vec![1.0, 1.5, 2.0],
            extrapolator: Extrapolation::Richardson,
        };
        assert_ne!(
            custom.fingerprint(&noisy),
            Mitigation::zne_richardson().fingerprint(&noisy)
        );
    }

    #[test]
    fn zne_is_deterministic_and_beats_raw_on_a_noisy_device() {
        use oscar_core::metrics::nrmse;
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(10, 12));
        let noisy = perth();
        let ideal = LandscapeSource::Exact.generate(&p, &shape, 0);
        let (raw, _) = mitigated_landscape(&p, &shape, &noisy, 3, &Mitigation::None, None);
        let (zne, _) = mitigated_landscape(&p, &shape, &noisy, 3, &Mitigation::zne_linear(), None);
        let (zne2, _) = mitigated_landscape(&p, &shape, &noisy, 3, &Mitigation::zne_linear(), None);
        assert_eq!(zne.values(), zne2.values(), "ZNE must be bit-stable");
        assert_ne!(zne.values(), raw.values());
        let e_raw = nrmse(ideal.values(), raw.values());
        let e_zne = nrmse(ideal.values(), zne.values());
        assert!(
            e_zne < e_raw,
            "linear ZNE {e_zne} should beat unmitigated {e_raw}"
        );
    }

    #[test]
    fn readout_correction_moves_toward_the_depolarizing_only_landscape() {
        use oscar_core::metrics::nrmse;
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(10, 12));
        // Infinite-shot Perth: the correction is exact there.
        let spec = DeviceSpec::by_name("ibm perth").unwrap();
        let no_shots = DeviceSpec {
            noise: oscar_mitigation::model::NoiseModel {
                shots: None,
                ..spec.noise
            },
            ..spec.clone()
        };
        let depol_only = DeviceSpec {
            noise: oscar_mitigation::model::NoiseModel {
                readout: ReadoutError::ideal(),
                shots: None,
                ..spec.noise
            },
            ..spec.clone()
        };
        let src = LandscapeSource::noisy(no_shots);
        let target = LandscapeSource::noisy(depol_only).generate(&p, &shape, 1);
        let (raw, _) = mitigated_landscape(&p, &shape, &src, 1, &Mitigation::None, None);
        let (fixed, _) = mitigated_landscape(&p, &shape, &src, 1, &Mitigation::Readout, None);
        let e_raw = nrmse(target.values(), raw.values());
        let e_fixed = nrmse(target.values(), fixed.values());
        assert!(
            e_fixed < 1e-10,
            "infinite-shot readout correction must be exact, got {e_fixed}"
        );
        assert!(e_raw > 1e-3, "raw landscape should be visibly damped");
    }

    #[test]
    fn gaussian_smoothing_applies_to_exact_landscapes_too() {
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(10, 12));
        let exact = LandscapeSource::Exact;
        let (raw, _) = mitigated_landscape(&p, &shape, &exact, 0, &Mitigation::None, None);
        let (smooth, _) = mitigated_landscape(&p, &shape, &exact, 0, &Mitigation::gaussian(), None);
        assert_ne!(raw.values(), smooth.values());
        // Smoothing is an average: range can only shrink.
        let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max(smooth.values()) <= max(raw.values()) + 1e-12);
        assert!(min(smooth.values()) >= min(raw.values()) - 1e-12);
    }

    #[test]
    fn zne_factor_entries_are_cached_and_shared() {
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(8, 10));
        let noisy = perth();
        let cache = LandscapeCache::new(16);
        let (a, hit_a) = mitigated_landscape(
            &p,
            &shape,
            &noisy,
            5,
            &Mitigation::zne_richardson(),
            Some(&cache),
        );
        assert!(!hit_a);
        // 4 entries: factors 1, 2, 3 + the final extrapolated landscape.
        assert_eq!(cache.stats().len, 4);
        // A second identical job hits the final entry outright.
        let (b, hit_b) = mitigated_landscape(
            &p,
            &shape,
            &noisy,
            5,
            &Mitigation::zne_richardson(),
            Some(&cache),
        );
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "final entry must be shared");
        // Linear ZNE over {1, 3} reuses two of the three factor entries:
        // only its own final entry is new.
        let before = cache.stats();
        let (_, hit_lin) = mitigated_landscape(
            &p,
            &shape,
            &noisy,
            5,
            &Mitigation::zne_linear(),
            Some(&cache),
        );
        assert!(!hit_lin, "different extrapolation is a different landscape");
        let after = cache.stats();
        assert_eq!(after.len, 5, "only the linear final entry is new");
        assert_eq!(
            after.hits,
            before.hits + 2,
            "factors 1 and 3 must be served from cache"
        );
        // A raw job over the same seed shares the factor-1 entry.
        let (raw, hit_raw) =
            mitigated_landscape(&p, &shape, &noisy, 5, &Mitigation::None, Some(&cache));
        assert!(hit_raw, "raw landscape is the ZNE factor-1 entry");
        let factor1 = cache
            .get_or_compute(LandscapeKey::zne_factor(&p, &shape, &noisy, 5, 1.0), || {
                unreachable!("factor-1 entry must be resident")
            });
        assert!(Arc::ptr_eq(&raw, &factor1.0));
        assert_eq!(after.len, cache.stats().len, "no new entries");
    }

    #[test]
    fn cached_and_uncached_mitigation_agree_bitwise() {
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(8, 10));
        let noisy = perth();
        for mitigation in [
            Mitigation::zne_richardson(),
            Mitigation::zne_linear(),
            Mitigation::Readout,
            Mitigation::gaussian(),
        ] {
            let cache = LandscapeCache::new(16);
            let (plain, _) = mitigated_landscape(&p, &shape, &noisy, 2, &mitigation, None);
            let (miss, hit_miss) =
                mitigated_landscape(&p, &shape, &noisy, 2, &mitigation, Some(&cache));
            let (hit, hit_hit) =
                mitigated_landscape(&p, &shape, &noisy, 2, &mitigation, Some(&cache));
            assert!(!hit_miss && hit_hit, "{}", mitigation.name());
            assert_eq!(plain.values(), miss.values(), "{}", mitigation.name());
            assert_eq!(plain.values(), hit.values(), "{}", mitigation.name());
        }
    }

    #[test]
    fn mitigated_and_raw_entries_never_collide() {
        let p = problem();
        let shape = Shape::Grid2d(Grid2d::small_p1(8, 10));
        let noisy = perth();
        let raw = LandscapeKey::new(&p, &shape, &noisy, 3);
        for mitigation in [
            Mitigation::zne_richardson(),
            Mitigation::zne_linear(),
            Mitigation::Readout,
            Mitigation::gaussian(),
        ] {
            let key =
                LandscapeKey::mitigated(&p, &shape, &noisy, 3, mitigation.fingerprint(&noisy));
            assert_ne!(key, raw, "{}", mitigation.name());
        }
    }

    #[test]
    fn every_mitigation_runs_on_tensor_shapes_deterministically() {
        let p = ProblemInstance::ising(raw_problem(), 2);
        let shape = Shape::qaoa(2, 4, 5);
        assert!(matches!(shape, Shape::Tensor(_)));
        let noisy = perth();
        let (raw, _) = mitigated_landscape(&p, &shape, &noisy, 3, &Mitigation::None, None);
        for mitigation in [
            Mitigation::zne_linear(),
            Mitigation::Readout,
            Mitigation::gaussian(),
        ] {
            let (a, _) = mitigated_landscape(&p, &shape, &noisy, 3, &mitigation, None);
            let (b, _) = mitigated_landscape(&p, &shape, &noisy, 3, &mitigation, None);
            assert_eq!(
                a.values(),
                b.values(),
                "{} not bit-stable",
                mitigation.name()
            );
            assert_ne!(a.values(), raw.values(), "{} is a no-op", mitigation.name());
            assert_eq!(a.values().len(), shape.len());
            assert!(
                a.as_tensor().is_some(),
                "{} changed shape",
                mitigation.name()
            );
        }
    }

    #[test]
    fn tensor_gaussian_matches_direct_nd_smoothing() {
        use oscar_problems::workload::Molecule;
        let p = ProblemInstance::molecule(Molecule::H2);
        let shape = Shape::vqe_scan(&[4, 4, 4]);
        let exact = LandscapeSource::Exact;
        let raw = exact.generate(&p, &shape, 0);
        let (smooth, _) = mitigated_landscape(&p, &shape, &exact, 0, &Mitigation::gaussian(), None);
        let direct = GaussianFilter::new(1.0).smooth_nd(raw.values(), &raw.dims());
        for (a, b) in smooth.values().iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
