//! Determinism pins for noisy-device landscapes in the batch runtime:
//! counter-based per-point noise makes a noisy job's result a pure
//! function of its spec — bit-identical across executor counts, across
//! cache hit/miss, across scheduling order, and across every mitigation
//! and optimizer axis.

use oscar_core::grid::Grid2d;
use oscar_executor::device::DeviceSpec;
use oscar_problems::ising::IsingProblem;
use oscar_runtime::cache::{LandscapeCache, LandscapeKey};
use oscar_runtime::descent::Descent;
use oscar_runtime::job::{run_job, JobResult, JobSpec};
use oscar_runtime::mitigation::{mitigated_landscape, Mitigation};
use oscar_runtime::scheduler::{BatchRuntime, Priority};
use oscar_runtime::source::LandscapeSource;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn device(name: &str) -> DeviceSpec {
    DeviceSpec::by_name(name).unwrap_or_else(|| panic!("unknown device {name}"))
}

/// 16 noisy jobs: 2 instances × 2 devices × 2 noise seeds × 2 sampling
/// seeds — every axis of the noisy sweep the paper's evaluation runs.
fn noisy_batch() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..2)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(300 + k);
            IsingProblem::random_3_regular(6 + 2 * k as usize, &mut rng)
        })
        .collect();
    let devices = [device("noisy sim"), device("ibm perth")];
    let mut specs = Vec::new();
    for (pi, problem) in problems.iter().enumerate() {
        for d in &devices {
            for landscape_seed in [1u64, 2] {
                for seed in [10u64, 11] {
                    specs.push(
                        JobSpec::new(
                            problem.clone(),
                            Grid2d::small_p1(10, 12 + 2 * pi),
                            0.3,
                            seed,
                        )
                        .with_source(LandscapeSource::noisy(d.clone()))
                        .with_landscape_seed(landscape_seed),
                    );
                }
            }
        }
    }
    assert_eq!(specs.len(), 16);
    specs
}

fn assert_results_identical(a: &JobResult, b: &JobResult, ctx: &str) {
    assert_eq!(
        a.reconstruction.values(),
        b.reconstruction.values(),
        "{ctx}: reconstruction drifted"
    );
    assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits(), "{ctx}: nrmse drifted");
    assert_eq!(a.samples_used, b.samples_used, "{ctx}: sampling drifted");
    assert_eq!(
        (&a.best_point, a.best_value.to_bits()),
        (&b.best_point, b.best_value.to_bits()),
        "{ctx}: optimization drifted"
    );
}

#[test]
fn noisy_jobs_bit_identical_across_1_and_4_executors() {
    let specs = noisy_batch();
    // Sequential uncached reference: the pure function of each spec.
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();

    let one = BatchRuntime::with_concurrency(1)
        .run_batch(specs.clone())
        .expect("no job panics");
    let four = BatchRuntime::with_concurrency(4)
        .run_batch(specs)
        .expect("no job panics");

    for (i, ((seq, a), b)) in sequential.iter().zip(&one).zip(&four).enumerate() {
        assert_results_identical(seq, a, &format!("job {i}, 1 executor vs sequential"));
        assert_results_identical(a, b, &format!("job {i}, 1 vs 4 executors"));
    }
}

#[test]
fn noisy_cache_hit_is_bit_identical_to_miss() {
    let spec = noisy_batch().remove(3);
    let cache = LandscapeCache::new(4);
    let uncached = run_job(&spec, None);
    let miss = run_job(&spec, Some(&cache));
    let hit = run_job(&spec, Some(&cache));
    assert!(!miss.landscape_cache_hit && hit.landscape_cache_hit);
    assert_results_identical(&uncached, &miss, "uncached vs cache miss");
    assert_results_identical(&miss, &hit, "cache miss vs cache hit");
}

#[test]
fn noisy_jobs_share_cache_entries_per_noise_realization() {
    // Same (problem, grid, device, landscape_seed), different sampling
    // seeds: one landscape computation serves both. A different
    // landscape_seed — or device — is a genuinely different landscape.
    let mut rng = StdRng::seed_from_u64(310);
    let problem = IsingProblem::random_3_regular(6, &mut rng);
    let grid = Grid2d::small_p1(10, 12);
    let base = JobSpec::new(problem, grid, 0.3, 1)
        .with_source(LandscapeSource::noisy(device("noisy sim")))
        .with_landscape_seed(5);
    let cache = LandscapeCache::new(8);

    let a = run_job(&base, Some(&cache));
    let mut resampled = base.clone();
    resampled.seed = 2;
    let b = run_job(&resampled, Some(&cache));
    assert!(!a.landscape_cache_hit && b.landscape_cache_hit);
    assert_eq!(cache.stats().len, 1);

    let c = run_job(&base.clone().with_landscape_seed(6), Some(&cache));
    assert!(!c.landscape_cache_hit, "new noise realization must miss");
    let d = run_job(
        &base.with_source(LandscapeSource::noisy(device("ibm perth"))),
        Some(&cache),
    );
    assert!(!d.landscape_cache_hit, "different device must miss");
    assert_eq!(cache.stats().len, 3);
    // All three entries really are distinct landscapes.
    assert_ne!(a.reconstruction.values(), c.reconstruction.values());
    assert_ne!(a.reconstruction.values(), d.reconstruction.values());
}

#[test]
fn exact_and_noisy_jobs_never_share_cache_entries() {
    let mut rng = StdRng::seed_from_u64(320);
    let problem = IsingProblem::random_3_regular(6, &mut rng);
    let grid = Grid2d::small_p1(10, 12);
    let cache = LandscapeCache::new(8);
    let exact = JobSpec::new(problem.clone(), grid, 0.3, 1);
    // landscape_seed 0 on the noisy spec: even the all-default seed must
    // not collide with the exact entry (the source fingerprint splits
    // them).
    let noisy = JobSpec::new(problem, grid, 0.3, 1)
        .with_source(LandscapeSource::noisy(device("noisy sim-ii")));

    let e = run_job(&exact, Some(&cache));
    let n = run_job(&noisy, Some(&cache));
    assert!(!e.landscape_cache_hit);
    assert!(!n.landscape_cache_hit, "noisy must not hit the exact entry");
    assert_eq!(cache.stats().len, 2);
    assert_ne!(e.reconstruction.values(), n.reconstruction.values());
}

/// 16 jobs crossing every new axis: raw and ZNE/readout/Gaussian
/// mitigated stage 1 over exact and noisy sources, with the optimizer
/// cycling through the full `Descent` lineup (SPSA included, seeded
/// from the job seed).
fn mitigated_batch() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..2)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(400 + k);
            IsingProblem::random_3_regular(6 + 2 * k as usize, &mut rng)
        })
        .collect();
    let perth = device("ibm perth");
    let mitigations = [
        Mitigation::None,
        Mitigation::zne_richardson(),
        Mitigation::zne_linear(),
        Mitigation::Readout,
        Mitigation::gaussian(),
    ];
    let mut specs = Vec::new();
    let mut j = 0u64;
    for problem in &problems {
        for mitigation in &mitigations {
            // Exact and noisy variant of each mitigation (exact ZNE and
            // readout normalize to raw — the pipeline must handle both).
            for noisy in [false, true] {
                if specs.len() == 16 {
                    break;
                }
                let mut spec = JobSpec::new(problem.clone(), Grid2d::small_p1(10, 12), 0.3, 10 + j)
                    .with_mitigation(mitigation.clone())
                    .with_descent(Descent::OPTIMIZERS[j as usize % Descent::OPTIMIZERS.len()]);
                if noisy {
                    spec = spec
                        .with_source(LandscapeSource::noisy(perth.clone()))
                        .with_landscape_seed(2);
                }
                specs.push(spec);
                j += 1;
            }
        }
    }
    assert_eq!(specs.len(), 16);
    specs
}

#[test]
fn mitigated_batch_bit_identical_across_executors_and_priorities() {
    let specs = mitigated_batch();
    // Sequential uncached reference: the pure function of each spec.
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();

    let one = BatchRuntime::with_concurrency(1)
        .run_batch(specs.clone())
        .expect("no job panics");
    let four = BatchRuntime::with_concurrency(4)
        .run_batch(specs.clone())
        .expect("no job panics");

    // Reversed priorities: last-submitted jobs dispatch first. Results
    // must not care.
    let runtime = BatchRuntime::with_concurrency(4);
    let handles: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let priority = match i % 3 {
                0 => Priority::High,
                1 => Priority::Normal,
                _ => Priority::Low,
            };
            runtime.submit_with_priority(s.clone(), priority)
        })
        .collect();
    let prioritized: Vec<JobResult> = handles
        .into_iter()
        .map(|h| h.wait().expect("no job panics"))
        .collect();

    for (i, seq) in sequential.iter().enumerate() {
        assert_results_identical(seq, &one[i], &format!("job {i}, 1 executor vs sequential"));
        assert_results_identical(&one[i], &four[i], &format!("job {i}, 1 vs 4 executors"));
        assert_results_identical(
            &four[i],
            &prioritized[i],
            &format!("job {i}, priority shuffle"),
        );
    }
}

#[test]
fn mitigated_cache_hit_is_bit_identical_to_miss() {
    for spec in mitigated_batch().into_iter().step_by(3) {
        let cache = LandscapeCache::new(32);
        let uncached = run_job(&spec, None);
        let miss = run_job(&spec, Some(&cache));
        let hit = run_job(&spec, Some(&cache));
        assert!(!miss.landscape_cache_hit && hit.landscape_cache_hit);
        assert_results_identical(&uncached, &miss, "uncached vs cache miss");
        assert_results_identical(&miss, &hit, "cache miss vs cache hit");
    }
}

#[test]
fn zne_sub_landscapes_are_shared_across_jobs_and_with_raw() {
    use oscar_core::grid::Shape;
    use oscar_problems::workload::ProblemInstance;
    let mut rng = StdRng::seed_from_u64(410);
    let problem = ProblemInstance::ising(IsingProblem::random_3_regular(6, &mut rng), 1);
    let shape = Shape::Grid2d(Grid2d::small_p1(10, 12));
    let source = LandscapeSource::noisy(device("ibm perth"));
    let cache = LandscapeCache::new(16);

    // Job 1: Richardson {1,2,3}. Populates 3 factor entries + 1 final.
    let (rich, _) = mitigated_landscape(
        &problem,
        &shape,
        &source,
        5,
        &Mitigation::zne_richardson(),
        Some(&cache),
    );
    let after_rich = cache.stats();
    assert_eq!(after_rich.len, 4, "{after_rich:?}");

    // Job 2: linear {1,3} over the same device/seed. Factors 1 and 3
    // must be *hits* — no landscape generation, shared Arcs.
    let (lin, _) = mitigated_landscape(
        &problem,
        &shape,
        &source,
        5,
        &Mitigation::zne_linear(),
        Some(&cache),
    );
    let after_lin = cache.stats();
    assert_eq!(after_lin.len, 5, "only the linear final entry is new");
    assert_eq!(
        after_lin.hits,
        after_rich.hits + 2,
        "both linear factors must be cache hits: {after_lin:?}"
    );
    assert_ne!(rich.values(), lin.values());

    // Arc identity: the factor entries probed directly are the same
    // allocations the jobs consumed; the factor-1 entry doubles as the
    // raw noisy landscape.
    let probe = |scale: f64| {
        cache
            .get_or_compute(
                LandscapeKey::zne_factor(&problem, &shape, &source, 5, scale),
                || unreachable!("factor {scale} must be resident"),
            )
            .0
    };
    let (f1a, f1b) = (probe(1.0), probe(1.0));
    assert!(Arc::ptr_eq(&f1a, &f1b));
    let (raw, raw_hit) = mitigated_landscape(
        &problem,
        &shape,
        &source,
        5,
        &Mitigation::None,
        Some(&cache),
    );
    assert!(raw_hit, "raw job must hit the ZNE factor-1 entry");
    assert!(
        Arc::ptr_eq(&raw, &f1a),
        "raw landscape and ZNE factor 1 must be one allocation"
    );
    // And a repeated Richardson job shares the final entry by identity.
    let (rich2, rich2_hit) = mitigated_landscape(
        &problem,
        &shape,
        &source,
        5,
        &Mitigation::zne_richardson(),
        Some(&cache),
    );
    assert!(rich2_hit);
    assert!(Arc::ptr_eq(&rich, &rich2));
}

#[test]
fn mixed_exact_and_noisy_batch_matches_sequential() {
    // Interleave exact and noisy jobs in one scheduled batch: the cache
    // holds both kinds at once and nothing cross-contaminates.
    let mut rng = StdRng::seed_from_u64(330);
    let problem = IsingProblem::random_3_regular(8, &mut rng);
    let grid = Grid2d::small_p1(12, 14);
    let mut specs = Vec::new();
    for seed in 0..3u64 {
        specs.push(JobSpec::new(problem.clone(), grid, 0.25, seed));
        specs.push(
            JobSpec::new(problem.clone(), grid, 0.25, seed)
                .with_source(LandscapeSource::noisy(device("ibm lagos")))
                .with_landscape_seed(9),
        );
    }
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();
    let runtime = BatchRuntime::with_concurrency(3);
    let scheduled = runtime.run_batch(specs).expect("no job panics");
    for (i, (seq, sched)) in sequential.iter().zip(&scheduled).enumerate() {
        assert_results_identical(seq, sched, &format!("mixed job {i}"));
    }
    // 1 exact + 1 noisy landscape served all 6 jobs.
    let stats = runtime.cache_stats();
    assert_eq!(stats.misses, 2, "{stats:?}");
    assert!(stats.hits >= 4, "{stats:?}");
}
