//! Deadline scheduling, `wait_timeout`, and drop/drain delivery pins.
//!
//! The robustness contract of the scheduler's no-result paths: a
//! deadline that passes before dispatch cancels the job server-side
//! and reports it *expired*; `wait_timeout` bounds every wait without
//! ever hanging or losing a late result; dropping the runtime (or
//! draining it) resolves **every** outstanding handle — including
//! cancelled-then-dropped ones — instead of leaving waiters blocked.

use oscar_core::grid::Grid2d;
use oscar_problems::ising::IsingProblem;
use oscar_runtime::job::JobSpec;
use oscar_runtime::scheduler::{BatchRuntime, JobStatus, Priority, SubmitOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A deliberately heavy spec (a 30x30 landscape of 10-qubit
/// evaluations, hundreds of milliseconds) that keeps a single executor
/// busy while the test stages the queue behind it.
fn blocker_spec(rng_seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let problem = IsingProblem::random_3_regular(10, &mut rng);
    JobSpec::new(problem, Grid2d::small_p1(30, 30), 0.2, 0)
}

fn quick_spec(rng_seed: u64, seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let problem = IsingProblem::random_3_regular(4, &mut rng);
    JobSpec::new(problem, Grid2d::small_p1(8, 10), 0.3, seed)
}

/// Blocks until the runtime's (single) executor has claimed the one
/// queued job — staging submitted afterwards is guaranteed to queue
/// behind it rather than race it to the executor.
fn wait_until_busy(runtime: &BatchRuntime) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while runtime.running() == 0 || runtime.pending() > 0 {
        assert!(Instant::now() < deadline, "blocker never dispatched");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn wait_timeout_elapses_then_result_arrives() {
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(30));
    let queued = runtime.submit(quick_spec(31, 1));
    // The single executor is stuck in the blocker, so a short wait on
    // the queued job must time out (Ok(None)), leaving the handle
    // usable.
    match queued.wait_timeout(Duration::from_millis(20)) {
        Ok(None) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    // The result still arrives on a later (generous) wait.
    let result = queued
        .wait_timeout(Duration::from_secs(120))
        .expect("job is never lost")
        .expect("job completes well within the timeout");
    assert!(result.nrmse.is_finite());
    assert!(blocker.wait().is_ok());
}

#[test]
fn wait_timeout_surfaces_executor_death() {
    let runtime = BatchRuntime::with_concurrency(1);
    let _blocker = runtime.submit(blocker_spec(32));
    let doomed = runtime.submit(quick_spec(33, 1));
    // Drop the runtime from another thread while this one blocks in
    // wait_timeout: the abandoned queue entry's channel closes and the
    // wait must resolve to Err(JobLost) long before the timeout.
    let dropper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        drop(runtime);
    });
    let err = match doomed.wait_timeout(Duration::from_secs(120)) {
        Err(err) => err,
        other => panic!("expected JobLost after runtime drop, got {other:?}"),
    };
    assert!(!err.was_cancelled() && !err.was_expired());
    dropper.join().expect("dropper thread");
}

#[test]
fn wait_timeout_on_panicked_job_reports_lost() {
    let runtime = BatchRuntime::with_concurrency(1);
    let mut poison = quick_spec(34, 1);
    poison.fraction = 2.0; // violates the sampler's contract mid-pipeline
    let handle = runtime.submit(poison);
    let err = loop {
        match handle.wait_timeout(Duration::from_millis(50)) {
            Ok(None) => continue,
            Err(err) => break err,
            Ok(Some(_)) => panic!("poison job cannot produce a result"),
        }
    };
    assert!(!err.was_cancelled() && !err.was_expired());
    assert_eq!(handle.status(), JobStatus::Failed);
}

#[test]
fn expired_deadline_cancels_queued_job_server_side() {
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(35));
    wait_until_busy(&runtime);
    // A deadline far shorter than the blocker's runtime: by the time
    // the executor reaches this entry it is overdue and must be
    // discarded without running.
    let doomed = runtime.submit_opts(
        quick_spec(36, 1),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_millis(5)),
    );
    let err = doomed.wait().expect_err("deadline passes before dispatch");
    assert!(err.was_expired(), "{err}");
    assert!(!err.was_cancelled());
    assert!(err.to_string().contains("deadline"));
    assert!(blocker.wait().is_ok());
    assert_eq!(runtime.expired(), 1);
    assert_eq!(runtime.completed(), 1, "only the blocker ran");
}

#[test]
fn expire_overdue_sweeps_without_waiting_for_dispatch() {
    let runtime = BatchRuntime::with_concurrency(1);
    let _blocker = runtime.submit(blocker_spec(37));
    wait_until_busy(&runtime);
    let doomed = runtime.submit_opts(
        quick_spec(38, 1),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_millis(5)),
    );
    let alive = runtime.submit_opts(
        quick_spec(38, 2),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_secs(600)),
    );
    std::thread::sleep(Duration::from_millis(20));
    // The executor is still busy with the blocker; the sweep must
    // expire the overdue entry eagerly and leave the healthy one.
    assert_eq!(runtime.expire_overdue(), 1);
    assert_eq!(doomed.status(), JobStatus::Expired);
    let err = doomed.wait().expect_err("swept job never runs");
    assert!(err.was_expired());
    assert!(alive
        .wait_timeout(Duration::from_secs(120))
        .expect("generous deadline never expires")
        .is_some());
}

#[test]
fn deadlines_dispatch_earliest_first_within_priority() {
    // One executor blocked on a heavy job while three normal-priority
    // jobs stage: two with deadlines (submitted far-then-near) and one
    // without. Dispatch must order near-deadline, far-deadline, then
    // the deadline-less job — EDF within the level, regardless of
    // submission order.
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(39));
    wait_until_busy(&runtime);
    let plain = runtime.submit(quick_spec(40, 1));
    let far = runtime.submit_opts(
        quick_spec(40, 2),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_secs(600)),
    );
    let near = runtime.submit_opts(
        quick_spec(40, 3),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_secs(300)),
    );
    let seq = |h: oscar_runtime::scheduler::JobHandle| {
        h.wait()
            .expect("runtime alive, generous deadlines")
            .dispatch_seq
    };
    let order = [seq(near), seq(far), seq(plain)];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "expected near-deadline, far-deadline, deadline-less: {order:?}"
    );
    let _ = seq(blocker);
}

#[test]
fn high_priority_still_outranks_deadlined_normal() {
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(41));
    wait_until_busy(&runtime);
    let deadlined = runtime.submit_opts(
        quick_spec(42, 1),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_secs(300)),
    );
    let high = runtime.submit_with_priority(quick_spec(42, 2), Priority::High);
    let high_seq = high.wait().expect("alive").dispatch_seq;
    let deadlined_seq = deadlined.wait().expect("alive").dispatch_seq;
    assert!(
        high_seq < deadlined_seq,
        "a deadline reorders within its level, never above High"
    );
    let _ = blocker.wait();
}

#[test]
fn dropping_runtime_resolves_every_handle_including_cancelled() {
    // Satellite regression: dropping a runtime with queued jobs must
    // deliver JobLost to every outstanding handle — including a job
    // cancelled while queued and then abandoned by the drop — with the
    // cancel/expiry cause preserved.
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(43));
    wait_until_busy(&runtime);
    let cancelled = runtime.submit(quick_spec(44, 1));
    let expired = runtime.submit_opts(
        quick_spec(44, 2),
        SubmitOptions::default().deadline(Instant::now() + Duration::from_millis(5)),
    );
    let abandoned = runtime.submit(quick_spec(44, 3));
    assert!(cancelled.cancel(), "still queued: cancel wins");
    std::thread::sleep(Duration::from_millis(10));
    drop(runtime);

    // A cancelled-then-dropped handle resolves immediately with the
    // cancellation preserved (it must not report a bare shutdown).
    let err = cancelled.wait().expect_err("cancelled job has no result");
    assert!(err.was_cancelled(), "{err}");

    // The expired-deadline entry was never dispatched; after the drop
    // its wait still must resolve (expired if an executor or sweep
    // marked it, shutdown-lost otherwise — never a hang).
    let err = expired.wait().expect_err("expired job has no result");
    assert!(!err.was_cancelled());

    // A plain queued job abandoned by the drop reports shutdown loss.
    let err = abandoned.wait().expect_err("abandoned job has no result");
    assert!(!err.was_cancelled() && !err.was_expired());

    // The in-flight blocker finished during shutdown and delivers.
    assert!(blocker.wait().is_ok(), "running job completes on drop");
}

#[test]
fn cancelled_then_waited_handle_resolves_before_dispatch() {
    // A cancel that wins while the entry is still buried in the queue
    // must resolve `wait` immediately — not when an executor finally
    // pops the dead entry.
    let runtime = BatchRuntime::with_concurrency(1);
    let _blocker = runtime.submit(blocker_spec(45));
    wait_until_busy(&runtime);
    let victim = runtime.submit(quick_spec(46, 1));
    assert!(victim.cancel());
    assert_eq!(victim.status(), JobStatus::Cancelled);
    let started = Instant::now();
    let err = victim.wait().expect_err("cancelled job has no result");
    assert!(err.was_cancelled());
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "wait on a cancelled job must not block until dispatch"
    );
}

#[test]
fn drain_completes_queued_and_running_jobs() {
    let runtime = BatchRuntime::with_concurrency(2);
    let handles: Vec<_> = (0..6)
        .map(|seed| runtime.submit(quick_spec(47, seed)))
        .collect();
    let cancelled = runtime.submit(quick_spec(47, 99));
    cancelled.cancel();
    runtime.drain();
    assert_eq!(runtime.pending(), 0, "drain leaves an empty queue");
    assert_eq!(runtime.running(), 0, "drain leaves idle executors");
    assert_eq!(runtime.completed(), 6);
    for handle in handles {
        // Every admitted job ran to completion; no waiter is stranded.
        let result = handle
            .wait_timeout(Duration::from_secs(1))
            .expect("drained jobs are never lost")
            .expect("drained results are already delivered");
        assert!(result.nrmse.is_finite());
    }
    assert!(cancelled.wait().is_err());
}

#[test]
fn drain_on_idle_runtime_returns_immediately() {
    let runtime = BatchRuntime::with_concurrency(2);
    let started = Instant::now();
    runtime.drain();
    assert!(started.elapsed() < Duration::from_secs(5));
}
