//! End-to-end pins for the persistent landscape store: a warm-store
//! batch in a fresh runtime ("restart") must be bit-identical to the
//! cold run that populated it, serve its landscapes from disk, and
//! shrug off in-place corruption of individual entries.

use oscar_core::grid::Grid2d;
use oscar_executor::device::DeviceSpec;
use oscar_problems::ising::IsingProblem;
use oscar_runtime::descent::Descent;
use oscar_runtime::job::{run_job, JobResult, JobSpec};
use oscar_runtime::mitigation::Mitigation;
use oscar_runtime::scheduler::{BatchRuntime, RuntimeConfig};
use oscar_runtime::source::LandscapeSource;
use oscar_runtime::store::{store_stats, LandscapeStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oscar-store-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A ZNE sweep over noisy devices: the workload whose landscapes (one
/// per scale factor per instance) are the expensive state a warm store
/// carries across restarts.
fn zne_batch() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..2)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(500 + k);
            IsingProblem::random_3_regular(6 + 2 * k as usize, &mut rng)
        })
        .collect();
    let perth = DeviceSpec::by_name("ibm perth").expect("known device");
    let mut specs = Vec::new();
    for (pi, problem) in problems.iter().enumerate() {
        for landscape_seed in [1u64, 2] {
            for seed in [10u64, 11] {
                specs.push(
                    JobSpec::new(
                        problem.clone(),
                        Grid2d::small_p1(10, 12 + 2 * pi),
                        0.3,
                        seed,
                    )
                    .with_source(LandscapeSource::noisy(perth.clone()))
                    .with_landscape_seed(landscape_seed)
                    .with_mitigation(Mitigation::zne_richardson())
                    .with_descent(Descent::OPTIMIZERS[seed as usize % Descent::OPTIMIZERS.len()]),
                );
            }
        }
    }
    assert_eq!(specs.len(), 8);
    specs
}

fn run_with_store(dir: &Path, concurrency: usize) -> Vec<JobResult> {
    let store = LandscapeStore::open(dir).expect("store opens");
    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency,
        landscape_cache_capacity: 32,
        store: Some(Arc::clone(&store)),
    });
    let results = runtime.run_batch(zne_batch()).expect("no job panics");
    store.flush();
    results
}

fn assert_results_identical(a: &JobResult, b: &JobResult, ctx: &str) {
    assert_eq!(
        a.reconstruction.values(),
        b.reconstruction.values(),
        "{ctx}: reconstruction drifted"
    );
    assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits(), "{ctx}: nrmse drifted");
    assert_eq!(
        (&a.best_point, a.best_value.to_bits()),
        (&b.best_point, b.best_value.to_bits()),
        "{ctx}: optimization drifted"
    );
}

#[test]
fn warm_store_restart_is_bit_identical_and_served_from_disk() {
    let dir = test_dir("warm-restart");
    // Uncached, storeless reference: the pure function of each spec.
    let reference: Vec<JobResult> = zne_batch().iter().map(|s| run_job(s, None)).collect();

    // Cold run populates the store (write-behind, flushed on drop).
    let cold = run_with_store(&dir, 4);
    let entries = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "osl"))
        })
        .count();
    assert!(entries > 0, "cold run must persist landscape entries");

    // Warm run in a *fresh* runtime and store handle: every landscape
    // should come off disk, and every result must be bit-identical.
    let before = store_stats();
    let warm = run_with_store(&dir, 4);
    let after = store_stats();
    assert!(
        after.hits > before.hits,
        "warm run must serve landscapes from the disk tier"
    );

    // A different executor count over the same warm store, too.
    let warm_one = run_with_store(&dir, 1);

    for (i, ((r, c), (w, w1))) in reference
        .iter()
        .zip(&cold)
        .zip(warm.iter().zip(&warm_one))
        .enumerate()
    {
        assert_results_identical(r, c, &format!("job {i}: cold-with-store vs storeless"));
        assert_results_identical(c, w, &format!("job {i}: warm restart vs cold"));
        assert_results_identical(w, w1, &format!("job {i}: warm 1 vs 4 executors"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_regenerate_bit_identically() {
    let dir = test_dir("corrupt-regen");
    let cold = run_with_store(&dir, 4);

    // Damage every entry a different way: truncate, bit-flip, garbage.
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("store dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "osl"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty());
    for (i, path) in paths.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("entry readable");
        match i % 3 {
            0 => bytes.truncate(bytes.len() / 2),
            1 => bytes[40] ^= 0xff,
            _ => bytes = b"not a landscape".to_vec(),
        }
        std::fs::write(path, &bytes).expect("entry writable");
    }

    let before = store_stats();
    let warm = run_with_store(&dir, 4);
    let after = store_stats();
    assert!(
        after.corrupt_entries > before.corrupt_entries,
        "damaged entries must be detected"
    );
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_results_identical(c, w, &format!("job {i}: corrupted store vs cold"));
    }

    // The corrupt-store run rewrote the entries; a third run hits disk.
    let before = store_stats();
    let rewarmed = run_with_store(&dir, 4);
    assert!(
        store_stats().hits > before.hits,
        "rewritten entries must hit"
    );
    for (i, (c, w)) in cold.iter().zip(&rewarmed).enumerate() {
        assert_results_identical(c, w, &format!("job {i}: rewritten store vs cold"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
