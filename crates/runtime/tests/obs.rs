//! Observability must not perturb results: tracing a batch keeps every
//! job bit-identical to its untraced run, and the landscape cache's
//! per-class registry counters account for the hits/misses the batch
//! actually performed (including per-factor ZNE landscape hits).
//!
//! The registry and tracer are process-wide, so every assertion here is
//! on deltas (or `>=`), never absolute values — other tests in this
//! binary run concurrently against the same globals.

use oscar_core::grid::Grid2d;
use oscar_obs::span::Tracer;
use oscar_obs::{MetricValue, Registry};
use oscar_problems::ising::IsingProblem;
use oscar_runtime::descent::Descent;
use oscar_runtime::job::{JobResult, JobSpec};
use oscar_runtime::mitigation::Mitigation;
use oscar_runtime::scheduler::{BatchRuntime, RuntimeConfig};
use oscar_runtime::source::LandscapeSource;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small mitigated batch with real cache reuse: 6 jobs over 2
/// instances, ZNE mitigation, so landscapes dedupe per instance and
/// per noise factor.
fn batch_specs() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..2u64)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(90 + k);
            IsingProblem::try_random_3_regular(6, &mut rng).expect("6q 3-regular is feasible")
        })
        .collect();
    (0..6)
        .map(|j| {
            let k = j % 2;
            JobSpec::new(
                problems[k].clone(),
                Grid2d::small_p1(10, 12),
                0.3,
                500 + j as u64,
            )
            .with_source(LandscapeSource::Noisy {
                device: oscar_executor::device::DeviceSpec::by_name("noisy sim")
                    .expect("preset device"),
                shots: Some(256),
            })
            .with_landscape_seed(k as u64)
            .with_mitigation(Mitigation::zne_richardson())
            .with_descent(Descent::by_name("nelder-mead").unwrap())
        })
        .collect()
}

fn run_batch(specs: &[JobSpec]) -> Vec<JobResult> {
    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 2,
        ..RuntimeConfig::default()
    });
    let handles: Vec<_> = specs.iter().map(|s| runtime.submit(s.clone())).collect();
    handles
        .into_iter()
        .map(|h| h.wait().expect("job completed"))
        .collect()
}

/// Tracing on vs off: bit-identical results. This is the guard that
/// keeps wall-clock observability out of the deterministic outputs.
#[test]
fn traced_batch_is_bit_identical_to_untraced() {
    let specs = batch_specs();
    let untraced = run_batch(&specs);

    let tracer = Tracer::global();
    let was_enabled = tracer.is_enabled();
    tracer.set_enabled(true);
    let spans_before = tracer.len() as u64 + tracer.dropped();
    let traced = run_batch(&specs);
    let spans_after = tracer.len() as u64 + tracer.dropped();
    tracer.set_enabled(was_enabled);

    assert!(
        spans_after > spans_before,
        "the traced run must actually record spans"
    );
    for (a, b) in untraced.iter().zip(&traced) {
        assert_eq!(
            a.reconstruction.values(),
            b.reconstruction.values(),
            "reconstruction drifted under tracing"
        );
        assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits());
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
        assert_eq!(a.samples_used, b.samples_used);
        assert_eq!(a.solver_iterations, b.solver_iterations);
    }
}

fn counter(snapshot: &[(String, MetricValue)], name: &str) -> u64 {
    snapshot
        .iter()
        .find_map(|(n, v)| match (n == name, v) {
            (true, MetricValue::Counter(c)) => Some(*c),
            _ => None,
        })
        .unwrap_or(0)
}

/// The per-class cache counters see the batch's traffic: a ZNE batch
/// with shared instances produces per-factor (`zne_factor`) misses on
/// first touch, per-factor or mitigated hits on reuse, and no
/// `exact`-class traffic at all from this noisy batch.
#[test]
fn cache_class_counters_account_for_batch_traffic() {
    let registry = Registry::global();
    let before = registry.snapshot();
    let results = run_batch(&batch_specs());
    let after = registry.snapshot();

    let delta = |name: &str| counter(&after, name) - counter(&before, name);

    // 2 instances x 3 ZNE factors: at least 6 per-factor landscape
    // generations (re-runs of other tests only add to the deltas).
    assert!(
        delta("cache.misses.zne_factor") >= 6,
        "expected >= 6 zne_factor misses, got {}",
        delta("cache.misses.zne_factor")
    );
    // 6 jobs over 2 instances: at least 4 jobs reuse a cached
    // mitigated landscape (hits at the mitigated or zne_factor level).
    assert!(
        delta("cache.hits.mitigated") + delta("cache.hits.zne_factor") >= 4,
        "expected mitigated/zne_factor reuse across the batch"
    );
    assert!(
        results.iter().filter(|r| r.landscape_cache_hit).count() >= 4,
        "the batch itself must have seen cache reuse"
    );
}
