//! Scheduler pins: a stress batch of 64+ mixed-size jobs produces
//! bit-identical results to sequential execution, the cache dedupes
//! repeated landscapes, and (on multi-core hosts) batch throughput
//! beats sequential execution.

use oscar_core::grid::Grid2d;
use oscar_problems::ising::IsingProblem;
use oscar_runtime::job::{run_job, JobResult, JobSpec};
use oscar_runtime::scheduler::{BatchRuntime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// 64 mixed-size jobs: 4 problem instances (4–10 qubits) × 4 grids ×
/// 4 sampling seeds, with two sampling fractions interleaved.
fn mixed_batch() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..4)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(100 + k);
            // 3-regular graphs need an even vertex count.
            IsingProblem::random_3_regular(4 + 2 * k as usize, &mut rng)
        })
        .collect();
    let grids = [
        Grid2d::small_p1(8, 10),
        Grid2d::small_p1(10, 12),
        Grid2d::small_p1(12, 14),
        Grid2d::small_p1(9, 16),
    ];
    let mut specs = Vec::new();
    for (pi, problem) in problems.iter().enumerate() {
        for (gi, grid) in grids.iter().enumerate() {
            for seed in 0..4u64 {
                let mut spec = JobSpec::new(
                    problem.clone(),
                    *grid,
                    if (pi + gi) % 2 == 0 { 0.25 } else { 0.35 },
                    1000 + seed * 17 + (pi * 4 + gi) as u64,
                );
                // Mixed pipelines: half the jobs skip the optimize stage.
                spec.optimize = seed % 2 == 0;
                specs.push(spec);
            }
        }
    }
    assert!(specs.len() >= 64);
    specs
}

fn assert_results_identical(a: &JobResult, b: &JobResult, ctx: &str) {
    assert_eq!(
        a.reconstruction.values(),
        b.reconstruction.values(),
        "{ctx}: reconstruction drifted"
    );
    assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits(), "{ctx}: nrmse drifted");
    assert_eq!(a.samples_used, b.samples_used, "{ctx}: sampling drifted");
    assert_eq!(
        a.solver_iterations, b.solver_iterations,
        "{ctx}: solver path drifted"
    );
    assert_eq!(
        (a.best_point, a.best_value.to_bits()),
        (b.best_point, b.best_value.to_bits()),
        "{ctx}: optimization drifted"
    );
}

#[test]
fn stress_64_mixed_jobs_bit_identical_to_sequential() {
    let specs = mixed_batch();
    // Sequential reference: every job inline on this thread, no cache.
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();

    // Scheduled: 4 executors, shared cache, same specs.
    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 8,
    });
    let scheduled = runtime.run_batch(specs.clone());

    assert_eq!(scheduled.len(), sequential.len());
    for (i, (seq, sched)) in sequential.iter().zip(&scheduled).enumerate() {
        assert_results_identical(seq, sched, &format!("job {i}"));
    }
    // Results arrive in submission order with 1-based ids.
    for (i, r) in scheduled.iter().enumerate() {
        assert_eq!(r.job_id, i as u64 + 1);
    }
    assert_eq!(runtime.completed(), specs.len() as u64);

    // 16 distinct (problem, grid) landscapes served 64 jobs; in-flight
    // dedup means concurrent requests for one key compute it once. Only
    // an eviction-then-revisit can add misses beyond the 16 first
    // touches, and with 4 executors at most 4 groups are in flight
    // against a capacity of 8.
    let stats = runtime.cache_stats();
    assert!(
        stats.hits >= 44,
        "cache barely used: {stats:?} (expected ~48 of the repeats to hit)"
    );
}

#[test]
fn rescheduling_the_same_batch_is_deterministic() {
    let specs: Vec<JobSpec> = mixed_batch().into_iter().take(16).collect();
    let a = BatchRuntime::with_concurrency(3).run_batch(specs.clone());
    let b = BatchRuntime::with_concurrency(2).run_batch(specs);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_results_identical(x, y, &format!("job {i} across concurrency 3 vs 2"));
    }
}

#[test]
fn handles_resolve_out_of_order_submissions() {
    let mut rng = StdRng::seed_from_u64(500);
    let problem = IsingProblem::random_3_regular(6, &mut rng);
    let runtime = BatchRuntime::with_concurrency(2);
    let handles: Vec<_> = (0..6)
        .map(|seed| {
            runtime.submit(JobSpec::new(
                problem.clone(),
                Grid2d::small_p1(8, 10),
                0.3,
                seed,
            ))
        })
        .collect();
    // Wait in reverse submission order; ids must still match.
    for (k, handle) in handles.into_iter().enumerate().rev() {
        let id = handle.id();
        assert_eq!(id, k as u64 + 1);
        let result = handle.wait();
        assert_eq!(result.job_id, id);
        assert!(result.nrmse.is_finite());
    }
}

#[test]
fn batch_throughput_beats_sequential_on_multicore() {
    // A batch of 16 jobs over 4 distinct landscapes. On a multi-core
    // host the scheduler must beat back-to-back sequential execution;
    // on a single-core container we only verify identical results (the
    // interleaving still must not corrupt anything).
    let specs: Vec<JobSpec> = mixed_batch().into_iter().take(16).collect();

    let t0 = Instant::now();
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();
    let seq_wall = t0.elapsed();

    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 8,
    });
    let t1 = Instant::now();
    let scheduled = runtime.run_batch(specs);
    let sched_wall = t1.elapsed();

    for (i, (seq, sched)) in sequential.iter().zip(&scheduled).enumerate() {
        assert_results_identical(seq, sched, &format!("job {i}"));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("batch of 16: sequential {seq_wall:?}, scheduled(4) {sched_wall:?} on {cores} cores");
    if cores >= 4 {
        assert!(
            sched_wall < seq_wall.mul_f64(0.9),
            "no throughput gain on {cores} cores: sequential {seq_wall:?} vs scheduled {sched_wall:?}"
        );
    }
}

#[test]
fn dropping_runtime_with_queued_jobs_does_not_hang() {
    let mut rng = StdRng::seed_from_u64(9);
    let problem = IsingProblem::random_3_regular(4, &mut rng);
    let runtime = BatchRuntime::with_concurrency(1);
    // Queue more jobs than the single executor can finish instantly,
    // then drop without waiting: shutdown must complete.
    for seed in 0..8 {
        let _ = runtime.submit(JobSpec::new(
            problem.clone(),
            Grid2d::small_p1(8, 10),
            0.3,
            seed,
        ));
    }
    drop(runtime);
}
