//! Scheduler pins: a stress batch of 64+ mixed-size jobs produces
//! bit-identical results to sequential execution, the cache dedupes
//! repeated landscapes, and (on multi-core hosts) batch throughput
//! beats sequential execution.

use oscar_core::grid::Grid2d;
use oscar_problems::ising::IsingProblem;
use oscar_runtime::job::{run_job, JobResult, JobSpec};
use oscar_runtime::scheduler::{BatchRuntime, Priority, RuntimeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// 64 mixed-size jobs: 4 problem instances (4–10 qubits) × 4 grids ×
/// 4 sampling seeds, with two sampling fractions interleaved.
fn mixed_batch() -> Vec<JobSpec> {
    let problems: Vec<IsingProblem> = (0..4)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(100 + k);
            // 3-regular graphs need an even vertex count.
            IsingProblem::random_3_regular(4 + 2 * k as usize, &mut rng)
        })
        .collect();
    let grids = [
        Grid2d::small_p1(8, 10),
        Grid2d::small_p1(10, 12),
        Grid2d::small_p1(12, 14),
        Grid2d::small_p1(9, 16),
    ];
    let mut specs = Vec::new();
    for (pi, problem) in problems.iter().enumerate() {
        for (gi, grid) in grids.iter().enumerate() {
            for seed in 0..4u64 {
                let mut spec = JobSpec::new(
                    problem.clone(),
                    *grid,
                    if (pi + gi) % 2 == 0 { 0.25 } else { 0.35 },
                    1000 + seed * 17 + (pi * 4 + gi) as u64,
                );
                // Mixed pipelines: half the jobs skip the optimize stage.
                spec.descent = if seed % 2 == 0 {
                    oscar_runtime::descent::Descent::NelderMead
                } else {
                    oscar_runtime::descent::Descent::None
                };
                specs.push(spec);
            }
        }
    }
    assert!(specs.len() >= 64);
    specs
}

fn assert_results_identical(a: &JobResult, b: &JobResult, ctx: &str) {
    assert_eq!(
        a.reconstruction.values(),
        b.reconstruction.values(),
        "{ctx}: reconstruction drifted"
    );
    assert_eq!(a.nrmse.to_bits(), b.nrmse.to_bits(), "{ctx}: nrmse drifted");
    assert_eq!(a.samples_used, b.samples_used, "{ctx}: sampling drifted");
    assert_eq!(
        a.solver_iterations, b.solver_iterations,
        "{ctx}: solver path drifted"
    );
    assert_eq!(
        (&a.best_point, a.best_value.to_bits()),
        (&b.best_point, b.best_value.to_bits()),
        "{ctx}: optimization drifted"
    );
}

#[test]
fn stress_64_mixed_jobs_bit_identical_to_sequential() {
    let specs = mixed_batch();
    // Sequential reference: every job inline on this thread, no cache.
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();

    // Scheduled: 4 executors, shared cache, same specs.
    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    let scheduled = runtime.run_batch(specs.clone()).expect("no job panics");

    assert_eq!(scheduled.len(), sequential.len());
    for (i, (seq, sched)) in sequential.iter().zip(&scheduled).enumerate() {
        assert_results_identical(seq, sched, &format!("job {i}"));
    }
    // Results arrive in submission order with 1-based ids.
    for (i, r) in scheduled.iter().enumerate() {
        assert_eq!(r.job_id, i as u64 + 1);
    }
    assert_eq!(runtime.completed(), specs.len() as u64);

    // 16 distinct (problem, grid) landscapes served 64 jobs; in-flight
    // dedup means concurrent requests for one key compute it once. Only
    // an eviction-then-revisit can add misses beyond the 16 first
    // touches, and with 4 executors at most 4 groups are in flight
    // against a capacity of 8.
    let stats = runtime.cache_stats();
    assert!(
        stats.hits >= 44,
        "cache barely used: {stats:?} (expected ~48 of the repeats to hit)"
    );
}

#[test]
fn rescheduling_the_same_batch_is_deterministic() {
    let specs: Vec<JobSpec> = mixed_batch().into_iter().take(16).collect();
    let a = BatchRuntime::with_concurrency(3)
        .run_batch(specs.clone())
        .expect("no job panics");
    let b = BatchRuntime::with_concurrency(2)
        .run_batch(specs)
        .expect("no job panics");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_results_identical(x, y, &format!("job {i} across concurrency 3 vs 2"));
    }
}

#[test]
fn handles_resolve_out_of_order_submissions() {
    let mut rng = StdRng::seed_from_u64(500);
    let problem = IsingProblem::random_3_regular(6, &mut rng);
    let runtime = BatchRuntime::with_concurrency(2);
    let handles: Vec<_> = (0..6)
        .map(|seed| {
            runtime.submit(JobSpec::new(
                problem.clone(),
                Grid2d::small_p1(8, 10),
                0.3,
                seed,
            ))
        })
        .collect();
    // Wait in reverse submission order; ids must still match.
    for (k, handle) in handles.into_iter().enumerate().rev() {
        let id = handle.id();
        assert_eq!(id, k as u64 + 1);
        let result = handle.wait().expect("runtime is alive: no job is lost");
        assert_eq!(result.job_id, id);
        assert!(result.nrmse.is_finite());
    }
}

#[test]
fn batch_throughput_beats_sequential_on_multicore() {
    // A batch of 16 jobs over 4 distinct landscapes. On a multi-core
    // host the scheduler must beat back-to-back sequential execution;
    // on a single-core container we only verify identical results (the
    // interleaving still must not corrupt anything).
    let specs: Vec<JobSpec> = mixed_batch().into_iter().take(16).collect();

    let t0 = Instant::now();
    let sequential: Vec<JobResult> = specs.iter().map(|s| run_job(s, None)).collect();
    let seq_wall = t0.elapsed();

    let runtime = BatchRuntime::new(RuntimeConfig {
        concurrency: 4,
        landscape_cache_capacity: 8,
        ..RuntimeConfig::default()
    });
    let t1 = Instant::now();
    let scheduled = runtime.run_batch(specs).expect("no job panics");
    let sched_wall = t1.elapsed();

    for (i, (seq, sched)) in sequential.iter().zip(&scheduled).enumerate() {
        assert_results_identical(seq, sched, &format!("job {i}"));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("batch of 16: sequential {seq_wall:?}, scheduled(4) {sched_wall:?} on {cores} cores");
    if cores >= 4 {
        assert!(
            sched_wall < seq_wall.mul_f64(0.9),
            "no throughput gain on {cores} cores: sequential {seq_wall:?} vs scheduled {sched_wall:?}"
        );
    }
}

#[test]
fn dropping_runtime_with_queued_jobs_does_not_hang() {
    let mut rng = StdRng::seed_from_u64(9);
    let problem = IsingProblem::random_3_regular(4, &mut rng);
    let runtime = BatchRuntime::with_concurrency(1);
    // Queue more jobs than the single executor can finish instantly,
    // then drop without waiting: shutdown must complete.
    for seed in 0..8 {
        let _ = runtime.submit(JobSpec::new(
            problem.clone(),
            Grid2d::small_p1(8, 10),
            0.3,
            seed,
        ));
    }
    drop(runtime);
}

#[test]
fn dropped_runtime_reports_queued_jobs_as_lost() {
    let mut rng = StdRng::seed_from_u64(10);
    let slow_problem = IsingProblem::random_3_regular(10, &mut rng);
    let quick_problem = IsingProblem::random_3_regular(4, &mut rng);
    let runtime = BatchRuntime::with_concurrency(1);
    // The first job is deliberately heavy (a 30x30 landscape of
    // 10-qubit evaluations, hundreds of milliseconds) so the single
    // executor is still inside it when the drop below raises the
    // shutdown flag — the seven quick jobs behind it are deterministic
    // abandonments.
    let mut handles =
        vec![runtime.submit(JobSpec::new(slow_problem, Grid2d::small_p1(30, 30), 0.2, 0))];
    handles.extend((1..8).map(|seed| {
        runtime.submit(JobSpec::new(
            quick_problem.clone(),
            Grid2d::small_p1(8, 10),
            0.3,
            seed,
        ))
    }));
    // Drop with the queue still full: everything not yet started is
    // abandoned and must surface as Err(JobLost) — not a panic, not a
    // hang.
    drop(runtime);
    let mut lost = 0;
    for handle in handles {
        let id = handle.id();
        match handle.wait() {
            Ok(result) => assert_eq!(result.job_id, id),
            Err(err) => {
                assert_eq!(err.job_id(), id);
                // The error is a std::error::Error with a useful message.
                assert!(err.to_string().contains("shut down"));
                lost += 1;
            }
        }
    }
    assert!(
        lost >= 7,
        "only the in-flight heavy job can complete, {lost} lost"
    );
}

#[test]
fn panicking_job_is_reported_lost_and_runtime_survives() {
    let mut rng = StdRng::seed_from_u64(11);
    let problem = IsingProblem::random_3_regular(4, &mut rng);
    // Concurrency 1: the *only* executor must survive the poison job,
    // or every job queued behind it would hang forever.
    let runtime = BatchRuntime::with_concurrency(1);
    // fraction > 1 violates the sampler's contract and panics
    // mid-pipeline.
    let mut poison = JobSpec::new(problem.clone(), Grid2d::small_p1(8, 10), 0.3, 1);
    poison.fraction = 2.0;
    let bad = runtime.submit(poison);
    let good = runtime.submit(JobSpec::new(problem, Grid2d::small_p1(8, 10), 0.3, 2));
    assert!(bad.wait().is_err(), "panicked job must surface as JobLost");
    // The same executor contained the panic and keeps draining.
    let result = good.wait().expect("healthy job still completes");
    assert!(result.nrmse.is_finite());
    assert_eq!(runtime.completed(), 1, "panicked job must not count");
}

/// A deliberately heavy spec (a 30x30 landscape of 10-qubit
/// evaluations, hundreds of milliseconds) that keeps a single executor
/// busy while the test stages the queue behind it.
fn blocker_spec(rng_seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let problem = IsingProblem::random_3_regular(10, &mut rng);
    JobSpec::new(problem, Grid2d::small_p1(30, 30), 0.2, 0)
}

fn quick_spec(rng_seed: u64, seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let problem = IsingProblem::random_3_regular(4, &mut rng);
    JobSpec::new(problem, Grid2d::small_p1(8, 10), 0.3, seed)
}

#[test]
fn priority_order_pins_dispatch_high_first_fifo_within_level() {
    // One executor, blocked on a heavy job while five more are staged:
    // the queue must release them priority-first, FIFO within a level,
    // regardless of submission order.
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(20));
    let low_1 = runtime.submit_with_priority(quick_spec(21, 1), Priority::Low);
    let normal_1 = runtime.submit(quick_spec(21, 2));
    let high_1 = runtime.submit_with_priority(quick_spec(21, 3), Priority::High);
    let high_2 = runtime.submit_with_priority(quick_spec(21, 4), Priority::High);
    let low_2 = runtime.submit_with_priority(quick_spec(21, 5), Priority::Low);

    let seq = |h: oscar_runtime::scheduler::JobHandle| {
        h.wait()
            .expect("runtime is alive; no job panics")
            .dispatch_seq
    };
    // The heavy job occupies the executor while the rest stage, so the
    // staged jobs drain strictly by priority, FIFO within a level:
    // high_1, high_2, normal_1, low_1, low_2. (The blocker itself
    // dispatches first in practice, but asserting only the relative
    // order keeps the pin robust to scheduler wake-up jitter: the
    // ordering below holds under every interleaving, because the
    // executor can only pop a lower-priority staged job after every
    // higher-priority one already dispatched.)
    let order = [
        seq(high_1),
        seq(high_2),
        seq(normal_1),
        seq(low_1),
        seq(low_2),
    ];
    assert!(
        order.windows(2).all(|w| w[0] < w[1]),
        "staged jobs must dispatch high->normal->low, FIFO within level: {order:?}"
    );
    let _ = seq(blocker);
}

#[test]
fn priorities_do_not_change_results() {
    // The same spec run at every priority level produces bit-identical
    // payloads: priority is a scheduling knob, not a pipeline input.
    let spec = quick_spec(22, 7);
    let reference = run_job(&spec, None);
    let runtime = BatchRuntime::with_concurrency(2);
    for priority in [Priority::Low, Priority::Normal, Priority::High] {
        let r = runtime
            .submit_with_priority(spec.clone(), priority)
            .wait()
            .expect("runtime is alive");
        assert_results_identical(&reference, &r, &format!("{priority:?}"));
    }
}

#[test]
fn cancelling_a_queued_job_drops_it_without_running() {
    let runtime = BatchRuntime::with_concurrency(1);
    let blocker = runtime.submit(blocker_spec(23));
    let victim = runtime.submit(quick_spec(24, 1));
    let survivor = runtime.submit(quick_spec(24, 2));

    assert!(victim.cancel(), "still queued: cancel must win");
    assert!(!victim.cancel(), "second cancel is a no-op");

    // The queue keeps draining past the cancelled entry.
    assert!(blocker.wait().is_ok());
    assert!(survivor.wait().is_ok());
    let err = victim.wait().expect_err("cancelled job has no result");
    assert!(err.was_cancelled());
    assert!(err.to_string().contains("cancelled"));

    // The victim never consumed an executor: only blocker + survivor
    // completed, and the drop was accounted.
    assert_eq!(runtime.completed(), 2);
    assert_eq!(runtime.cancelled(), 1);
}

#[test]
fn cancelling_a_completed_job_still_delivers_its_result() {
    let runtime = BatchRuntime::with_concurrency(1);
    let handle = runtime.submit(quick_spec(25, 3));
    // Wait out the race: the job is tiny, so it finishes quickly.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_finished() {
        assert!(Instant::now() < deadline, "quick job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!handle.cancel(), "a finished job cannot be cancelled");
    let result = handle.wait().expect("result must still be delivered");
    assert!(result.nrmse.is_finite());
    assert_eq!(runtime.cancelled(), 0);
}

#[test]
fn run_batch_reports_panicked_job_as_err() {
    let runtime = BatchRuntime::with_concurrency(2);
    // fraction > 1 violates the sampler's contract and panics
    // mid-pipeline; run_batch must surface that as Err, not unwind.
    let mut poison = quick_spec(26, 1);
    poison.fraction = 2.0;
    let specs = vec![quick_spec(26, 2), poison, quick_spec(26, 3)];
    let err = runtime
        .run_batch(specs)
        .expect_err("a panicked batch job must surface as Err");
    assert_eq!(err.job_id(), 2, "the poison job was the second submitted");
    assert!(!err.was_cancelled());
    // The runtime survives for the next batch.
    let ok = runtime
        .run_batch(vec![quick_spec(26, 4)])
        .expect("healthy batch after a poisoned one");
    assert_eq!(ok.len(), 1);
}

#[test]
fn dct_plans_are_reused_across_jobs() {
    // Both grid sides are >= 32 (FFT kernels) and 2·3·5-smooth, so the
    // jobs run on cached mixed-radix plans; the plan Arc observed
    // before the batch must still be the cached one afterwards.
    use oscar_cs::fft::FftStrategy;
    let before_36 = oscar_cs::plan_cache::plan(36);
    let before_45 = oscar_cs::plan_cache::plan(45);
    assert_eq!(before_36.strategy(), FftStrategy::MixedRadix);
    assert_eq!(before_45.strategy(), FftStrategy::MixedRadix);
    let stats_before = oscar_cs::plan_cache::stats();

    let mut rng = StdRng::seed_from_u64(12);
    let problem = IsingProblem::random_3_regular(6, &mut rng);
    let runtime = BatchRuntime::with_concurrency(2);
    let specs: Vec<JobSpec> = (0..3)
        .map(|seed| JobSpec::new(problem.clone(), Grid2d::small_p1(36, 45), 0.2, seed))
        .collect();
    let results = runtime.run_batch(specs).expect("no job panics");
    assert_eq!(results.len(), 3);

    let after_36 = oscar_cs::plan_cache::plan(36);
    let after_45 = oscar_cs::plan_cache::plan(45);
    assert!(
        std::sync::Arc::ptr_eq(&before_36, &after_36),
        "jobs must reuse the cached 36-plan, not replace it"
    );
    assert!(std::sync::Arc::ptr_eq(&before_45, &after_45));
    let stats_after = oscar_cs::plan_cache::stats();
    assert!(
        stats_after.hits >= stats_before.hits + 2,
        "batch jobs must hit the plan cache: {stats_before:?} -> {stats_after:?}"
    );
}
