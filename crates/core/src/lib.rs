//! # oscar-core — compressed-sensing VQA landscape reconstruction
//!
//! The primary contribution of the reproduced paper (*Enabling High
//! Performance Debugging for Variational Quantum Algorithms using
//! Compressed Sensing*, ISCA 2023): OSCAR reconstructs an entire VQA cost
//! landscape from a small random subset of circuit executions by
//! exploiting the landscape's sparsity in the DCT domain, then drives
//! three debugging use cases on top of the reconstruction.
//!
//! * [`grid`] / [`landscape`] — parameter grids (paper Table 1) and
//!   landscapes over them;
//! * [`reconstruct::Reconstructor`] — the sampling + FISTA recovery
//!   pipeline;
//! * [`metrics`] — NRMSE and the landscape-shape metrics (Eqs. 1–4);
//! * [`interpolate`] — rectangular bivariate splines for instant
//!   optimizer queries;
//! * [`reshape`] — the 4-D → 2-D reshaping used for p=2 QAOA;
//! * [`usecases`] — noise-mitigation benchmarking, optimizer debugging,
//!   and OSCAR-based initialization.
//!
//! # Example
//!
//! ```
//! use oscar_core::prelude::*;
//! use oscar_problems::ising::IsingProblem;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let problem = IsingProblem::random_3_regular(8, &mut rng);
//! let truth = Landscape::from_qaoa(Grid2d::small_p1(20, 28), &problem.qaoa_evaluator());
//! let report = Reconstructor::default().reconstruct_fraction(&truth, 0.2, &mut rng);
//! assert!(report.nrmse < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod grid;
pub mod interpolate;
pub mod io;
pub mod landscape;
pub mod metrics;
pub mod reconstruct;
pub mod reshape;
pub mod reshape_nd;
pub mod usecases;

/// Glob-import of the most used types.
pub mod prelude {
    pub use crate::grid::{Axis, Grid2d, Grid4d, Shape, TensorShape};
    pub use crate::interpolate::{BivariateSpline, CubicSpline, MultilinearInterp};
    pub use crate::io::{read_csv, write_csv, LandscapeRecord};
    pub use crate::landscape::{Landscape, NdLandscape, ShapedLandscape};
    pub use crate::metrics::{nrmse, LandscapeMetrics};
    pub use crate::reconstruct::{NdReconstructionReport, ReconstructionReport, Reconstructor};
    pub use crate::reshape_nd::GridNd;
    pub use crate::usecases::initialization::{compare_initialization, InitializationReport};
    pub use crate::usecases::mitigation::{MitigationMetrics, ZneLandscapes};
    pub use crate::usecases::optimizer_debug::{
        compare_paths, optimize_on_reconstruction, optimize_on_reconstruction_nd, PathComparison,
    };
    pub use crate::usecases::slices::{slice_reconstruction, SliceConfig, SliceReport};
}
