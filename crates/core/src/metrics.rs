//! Landscape quality and shape metrics (paper Eqs. 1–4).

use crate::landscape::quantile_sorted;

/// Normalized root-mean-square error between a true landscape `x` and a
/// reconstruction `y` (paper Eq. 1):
///
/// `NRMSE = sqrt(sum (x_t - y_t)^2 / T) / (Q3(x) - Q1(x))`.
///
/// Scale-invariant, so errors are comparable across problems.
///
/// # Panics
///
/// Panics if lengths differ or the inputs are empty.
///
/// # Examples
///
/// ```
/// let truth = vec![0.0, 1.0, 2.0, 3.0];
/// assert_eq!(oscar_core::metrics::nrmse(&truth, &truth), 0.0);
/// ```
pub fn nrmse(truth: &[f64], recon: &[f64]) -> f64 {
    assert_eq!(truth.len(), recon.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty landscapes");
    let mse: f64 = truth
        .iter()
        .zip(recon.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / truth.len() as f64;
    let mut sorted = truth.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let iqr = quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25);
    if iqr <= 0.0 {
        // Degenerate (constant) truth: fall back to un-normalized RMSE.
        return mse.sqrt();
    }
    mse.sqrt() / iqr
}

/// Mean squared second-order difference along a 1-D signal (paper Eq. 2):
/// `D2 = sum_i (x_i - 2 x_{i-1} + x_{i-2})^2 / 4` — the roughness measure.
///
/// Returns 0 for signals shorter than 3.
pub fn second_derivative_1d(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    x.windows(3)
        .map(|w| {
            let d = w[2] - 2.0 * w[1] + w[0];
            d * d / 4.0
        })
        .sum()
}

/// Variance of first differences along a 1-D signal (paper Eq. 3): the
/// variance-of-gradients flatness/barren-plateau measure.
pub fn variance_of_gradients_1d(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let grads: Vec<f64> = x.windows(2).map(|w| w[1] - w[0]).collect();
    variance(&grads)
}

/// Plain variance of a signal (paper Eq. 4).
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64
}

/// The paper's three landscape-shape metrics averaged over all rows and
/// columns of a row-major 2-D landscape (the paper computes "average
/// metrics on all dimensions").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LandscapeMetrics {
    /// Average roughness (Eq. 2).
    pub second_derivative: f64,
    /// Average variance of gradients (Eq. 3).
    pub variance_of_gradients: f64,
    /// Variance of the landscape values (Eq. 4).
    pub variance: f64,
}

impl LandscapeMetrics {
    /// Computes all three metrics for a `rows x cols` landscape.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn compute(values: &[f64], rows: usize, cols: usize) -> Self {
        assert_eq!(values.len(), rows * cols, "grid size mismatch");
        let mut d2 = 0.0;
        let mut vog = 0.0;
        let mut lines = 0usize;
        for r in 0..rows {
            let row = &values[r * cols..(r + 1) * cols];
            d2 += second_derivative_1d(row);
            vog += variance_of_gradients_1d(row);
            lines += 1;
        }
        let mut col_buf = vec![0.0; rows];
        for c in 0..cols {
            for r in 0..rows {
                col_buf[r] = values[r * cols + c];
            }
            d2 += second_derivative_1d(&col_buf);
            vog += variance_of_gradients_1d(&col_buf);
            lines += 1;
        }
        LandscapeMetrics {
            second_derivative: d2 / lines as f64,
            variance_of_gradients: vog / lines as f64,
            variance: variance(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nrmse_zero_for_identical() {
        let x = vec![1.0, 5.0, -2.0, 7.0];
        assert_eq!(nrmse(&x, &x), 0.0);
    }

    #[test]
    fn nrmse_scale_invariant() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.17).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 0.01).collect();
        let x10: Vec<f64> = x.iter().map(|v| v * 10.0).collect();
        let y10: Vec<f64> = y.iter().map(|v| v * 10.0).collect();
        assert!((nrmse(&x, &y) - nrmse(&x10, &y10)).abs() < 1e-12);
    }

    #[test]
    fn nrmse_constant_truth_falls_back() {
        let x = vec![2.0; 10];
        let y = vec![3.0; 10];
        assert!((nrmse(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn second_derivative_of_line_is_zero() {
        let x: Vec<f64> = (0..20).map(|i| 3.0 * i as f64 + 1.0).collect();
        assert!(second_derivative_1d(&x) < 1e-20);
    }

    #[test]
    fn second_derivative_detects_jaggedness() {
        let smooth: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let jagged: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.1).sin() + if i % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        assert!(second_derivative_1d(&jagged) > 10.0 * second_derivative_1d(&smooth));
    }

    #[test]
    fn vog_zero_for_line() {
        let x: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        assert!(variance_of_gradients_1d(&x) < 1e-20);
    }

    #[test]
    fn vog_detects_flat_regions() {
        // A barren-plateau-like landscape (nearly flat) has tiny VoG
        // compared to a steep sinusoid.
        let flat: Vec<f64> = (0..50).map(|i| 1e-4 * (i as f64 * 0.3).sin()).collect();
        let steep: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!(variance_of_gradients_1d(&flat) < 1e-6 * variance_of_gradients_1d(&steep) + 1e-12);
    }

    #[test]
    fn variance_known_value() {
        let x = vec![1.0, 3.0];
        assert!((variance(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_2d_averages_rows_and_cols() {
        // Constant landscape: all metrics zero.
        let v = vec![5.0; 12];
        let m = LandscapeMetrics::compute(&v, 3, 4);
        assert_eq!(m.second_derivative, 0.0);
        assert_eq!(m.variance_of_gradients, 0.0);
        assert_eq!(m.variance, 0.0);
    }

    #[test]
    fn metrics_2d_nonzero_for_structure() {
        let rows = 10;
        let cols = 10;
        let v: Vec<f64> = (0..100)
            .map(|i| ((i / cols) as f64 * 0.7).sin() * ((i % cols) as f64 * 0.5).cos())
            .collect();
        let m = LandscapeMetrics::compute(&v, rows, cols);
        assert!(m.second_derivative > 0.0);
        assert!(m.variance_of_gradients > 0.0);
        assert!(m.variance > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn nrmse_rejects_mismatch() {
        let _ = nrmse(&[1.0], &[1.0, 2.0]);
    }
}
