//! Landscapes: cost values over a 2-D parameter grid or an N-D tensor.

use crate::grid::{Grid2d, Shape, TensorShape};
use oscar_qsim::qaoa::QaoaEvaluator;

/// A cost landscape over a [`Grid2d`] (row-major values, rows = β).
///
/// # Examples
///
/// ```
/// use oscar_core::grid::Grid2d;
/// use oscar_core::landscape::Landscape;
///
/// let grid = Grid2d::small_p1(6, 8);
/// let flat = Landscape::generate(grid, |beta, gamma| beta + gamma);
/// assert_eq!(flat.values().len(), 48);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Landscape {
    grid: Grid2d,
    values: Vec<f64>,
}

impl Landscape {
    /// Wraps existing row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != grid.len()`.
    pub fn from_values(grid: Grid2d, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), grid.len(), "value count must match grid");
        Landscape { grid, values }
    }

    /// Evaluates `f(beta, gamma)` at every grid point (the "grid search").
    pub fn generate(grid: Grid2d, mut f: impl FnMut(f64, f64) -> f64) -> Self {
        let mut values = Vec::with_capacity(grid.len());
        for r in 0..grid.rows() {
            let beta = grid.beta.value(r);
            for c in 0..grid.cols() {
                values.push(f(beta, grid.gamma.value(c)));
            }
        }
        Landscape { grid, values }
    }

    /// Like [`Self::generate`], but with grid points evaluated in
    /// parallel (row-aligned chunks across worker threads). Requires a
    /// shareable evaluation closure; results are identical to
    /// [`Self::generate`] for any pure `f`.
    pub fn generate_par(grid: Grid2d, f: impl Fn(f64, f64) -> f64 + Sync) -> Self {
        Landscape::generate_indexed_par(grid, |_, beta, gamma| f(beta, gamma))
    }

    /// Parallel generation where the closure also receives the flat
    /// (row-major) point index — the hook for per-point seeded noise:
    /// a counter-based draw keyed by the index makes the result
    /// independent of chunk scheduling. Results are identical to a
    /// serial index loop for any pure `f`.
    pub fn generate_indexed_par(grid: Grid2d, f: impl Fn(usize, f64, f64) -> f64 + Sync) -> Self {
        let cols = grid.cols();
        let mut values = vec![0.0; grid.len()];
        oscar_par::for_each_chunk_mut(&mut values, cols, |offset, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                let i = offset + k;
                let beta = grid.beta.value(i / cols);
                let gamma = grid.gamma.value(i % cols);
                *v = f(i, beta, gamma);
            }
        });
        Landscape { grid, values }
    }

    /// Generates the exact p=1 QAOA landscape using the fast evaluator.
    ///
    /// Grid points are independent circuit evaluations, so they run in
    /// parallel across worker threads ([`Self::generate_par`]); inside a
    /// worker the evaluator's own gate-level parallelism stands down
    /// automatically (`oscar-par` regions do not nest).
    pub fn from_qaoa(grid: Grid2d, eval: &QaoaEvaluator) -> Self {
        Landscape::generate_par(grid, |beta, gamma| eval.expectation(&[beta], &[gamma]))
    }

    /// The grid.
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (e.g. for noise injection).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.grid.rows() && col < self.grid.cols());
        self.values[row * self.grid.cols() + col]
    }

    /// The minimum value and its `(beta, gamma)` location.
    pub fn argmin(&self) -> (f64, (f64, f64)) {
        let (idx, &val) = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("landscape is non-empty");
        (val, self.grid.point(idx))
    }

    /// The maximum value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The minimum value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Interquartile range `Q3 - Q1` of the values — the normalizer of the
    /// paper's NRMSE metric (Eq. 1).
    pub fn iqr(&self) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25)
    }
}

/// A cost landscape over a [`TensorShape`] (row-major values, last axis
/// contiguous) — p >= 2 QAOA and VQE parameter scans.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::{Axis, TensorShape};
/// use oscar_core::landscape::NdLandscape;
///
/// let shape = TensorShape::new(vec![
///     Axis::new(-1.0, 1.0, 3),
///     Axis::new(-1.0, 1.0, 3),
///     Axis::new(-1.0, 1.0, 3),
/// ]);
/// let l = NdLandscape::generate(shape, |p| p.iter().map(|x| x * x).sum());
/// assert_eq!(l.values().len(), 27);
/// assert_eq!(l.argmin().1, vec![0.0, 0.0, 0.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NdLandscape {
    shape: TensorShape,
    values: Vec<f64>,
}

impl NdLandscape {
    /// Wraps existing row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != shape.len()`.
    pub fn from_values(shape: TensorShape, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), shape.len(), "value count must match shape");
        NdLandscape { shape, values }
    }

    /// Evaluates `f(params)` at every tensor point, serially.
    pub fn generate(shape: TensorShape, mut f: impl FnMut(&[f64]) -> f64) -> Self {
        let values = (0..shape.len()).map(|i| f(&shape.point(i))).collect();
        NdLandscape { shape, values }
    }

    /// Parallel generation where the closure receives the flat
    /// (row-major) point index and the parameter vector — the same
    /// per-point counter-RNG hook as [`Landscape::generate_indexed_par`]:
    /// keying any stochastic draw by `i` makes the result independent of
    /// chunk scheduling. Results are identical to a serial index loop
    /// for any pure `f`.
    pub fn generate_indexed_par(
        shape: TensorShape,
        f: impl Fn(usize, &[f64]) -> f64 + Sync,
    ) -> Self {
        let chunk = shape.axes().last().map(|a| a.n).unwrap_or(1);
        let mut values = vec![0.0; shape.len()];
        oscar_par::for_each_chunk_mut(&mut values, chunk, |offset, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                let i = offset + k;
                *v = f(i, &shape.point(i));
            }
        });
        NdLandscape { shape, values }
    }

    /// The shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Row-major values (last axis contiguous).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the values (e.g. for noise injection).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The minimum value and its parameter-vector location.
    pub fn argmin(&self) -> (f64, Vec<f64>) {
        let (idx, &val) = self
            .values
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("landscape is non-empty");
        (val, self.shape.point(idx))
    }

    /// Interquartile range `Q3 - Q1` of the values (the paper's NRMSE
    /// normalizer).
    pub fn iqr(&self) -> f64 {
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25)
    }
}

/// A landscape of either shape, as produced by the shape-generic job
/// pipeline: the classic 2-D grid variant or the N-D tensor variant.
#[derive(Clone, Debug, PartialEq)]
pub enum ShapedLandscape {
    /// A [`Landscape`] over a [`Grid2d`].
    Grid2d(Landscape),
    /// An [`NdLandscape`] over a [`TensorShape`].
    Tensor(NdLandscape),
}

impl ShapedLandscape {
    /// The shape this landscape sweeps.
    pub fn shape(&self) -> Shape {
        match self {
            ShapedLandscape::Grid2d(l) => Shape::Grid2d(*l.grid()),
            ShapedLandscape::Tensor(l) => Shape::Tensor(l.shape().clone()),
        }
    }

    /// Per-axis point counts.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            ShapedLandscape::Grid2d(l) => vec![l.grid().rows(), l.grid().cols()],
            ShapedLandscape::Tensor(l) => l.shape().dims(),
        }
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        match self {
            ShapedLandscape::Grid2d(l) => l.values(),
            ShapedLandscape::Tensor(l) => l.values(),
        }
    }

    /// The minimum value and its parameter-vector location.
    pub fn argmin(&self) -> (f64, Vec<f64>) {
        match self {
            ShapedLandscape::Grid2d(l) => {
                let (v, (b, g)) = l.argmin();
                (v, vec![b, g])
            }
            ShapedLandscape::Tensor(l) => l.argmin(),
        }
    }

    /// The underlying 2-D landscape, if this is the grid variant.
    pub fn as_grid2d(&self) -> Option<&Landscape> {
        match self {
            ShapedLandscape::Grid2d(l) => Some(l),
            ShapedLandscape::Tensor(_) => None,
        }
    }

    /// The underlying N-D landscape, if this is the tensor variant.
    pub fn as_tensor(&self) -> Option<&NdLandscape> {
        match self {
            ShapedLandscape::Grid2d(_) => None,
            ShapedLandscape::Tensor(l) => Some(l),
        }
    }
}

impl From<Landscape> for ShapedLandscape {
    fn from(l: Landscape) -> Self {
        ShapedLandscape::Grid2d(l)
    }
}

impl From<NdLandscape> for ShapedLandscape {
    fn from(l: NdLandscape) -> Self {
        ShapedLandscape::Tensor(l)
    }
}

/// Linear-interpolated quantile of pre-sorted data.
pub(crate) fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;

    #[test]
    fn generate_orders_row_major() {
        let grid = Grid2d::small_p1(3, 4);
        let l = Landscape::generate(grid, |b, g| b * 1000.0 + g);
        // Row-major: first row sweeps gamma at fixed (lowest) beta.
        assert!(l.at(0, 0) < l.at(0, 3));
        assert!(l.at(0, 0) < l.at(1, 0));
    }

    #[test]
    fn argmin_finds_minimum() {
        let grid = Grid2d::small_p1(11, 11);
        let l = Landscape::generate(grid, |b, g| (b - grid.beta.value(3)).powi(2) + g.powi(2));
        let (val, (b, g)) = l.argmin();
        assert!(val < 1e-12);
        assert!((b - grid.beta.value(3)).abs() < 1e-12);
        assert!(g.abs() < 1e-9);
    }

    #[test]
    fn iqr_of_uniform_ramp() {
        let grid = Grid2d::small_p1(2, 101);
        // values 0..=100 twice: IQR = 50.
        let mut c = -1.0;
        let l = Landscape::generate(grid, |_, _| {
            c += 1.0;
            c % 101.0
        });
        assert!((l.iqr() - 50.0).abs() < 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let data = vec![0.0, 1.0, 2.0, 3.0];
        assert!((quantile_sorted(&data, 0.5) - 1.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&data, 0.0), 0.0);
        assert_eq!(quantile_sorted(&data, 1.0), 3.0);
    }

    #[test]
    fn from_qaoa_matches_direct_eval() {
        use oscar_qsim::qaoa::QaoaEvaluator;
        let eval = QaoaEvaluator::new(2, vec![0.0, -1.0, -1.0, 0.0]);
        let grid = Grid2d::small_p1(4, 4);
        let l = Landscape::from_qaoa(grid, &eval);
        let (b, g) = grid.point(5);
        assert!((l.values()[5] - eval.expectation(&[b], &[g])).abs() < 1e-12);
    }

    #[test]
    fn generate_indexed_par_passes_flat_indices() {
        let grid = Grid2d::small_p1(5, 7);
        let l = Landscape::generate_indexed_par(grid, |i, _, _| i as f64);
        let expect: Vec<f64> = (0..grid.len()).map(|i| i as f64).collect();
        assert_eq!(l.values(), &expect[..]);
    }

    #[test]
    #[should_panic(expected = "value count must match grid")]
    fn rejects_wrong_length() {
        let _ = Landscape::from_values(Grid2d::small_p1(3, 3), vec![0.0; 5]);
    }

    #[test]
    fn nd_generate_indexed_par_matches_serial_generate() {
        use crate::grid::Axis;
        let shape = TensorShape::new(vec![
            Axis::new(-1.0, 1.0, 3),
            Axis::new(0.0, 2.0, 4),
            Axis::new(-0.5, 0.5, 5),
        ]);
        let f = |p: &[f64]| p[0] * 7.0 + p[1] * p[1] - p[2];
        let serial = NdLandscape::generate(shape.clone(), f);
        let par = NdLandscape::generate_indexed_par(shape, |_, p| f(p));
        assert_eq!(serial.values(), par.values());
    }

    #[test]
    fn nd_argmin_reports_parameter_vector() {
        use crate::grid::Axis;
        let shape = TensorShape::new(vec![
            Axis::new(-1.0, 1.0, 5),
            Axis::new(-1.0, 1.0, 5),
            Axis::new(-1.0, 1.0, 5),
            Axis::new(-1.0, 1.0, 5),
        ]);
        let l = NdLandscape::generate(shape, |p| {
            (p[0] - 0.5).powi(2) + p[1].powi(2) + (p[2] + 0.5).powi(2) + p[3].powi(2)
        });
        let (val, at) = l.argmin();
        assert!(val < 1e-12);
        assert_eq!(at, vec![0.5, 0.0, -0.5, 0.0]);
    }

    #[test]
    fn shaped_landscape_unifies_both_variants() {
        use crate::grid::Axis;
        let g = Landscape::generate(Grid2d::small_p1(3, 4), |b, g| b + g);
        let shaped: ShapedLandscape = g.clone().into();
        assert_eq!(shaped.dims(), vec![3, 4]);
        assert_eq!(shaped.values(), g.values());
        let (v, at) = shaped.argmin();
        let (gv, (b, gm)) = g.argmin();
        assert_eq!((v, at), (gv, vec![b, gm]));

        let t = NdLandscape::generate(TensorShape::new(vec![Axis::new(0.0, 1.0, 2); 3]), |p| {
            p.iter().sum()
        });
        let shaped: ShapedLandscape = t.clone().into();
        assert_eq!(shaped.dims(), vec![2, 2, 2]);
        assert!(shaped.as_tensor().is_some() && shaped.as_grid2d().is_none());
    }
}
