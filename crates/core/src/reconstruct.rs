//! The OSCAR reconstruction pipeline (paper §4, Figure 3): random
//! parameter sampling → circuit execution → compressed-sensing recovery.

use crate::grid::{Grid2d, TensorShape};
use crate::landscape::{Landscape, NdLandscape};
use crate::metrics::nrmse;
use oscar_cs::dct::{Dct2d, DctNd};
use oscar_cs::fista::{fista_with, FistaConfig};
use oscar_cs::measure::{
    MeasurementOperator, MeasurementOperatorNd, NdSamplePattern, SamplePattern,
};
use oscar_cs::workspace::Workspace;
use rand::Rng;

/// OSCAR reconstruction engine.
///
/// # Examples
///
/// Reconstruct a QAOA landscape from 15% of its points:
///
/// ```
/// use oscar_core::grid::Grid2d;
/// use oscar_core::landscape::Landscape;
/// use oscar_core::reconstruct::Reconstructor;
/// use oscar_qsim::qaoa::QaoaEvaluator;
/// use rand::SeedableRng;
///
/// let eval = QaoaEvaluator::new(2, vec![0.0, -1.0, -1.0, 0.0]);
/// let truth = Landscape::from_qaoa(Grid2d::small_p1(16, 20), &eval);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let oscar = Reconstructor::default();
/// let report = oscar.reconstruct_fraction(&truth, 0.15, &mut rng);
/// assert!(report.nrmse < 0.1, "NRMSE {}", report.nrmse);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reconstructor {
    /// Sparse-recovery solver settings.
    pub fista: FistaConfig,
    /// Force the dense O(n²) DCT kernel instead of the size-based
    /// default. Only useful for baseline benchmarking
    /// (`benches/speedup.rs`) and FFT-vs-dense validation.
    pub force_dense_dct: bool,
}

/// The outcome of a reconstruction experiment against known ground truth.
#[derive(Clone, Debug)]
pub struct ReconstructionReport {
    /// The reconstructed landscape.
    pub landscape: Landscape,
    /// The sampling pattern used.
    pub pattern: SamplePattern,
    /// NRMSE against the ground truth (paper Eq. 1).
    pub nrmse: f64,
    /// Number of circuit evaluations used (`pattern.num_samples()`).
    pub samples_used: usize,
    /// FISTA iterations performed.
    pub solver_iterations: usize,
}

/// The outcome of an N-D reconstruction experiment against known ground
/// truth (tensor counterpart of [`ReconstructionReport`]).
#[derive(Clone, Debug)]
pub struct NdReconstructionReport {
    /// The reconstructed landscape.
    pub landscape: NdLandscape,
    /// The sampling pattern used.
    pub pattern: NdSamplePattern,
    /// NRMSE against the ground truth (paper Eq. 1).
    pub nrmse: f64,
    /// Number of circuit evaluations used (`pattern.num_samples()`).
    pub samples_used: usize,
    /// FISTA iterations performed.
    pub solver_iterations: usize,
}

impl Reconstructor {
    /// Creates a reconstructor with custom solver settings.
    pub fn new(fista: FistaConfig) -> Self {
        Reconstructor {
            fista,
            force_dense_dct: false,
        }
    }

    /// Reconstructs a landscape from sampled values at known grid
    /// positions — the core OSCAR primitive. `samples[i]` is the measured
    /// cost at `pattern.indices()[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern grid mismatches `grid` or sample count
    /// mismatches the pattern.
    pub fn reconstruct(
        &self,
        grid: &Grid2d,
        pattern: &SamplePattern,
        samples: &[f64],
    ) -> (Landscape, usize) {
        assert_eq!(pattern.rows(), grid.rows(), "pattern rows mismatch");
        assert_eq!(pattern.cols(), grid.cols(), "pattern cols mismatch");
        let dct = self.make_dct(grid.rows(), grid.cols());
        let (values, iterations) = self.solve(&dct, pattern, samples);
        (Landscape::from_values(*grid, values), iterations)
    }

    /// Full experiment against ground truth: sample `fraction` of the true
    /// landscape uniformly at random, reconstruct, and score.
    pub fn reconstruct_fraction<R: Rng + ?Sized>(
        &self,
        truth: &Landscape,
        fraction: f64,
        rng: &mut R,
    ) -> ReconstructionReport {
        let grid = truth.grid();
        let pattern = SamplePattern::random(grid.rows(), grid.cols(), fraction, rng);
        let samples = pattern.gather(truth.values());
        self.report_from_samples(truth, pattern, &samples)
    }

    /// Job-level deterministic entry point: like
    /// [`Self::reconstruct_fraction`], but drawing the sampling pattern
    /// from a dedicated RNG seeded with `seed`, so one `(truth,
    /// fraction, seed)` triple always produces bit-identical output —
    /// the contract `oscar-runtime` batch jobs rely on regardless of
    /// scheduling order or worker count.
    pub fn reconstruct_fraction_seeded(
        &self,
        truth: &Landscape,
        fraction: f64,
        seed: u64,
    ) -> ReconstructionReport {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.reconstruct_fraction(truth, fraction, &mut rng)
    }

    /// Like [`Self::reconstruct_fraction`], but with measured sample values
    /// supplied by a (possibly noisy) execution closure instead of gathered
    /// from the truth: `measure(beta, gamma)`.
    pub fn reconstruct_fraction_with<R: Rng + ?Sized>(
        &self,
        truth: &Landscape,
        fraction: f64,
        rng: &mut R,
        mut measure: impl FnMut(f64, f64) -> f64,
    ) -> ReconstructionReport {
        let grid = truth.grid();
        let pattern = SamplePattern::random(grid.rows(), grid.cols(), fraction, rng);
        let samples: Vec<f64> = pattern
            .indices()
            .iter()
            .map(|&i| {
                let (b, g) = grid.point(i);
                measure(b, g)
            })
            .collect();
        self.report_from_samples(truth, pattern, &samples)
    }

    /// Builds a scored report from explicit samples.
    pub fn report_from_samples(
        &self,
        truth: &Landscape,
        pattern: SamplePattern,
        samples: &[f64],
    ) -> ReconstructionReport {
        let (landscape, solver_iterations) = self.reconstruct(truth.grid(), &pattern, samples);
        let err = nrmse(truth.values(), landscape.values());
        ReconstructionReport {
            landscape,
            samples_used: pattern.num_samples(),
            pattern,
            nrmse: err,
            solver_iterations,
        }
    }

    /// Reconstructs a raw row-major array (no [`Grid2d`] attached) —
    /// used by the reshaped p=2 pipeline where the 2-D axes are synthetic.
    pub fn reconstruct_array(
        &self,
        rows: usize,
        cols: usize,
        pattern: &SamplePattern,
        samples: &[f64],
    ) -> Vec<f64> {
        assert_eq!(pattern.rows(), rows, "pattern rows mismatch");
        assert_eq!(pattern.cols(), cols, "pattern cols mismatch");
        let dct = self.make_dct(rows, cols);
        self.solve(&dct, pattern, samples).0
    }

    /// N-D analogue of [`Self::reconstruct`]: recovers a full tensor
    /// landscape from sampled values at known flat indices, solving in
    /// the [`DctNd`] basis.
    ///
    /// # Panics
    ///
    /// Panics if the pattern dims mismatch `shape` or sample count
    /// mismatches the pattern.
    pub fn reconstruct_tensor(
        &self,
        shape: &TensorShape,
        pattern: &NdSamplePattern,
        samples: &[f64],
    ) -> (NdLandscape, usize) {
        assert_eq!(
            pattern.dims(),
            &shape.dims()[..],
            "pattern dims mismatch shape"
        );
        assert_eq!(
            samples.len(),
            pattern.num_samples(),
            "one sample per pattern index required"
        );
        let dct = DctNd::new(pattern.dims());
        let op = MeasurementOperatorNd::new(&dct, pattern);
        let mut ws = Workspace::for_operator(&op);
        let sol = fista_with(&op, samples, &self.fista, &mut ws);
        let mut values = vec![0.0; dct.len()];
        let mut scratch = dct.make_scratch();
        dct.inverse_into(&sol.coefficients, &mut values, &mut scratch);
        (
            NdLandscape::from_values(shape.clone(), values),
            sol.iterations,
        )
    }

    /// N-D analogue of [`Self::reconstruct_fraction_seeded`]: draws the
    /// sampling pattern from a dedicated RNG seeded with `seed`, so one
    /// `(truth, fraction, seed)` triple always produces bit-identical
    /// output — the same determinism contract the 2-D job path honors.
    pub fn reconstruct_tensor_fraction_seeded(
        &self,
        truth: &NdLandscape,
        fraction: f64,
        seed: u64,
    ) -> NdReconstructionReport {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pattern = NdSamplePattern::random(&truth.shape().dims(), fraction, &mut rng);
        let samples = pattern.gather(truth.values());
        let (landscape, solver_iterations) =
            self.reconstruct_tensor(truth.shape(), &pattern, &samples);
        let err = nrmse(truth.values(), landscape.values());
        NdReconstructionReport {
            landscape,
            samples_used: pattern.num_samples(),
            pattern,
            nrmse: err,
            solver_iterations,
        }
    }

    /// Builds the sparsifying transform for a grid, honoring
    /// [`Self::force_dense_dct`].
    fn make_dct(&self, rows: usize, cols: usize) -> Dct2d {
        if self.force_dense_dct {
            Dct2d::new_dense(rows, cols)
        } else {
            Dct2d::new(rows, cols)
        }
    }

    /// Shared solve path: one [`Workspace`] per call keeps every FISTA
    /// iteration and the final inverse transform allocation-free.
    fn solve(&self, dct: &Dct2d, pattern: &SamplePattern, samples: &[f64]) -> (Vec<f64>, usize) {
        assert_eq!(
            samples.len(),
            pattern.num_samples(),
            "one sample per pattern index required"
        );
        let op = MeasurementOperator::new(dct, pattern);
        let mut ws = Workspace::for_operator(&op);
        let sol = fista_with(&op, samples, &self.fista, &mut ws);
        let mut values = vec![0.0; dct.len()];
        let mut scratch = dct.make_scratch();
        dct.inverse_into(&sol.coefficients, &mut values, &mut scratch);
        (values, sol.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth_landscape(n: usize, seed: u64, grid: Grid2d) -> Landscape {
        let mut rng = StdRng::seed_from_u64(seed);
        let problem = IsingProblem::random_3_regular(n, &mut rng);
        Landscape::from_qaoa(grid, &problem.qaoa_evaluator())
    }

    #[test]
    fn qaoa_landscape_reconstructs_accurately() {
        let truth = truth_landscape(8, 1, Grid2d::small_p1(20, 30));
        let mut rng = StdRng::seed_from_u64(2);
        let report = Reconstructor::default().reconstruct_fraction(&truth, 0.15, &mut rng);
        assert!(report.nrmse < 0.07, "NRMSE {}", report.nrmse);
        assert_eq!(report.samples_used, 90);
    }

    #[test]
    fn error_decreases_with_fraction() {
        let truth = truth_landscape(8, 3, Grid2d::small_p1(20, 30));
        let oscar = Reconstructor::default();
        let mut errs = Vec::new();
        for (seed, frac) in [(10u64, 0.04), (11, 0.12), (12, 0.35)] {
            let mut rng = StdRng::seed_from_u64(seed);
            errs.push(oscar.reconstruct_fraction(&truth, frac, &mut rng).nrmse);
        }
        assert!(
            errs[2] < errs[0],
            "error should drop with more samples: {errs:?}"
        );
    }

    #[test]
    fn measured_closure_path_equals_gather_path() {
        let truth = truth_landscape(6, 4, Grid2d::small_p1(12, 16));
        let oscar = Reconstructor::default();
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let eval_problem = {
            let mut rng = StdRng::seed_from_u64(4);
            IsingProblem::random_3_regular(6, &mut rng)
        };
        let eval = eval_problem.qaoa_evaluator();
        let a = oscar.reconstruct_fraction(&truth, 0.2, &mut rng1);
        let b = oscar.reconstruct_fraction_with(&truth, 0.2, &mut rng2, |beta, gamma| {
            eval.expectation(&[beta], &[gamma])
        });
        assert!((a.nrmse - b.nrmse).abs() < 1e-9);
    }

    #[test]
    fn reconstruct_array_matches_landscape_path() {
        let truth = truth_landscape(6, 5, Grid2d::small_p1(10, 14));
        let mut rng = StdRng::seed_from_u64(5);
        let pattern = SamplePattern::random(10, 14, 0.3, &mut rng);
        let samples = pattern.gather(truth.values());
        let oscar = Reconstructor::default();
        let (l, _) = oscar.reconstruct(truth.grid(), &pattern, &samples);
        let arr = oscar.reconstruct_array(10, 14, &pattern, &samples);
        for (a, b) in l.values().iter().zip(&arr) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn noisy_samples_degrade_gracefully() {
        let truth = truth_landscape(8, 6, Grid2d::small_p1(20, 30));
        let oscar = Reconstructor::default();
        let mut rng = StdRng::seed_from_u64(6);
        let clean = oscar.reconstruct_fraction(&truth, 0.2, &mut rng);
        let mut rng = StdRng::seed_from_u64(6);
        let iqr = truth.iqr();
        let mut noise_rng = StdRng::seed_from_u64(77);
        use rand::Rng;
        let noisy = oscar.reconstruct_fraction_with(&truth, 0.2, &mut rng, |b, g| {
            // Look up the true value and perturb it slightly.
            let grid = truth.grid();
            let r = ((b - grid.beta.lo) / grid.beta.step()).round() as usize;
            let c = ((g - grid.gamma.lo) / grid.gamma.step()).round() as usize;
            truth.at(r, c) + noise_rng.gen_range(-0.02..0.02) * iqr
        });
        assert!(noisy.nrmse >= clean.nrmse * 0.5, "sanity");
        assert!(noisy.nrmse < 0.15, "noisy NRMSE {}", noisy.nrmse);
    }

    #[test]
    fn tensor_reconstruction_recovers_4d_qaoa_landscape() {
        use crate::grid::Shape;
        // p=2 QAOA on a small 4-D shape: the landscape is smooth in the
        // DCT basis, so 25% sampling reconstructs it well.
        let mut rng = StdRng::seed_from_u64(12);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let eval = problem.qaoa_evaluator();
        let Shape::Tensor(shape) = Shape::qaoa(2, 5, 6) else {
            panic!("p=2 must be a tensor shape");
        };
        let truth =
            NdLandscape::generate(shape, |p| eval.expectation(&[p[0], p[1]], &[p[2], p[3]]));
        let report = Reconstructor::default().reconstruct_tensor_fraction_seeded(&truth, 0.25, 7);
        assert!(report.nrmse < 0.12, "NRMSE {}", report.nrmse);
        assert_eq!(report.samples_used, 225);

        // Determinism: the same triple is bit-identical.
        let again = Reconstructor::default().reconstruct_tensor_fraction_seeded(&truth, 0.25, 7);
        assert_eq!(report.landscape.values(), again.landscape.values());
    }

    #[test]
    #[should_panic(expected = "one sample per pattern index")]
    fn rejects_sample_count_mismatch() {
        let grid = Grid2d::small_p1(4, 4);
        let pattern = SamplePattern::from_indices(4, 4, vec![0, 1, 2]);
        let _ = Reconstructor::default().reconstruct(&grid, &pattern, &[0.0]);
    }
}
