//! Landscape persistence: CSV for interop with plotting tools, a plain
//! record type for experiment archival, and the raw little-endian f64
//! payload codec the persistent landscape store builds on.
//!
//! Reconstructed landscapes are debugging artifacts users want to plot
//! (matplotlib, gnuplot) and diff across runs; CSV keeps that friction-free
//! while [`LandscapeRecord`] captures the grid + values pair for archival.
//! [`f64s_to_le_bytes`]/[`f64s_from_le_bytes`] are the bit-exact binary
//! payload primitives (`oscar-runtime`'s on-disk landscape store wraps
//! them in a versioned, checksummed container).

use crate::grid::{Axis, Grid2d};
use crate::landscape::Landscape;
use std::io::{BufRead, BufReader, Read, Write};

/// A serializable snapshot of a landscape.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::Grid2d;
/// use oscar_core::io::LandscapeRecord;
/// use oscar_core::landscape::Landscape;
///
/// let l = Landscape::generate(Grid2d::small_p1(3, 4), |b, g| b + g);
/// let record = LandscapeRecord::from_landscape(&l);
/// let back = record.into_landscape();
/// assert_eq!(back.values(), l.values());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LandscapeRecord {
    /// The parameter grid.
    pub grid: Grid2d,
    /// Row-major values.
    pub values: Vec<f64>,
}

impl LandscapeRecord {
    /// Snapshots a landscape.
    pub fn from_landscape(l: &Landscape) -> Self {
        LandscapeRecord {
            grid: *l.grid(),
            values: l.values().to_vec(),
        }
    }

    /// Rebuilds the landscape.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the grid.
    pub fn into_landscape(self) -> Landscape {
        Landscape::from_values(self.grid, self.values)
    }
}

/// Encodes `values` as raw IEEE-754 bytes, 8 per value, little-endian —
/// the payload format of the persistent landscape store. Bit-exact:
/// [`f64s_from_le_bytes`] recovers the identical bit patterns,
/// including NaN payloads and signed zeros.
pub fn f64s_to_le_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Decodes a raw little-endian f64 payload written by
/// [`f64s_to_le_bytes`]. Returns `None` unless the length is a whole
/// number of 8-byte values (a truncated payload must read as corrupt,
/// never as a shorter landscape).
pub fn f64s_from_le_bytes(bytes: &[u8]) -> Option<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|chunk| {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                f64::from_bits(u64::from_le_bytes(raw))
            })
            .collect(),
    )
}

/// Writes a landscape as CSV: a header line with the grid definition, then
/// one `beta,gamma,value` row per grid point.
///
/// # Errors
///
/// Propagates any I/O error from `w`. A `&mut Vec<u8>` or `&mut File` can
/// be passed for `w`.
pub fn write_csv<W: Write>(l: &Landscape, mut w: W) -> std::io::Result<()> {
    let g = l.grid();
    writeln!(
        w,
        "# grid beta=[{},{}]x{} gamma=[{},{}]x{}",
        g.beta.lo, g.beta.hi, g.beta.n, g.gamma.lo, g.gamma.hi, g.gamma.n
    )?;
    writeln!(w, "beta,gamma,value")?;
    for r in 0..g.rows() {
        for c in 0..g.cols() {
            writeln!(w, "{},{},{}", g.beta.value(r), g.gamma.value(c), l.at(r, c))?;
        }
    }
    Ok(())
}

/// Reads a landscape written by [`write_csv`]. A mut reference to any
/// `Read` can be passed.
///
/// Every row's `beta` and `gamma` coordinates are validated against the
/// declared grid in row-major order — a reordered, duplicated, or
/// off-grid row is rejected instead of silently landing its value at
/// the wrong grid point.
///
/// # Errors
///
/// Returns `InvalidData` on malformed headers, rows that do not split
/// into exactly three numeric columns, coordinates that disagree with
/// the declared grid, or a row count that does not cover it — or any
/// underlying I/O error.
pub fn read_csv<R: Read>(r: R) -> std::io::Result<Landscape> {
    use std::io::{Error, ErrorKind};
    let invalid = |msg: String| Error::new(ErrorKind::InvalidData, msg);

    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| invalid("missing grid header".into()))??;
    let grid = parse_grid_header(&header).ok_or_else(|| invalid("malformed grid header".into()))?;
    // Column header line.
    let cols_line = lines
        .next()
        .ok_or_else(|| invalid("missing column header".into()))??;
    if cols_line.trim() != "beta,gamma,value" {
        return Err(invalid("unexpected column header".into()));
    }
    let mut values = Vec::with_capacity(grid.len());
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let row = values.len();
        let mut cols = line.split(',');
        let mut field = |name: &str| {
            cols.next()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .ok_or_else(|| invalid(format!("row {row}: malformed {name} column")))
        };
        let beta = field("beta")?;
        let gamma = field("gamma")?;
        let value = field("value")?;
        if cols.next().is_some() {
            return Err(invalid(format!("row {row}: too many columns")));
        }
        if row >= grid.len() {
            return Err(invalid(format!(
                "row {row}: more rows than the declared {}x{} grid",
                grid.rows(),
                grid.cols()
            )));
        }
        // Coordinates must restate the declared grid point, in row-major
        // write order. The tolerance is a fraction of the axis step so
        // re-serialized files with rounded coordinates still load, while
        // reordered or off-grid rows cannot land on the wrong point.
        let (want_b, want_g) = grid.point(row);
        let close = |got: f64, want: f64, step: f64| (got - want).abs() <= step * 1e-6;
        if !close(beta, want_b, grid.beta.step()) || !close(gamma, want_g, grid.gamma.step()) {
            return Err(invalid(format!(
                "row {row}: coordinates ({beta}, {gamma}) do not match grid point \
                 ({want_b}, {want_g}) — rows must follow the declared grid row-major"
            )));
        }
        values.push(value);
    }
    if values.len() != grid.len() {
        return Err(invalid(format!(
            "row count {} does not match grid ({}x{})",
            values.len(),
            grid.rows(),
            grid.cols()
        )));
    }
    Ok(Landscape::from_values(grid, values))
}

fn parse_grid_header(header: &str) -> Option<Grid2d> {
    // "# grid beta=[lo,hi]xN gamma=[lo,hi]xM"
    let rest = header.strip_prefix("# grid ")?;
    let mut parts = rest.split_whitespace();
    let beta = parse_axis(parts.next()?, "beta")?;
    let gamma = parse_axis(parts.next()?, "gamma")?;
    Some(Grid2d::new(beta, gamma))
}

fn parse_axis(token: &str, name: &str) -> Option<Axis> {
    let rest = token.strip_prefix(name)?.strip_prefix("=[")?;
    let (range, n) = rest.split_once("]x")?;
    let (lo, hi) = range.split_once(',')?;
    Some(Axis::new(
        lo.parse().ok()?,
        hi.parse().ok()?,
        n.parse().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_landscape() -> Landscape {
        Landscape::generate(Grid2d::small_p1(4, 6), |b, g| (2.0 * b).sin() + g)
    }

    #[test]
    fn csv_roundtrip() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.grid(), l.grid());
        for (a, b) in back.values().iter().zip(l.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // header + column line + 24 points
        assert_eq!(text.lines().count(), 2 + 24);
    }

    #[test]
    fn record_roundtrip() {
        let l = sample_landscape();
        let rec = LandscapeRecord::from_landscape(&l);
        let back = rec.into_landscape();
        assert_eq!(back.values(), l.values());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_csv("not a landscape".as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_truncated() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(read_csv(truncated.as_bytes()).is_err());
    }

    fn sample_csv() -> Vec<String> {
        let mut buf = Vec::new();
        write_csv(&sample_landscape(), &mut buf).unwrap();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn read_rejects_reordered_rows() {
        // Swapping two data rows keeps the row count and every value
        // parseable — only coordinate validation can catch it.
        let mut lines = sample_csv();
        lines.swap(2, 3);
        let text = lines.join("\n");
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("do not match grid point"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn read_rejects_off_grid_coordinates() {
        let mut lines = sample_csv();
        // Perturb row 5's gamma coordinate well past the tolerance.
        let row = lines[7].clone();
        let mut cols: Vec<&str> = row.split(',').collect();
        let shifted = format!("{}", cols[1].parse::<f64>().unwrap() + 0.05);
        cols[1] = &shifted;
        lines[7] = cols.join(",");
        assert!(read_csv(lines.join("\n").as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_malformed_rows() {
        for bad in [
            "0.1,0.2",             // missing value column
            "0.1,0.2,0.3,0.4",     // extra column
            "0.1,oops,0.3",        // non-numeric coordinate
            "0.1,0.2,not-a-float", // non-numeric value
        ] {
            let mut lines = sample_csv();
            lines[5] = bad.to_string();
            assert!(
                read_csv(lines.join("\n").as_bytes()).is_err(),
                "accepted malformed row {bad:?}"
            );
        }
    }

    #[test]
    fn read_rejects_extra_rows() {
        let mut lines = sample_csv();
        let last = lines.last().unwrap().clone();
        lines.push(last);
        assert!(read_csv(lines.join("\n").as_bytes()).is_err());
    }

    #[test]
    fn f64_payload_roundtrip_is_bit_exact() {
        let values = [
            0.0,
            -0.0,
            1.5,
            -2.25e-308,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_0000_1234), // NaN with payload
        ];
        let bytes = f64s_to_le_bytes(&values);
        assert_eq!(bytes.len(), values.len() * 8);
        let back = f64s_from_le_bytes(&bytes).unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f64_payload_rejects_ragged_lengths() {
        let bytes = f64s_to_le_bytes(&[1.0, 2.0]);
        for cut in [1, 7, 9, 15] {
            assert!(f64s_from_le_bytes(&bytes[..cut]).is_none());
        }
        assert_eq!(f64s_from_le_bytes(&[]), Some(vec![]));
    }
}
