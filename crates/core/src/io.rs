//! Landscape persistence: CSV for interop with plotting tools and a
//! plain record type for experiment archival.
//!
//! Reconstructed landscapes are debugging artifacts users want to plot
//! (matplotlib, gnuplot) and diff across runs; CSV keeps that friction-free
//! while [`LandscapeRecord`] captures the grid + values pair for archival.

use crate::grid::{Axis, Grid2d};
use crate::landscape::Landscape;
use std::io::{BufRead, BufReader, Read, Write};

/// A serializable snapshot of a landscape.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::Grid2d;
/// use oscar_core::io::LandscapeRecord;
/// use oscar_core::landscape::Landscape;
///
/// let l = Landscape::generate(Grid2d::small_p1(3, 4), |b, g| b + g);
/// let record = LandscapeRecord::from_landscape(&l);
/// let back = record.into_landscape();
/// assert_eq!(back.values(), l.values());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LandscapeRecord {
    /// The parameter grid.
    pub grid: Grid2d,
    /// Row-major values.
    pub values: Vec<f64>,
}

impl LandscapeRecord {
    /// Snapshots a landscape.
    pub fn from_landscape(l: &Landscape) -> Self {
        LandscapeRecord {
            grid: *l.grid(),
            values: l.values().to_vec(),
        }
    }

    /// Rebuilds the landscape.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the grid.
    pub fn into_landscape(self) -> Landscape {
        Landscape::from_values(self.grid, self.values)
    }
}

/// Writes a landscape as CSV: a header line with the grid definition, then
/// one `beta,gamma,value` row per grid point.
///
/// # Errors
///
/// Propagates any I/O error from `w`. A `&mut Vec<u8>` or `&mut File` can
/// be passed for `w`.
pub fn write_csv<W: Write>(l: &Landscape, mut w: W) -> std::io::Result<()> {
    let g = l.grid();
    writeln!(
        w,
        "# grid beta=[{},{}]x{} gamma=[{},{}]x{}",
        g.beta.lo, g.beta.hi, g.beta.n, g.gamma.lo, g.gamma.hi, g.gamma.n
    )?;
    writeln!(w, "beta,gamma,value")?;
    for r in 0..g.rows() {
        for c in 0..g.cols() {
            writeln!(w, "{},{},{}", g.beta.value(r), g.gamma.value(c), l.at(r, c))?;
        }
    }
    Ok(())
}

/// Reads a landscape written by [`write_csv`]. A mut reference to any
/// `Read` can be passed.
///
/// # Errors
///
/// Returns `InvalidData` on malformed headers or rows, or any underlying
/// I/O error.
pub fn read_csv<R: Read>(r: R) -> std::io::Result<Landscape> {
    use std::io::{Error, ErrorKind};
    let invalid = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());

    let mut lines = BufReader::new(r).lines();
    let header = lines
        .next()
        .ok_or_else(|| invalid("missing grid header"))??;
    let grid = parse_grid_header(&header).ok_or_else(|| invalid("malformed grid header"))?;
    // Column header line.
    let cols_line = lines
        .next()
        .ok_or_else(|| invalid("missing column header"))??;
    if cols_line.trim() != "beta,gamma,value" {
        return Err(invalid("unexpected column header"));
    }
    let mut values = Vec::with_capacity(grid.len());
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v = line
            .rsplit(',')
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .ok_or_else(|| invalid("malformed data row"))?;
        values.push(v);
    }
    if values.len() != grid.len() {
        return Err(invalid("row count does not match grid"));
    }
    Ok(Landscape::from_values(grid, values))
}

fn parse_grid_header(header: &str) -> Option<Grid2d> {
    // "# grid beta=[lo,hi]xN gamma=[lo,hi]xM"
    let rest = header.strip_prefix("# grid ")?;
    let mut parts = rest.split_whitespace();
    let beta = parse_axis(parts.next()?, "beta")?;
    let gamma = parse_axis(parts.next()?, "gamma")?;
    Some(Grid2d::new(beta, gamma))
}

fn parse_axis(token: &str, name: &str) -> Option<Axis> {
    let rest = token.strip_prefix(name)?.strip_prefix("=[")?;
    let (range, n) = rest.split_once("]x")?;
    let (lo, hi) = range.split_once(',')?;
    Some(Axis::new(
        lo.parse().ok()?,
        hi.parse().ok()?,
        n.parse().ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_landscape() -> Landscape {
        Landscape::generate(Grid2d::small_p1(4, 6), |b, g| (2.0 * b).sin() + g)
    }

    #[test]
    fn csv_roundtrip() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.grid(), l.grid());
        for (a, b) in back.values().iter().zip(l.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // header + column line + 24 points
        assert_eq!(text.lines().count(), 2 + 24);
    }

    #[test]
    fn record_roundtrip() {
        let l = sample_landscape();
        let rec = LandscapeRecord::from_landscape(&l);
        let back = rec.into_landscape();
        assert_eq!(back.values(), l.values());
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_csv("not a landscape".as_bytes()).is_err());
    }

    #[test]
    fn read_rejects_truncated() {
        let l = sample_landscape();
        let mut buf = Vec::new();
        write_csv(&l, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(read_csv(truncated.as_bytes()).is_err());
    }
}
