//! High-dimensional landscape reshaping (paper §4.2.4).
//!
//! For p=2 QAOA the landscape is 4-D with shape `(nb, nb, ng, ng)`
//! (indices `β1, β2, γ1, γ2`). OSCAR reshapes it into a 2-D grid of shape
//! `(nb·nb, ng·ng)` — pairing the two β indices into the row coordinate
//! and the two γ indices into the column coordinate — and reconstructs
//! with the 2-D machinery. The paper notes this introduces artificial
//! repeating patterns that cost some accuracy (Figure 4 C/D), which our
//! benchmarks reproduce.

/// Flattens a 4-D landscape, indexed `v[b1][b2][g1][g2]` row-major as
/// `((b1 * nb + b2) * ng + g1) * ng + g2`, into a row-major 2-D array of
/// shape `(nb*nb, ng*ng)` with row `b1 * nb + b2` and column
/// `g1 * ng + g2`.
///
/// Because the linearized orderings agree, this is the identity on
/// storage — the function exists to make that invariant explicit and
/// checked.
///
/// # Panics
///
/// Panics if `values.len() != nb * nb * ng * ng`.
pub fn reshape_4d_to_2d(values: &[f64], nb: usize, ng: usize) -> Vec<f64> {
    assert_eq!(values.len(), nb * nb * ng * ng, "4-D size mismatch");
    values.to_vec()
}

/// Inverse of [`reshape_4d_to_2d`].
///
/// # Panics
///
/// Panics if `values.len() != nb * nb * ng * ng`.
pub fn reshape_2d_to_4d(values: &[f64], nb: usize, ng: usize) -> Vec<f64> {
    assert_eq!(values.len(), nb * nb * ng * ng, "2-D size mismatch");
    values.to_vec()
}

/// The flat index of 4-D coordinates under the paper's reshaping.
pub fn index_4d(b1: usize, b2: usize, g1: usize, g2: usize, nb: usize, ng: usize) -> usize {
    assert!(
        b1 < nb && b2 < nb && g1 < ng && g2 < ng,
        "index out of range"
    );
    ((b1 * nb + b2) * ng + g1) * ng + g2
}

/// The (row, col) coordinates in the reshaped 2-D grid.
pub fn reshaped_coords(
    b1: usize,
    b2: usize,
    g1: usize,
    g2: usize,
    nb: usize,
    ng: usize,
) -> (usize, usize) {
    assert!(
        b1 < nb && b2 < nb && g1 < ng && g2 < ng,
        "index out of range"
    );
    (b1 * nb + b2, g1 * ng + g2)
}

/// Generates a 4-D p=2 QAOA landscape and returns it in the reshaped 2-D
/// layout, ready for reconstruction.
///
/// `f(betas, gammas)` receives 2-element slices.
pub fn generate_p2_landscape(
    grid: &crate::grid::Grid4d,
    mut f: impl FnMut(&[f64], &[f64]) -> f64,
) -> Vec<f64> {
    let nb = grid.beta.n;
    let ng = grid.gamma.n;
    let mut out = vec![0.0; nb * nb * ng * ng];
    for b1 in 0..nb {
        for b2 in 0..nb {
            for g1 in 0..ng {
                for g2 in 0..ng {
                    let (bv1, bv2, gv1, gv2) = grid.point(b1, b2, g1, g2);
                    out[index_4d(b1, b2, g1, g2, nb, ng)] = f(&[bv1, bv2], &[gv1, gv2]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid4d;

    #[test]
    fn index_and_coords_consistent() {
        let (nb, ng) = (3, 4);
        for b1 in 0..nb {
            for b2 in 0..nb {
                for g1 in 0..ng {
                    for g2 in 0..ng {
                        let flat = index_4d(b1, b2, g1, g2, nb, ng);
                        let (r, c) = reshaped_coords(b1, b2, g1, g2, nb, ng);
                        assert_eq!(flat, r * (ng * ng) + c);
                    }
                }
            }
        }
    }

    #[test]
    fn reshape_roundtrip() {
        let v: Vec<f64> = (0..(2 * 2 * 3 * 3)).map(|i| i as f64).collect();
        let two_d = reshape_4d_to_2d(&v, 2, 3);
        let back = reshape_2d_to_4d(&two_d, 2, 3);
        assert_eq!(v, back);
    }

    #[test]
    fn generate_p2_evaluates_all_points() {
        let grid = Grid4d::small_p2(3, 3);
        let mut calls = 0usize;
        let v = generate_p2_landscape(&grid, |_, _| {
            calls += 1;
            calls as f64
        });
        assert_eq!(v.len(), 81);
        assert_eq!(calls, 81);
    }

    #[test]
    fn generate_p2_orders_parameters() {
        let grid = Grid4d::small_p2(2, 2);
        let v = generate_p2_landscape(&grid, |betas, gammas| {
            betas[0] * 1000.0 + betas[1] * 100.0 + gammas[0] * 10.0 + gammas[1]
        });
        // First entry uses all-lo values; last all-hi.
        let lo = grid.beta.lo * 1100.0 + grid.gamma.lo * 11.0;
        let hi = grid.beta.hi * 1100.0 + grid.gamma.hi * 11.0;
        assert!((v[0] - lo).abs() < 1e-9);
        assert!((v[v.len() - 1] - hi).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn index_rejects_out_of_range() {
        let _ = index_4d(3, 0, 0, 0, 3, 4);
    }
}
