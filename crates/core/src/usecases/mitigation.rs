//! Use case 1: benchmarking and tuning noise mitigation (paper §6).
//!
//! Generates landscapes under different ZNE configurations, reconstructs
//! them with OSCAR, and compares the paper's three shape metrics — showing
//! that reconstructions preserve the (dis)advantages of each mitigation
//! configuration at a fraction of the circuit cost.

use crate::grid::Grid2d;
use crate::landscape::Landscape;
use crate::metrics::LandscapeMetrics;
use crate::reconstruct::Reconstructor;
use oscar_executor::device::QpuDevice;
use oscar_mitigation::zne::ZneConfig;
use oscar_qsim::rng::derive_seed;
use rand::Rng;

/// The noise-realization seed for one ZNE scale factor.
///
/// Each scale factor is a separate batch of circuit executions on real
/// hardware, so each must draw *fresh* shot noise: reusing
/// `landscape_seed` across factors would hand every factor identical
/// Gaussian draws and let extrapolation cancel noise it cannot cancel
/// physically. Factor `1.0` keeps the base seed unchanged, so the
/// factor-1 landscape is bit-identical to the plain unscaled noisy
/// landscape of the same seed — and can share its cache entry.
pub fn zne_factor_seed(landscape_seed: u64, scale: f64) -> u64 {
    if scale == 1.0 {
        landscape_seed
    } else {
        derive_seed(landscape_seed, scale.to_bits())
    }
}

/// Deterministic noise-scaled landscape: every grid point executes at
/// ZNE noise scale `scale` with counter-based noise keyed by
/// `(zne_factor_seed(landscape_seed, scale), point_index)`.
///
/// A pure function of `(device, grid, landscape_seed, scale)` —
/// bit-identical across worker counts and evaluation orders, which is
/// what lets the batch runtime cache one scale factor's landscape and
/// share it between ZNE jobs.
pub fn scaled_noisy_landscape(
    device: &QpuDevice,
    grid: Grid2d,
    landscape_seed: u64,
    scale: f64,
) -> Landscape {
    let seed = zne_factor_seed(landscape_seed, scale);
    Landscape::generate_indexed_par(grid, |i, beta, gamma| {
        device.execute_scaled_at(&[beta], &[gamma], scale, seed, i as u64)
    })
}

/// Pointwise zero-noise extrapolation of per-factor landscapes: grid
/// point `i` of the result is `zne.extrapolate_values` applied to point
/// `i` of each factor landscape, in factor order.
///
/// # Panics
///
/// Panics if the landscape count does not match the config's factor
/// count, or the landscapes' grids differ.
pub fn extrapolated_landscape(zne: &ZneConfig, factors: &[&Landscape]) -> Landscape {
    assert_eq!(
        factors.len(),
        zne.scale_factors.len(),
        "one landscape per scale factor required"
    );
    let grid = *factors[0].grid();
    assert!(
        factors.iter().all(|l| *l.grid() == grid),
        "factor landscapes must share one grid"
    );
    Landscape::generate_indexed_par(grid, |i, _, _| {
        let values: Vec<f64> = factors.iter().map(|l| l.values()[i]).collect();
        zne.extrapolate_values(&values)
    })
}

/// A set of landscapes for one problem under different mitigation
/// configurations.
#[derive(Clone, Debug)]
pub struct ZneLandscapes {
    /// The noiseless ground truth.
    pub ideal: Landscape,
    /// Noisy landscape without mitigation.
    pub unmitigated: Landscape,
    /// ZNE with Richardson extrapolation on scales {1,2,3}.
    pub richardson: Landscape,
    /// ZNE with linear extrapolation on scales {1,3}.
    pub linear: Landscape,
}

impl ZneLandscapes {
    /// Generates all four landscapes on `grid` by executing the device at
    /// every grid point (the expensive ground-truth path OSCAR avoids).
    pub fn generate(device: &QpuDevice, grid: Grid2d) -> Self {
        let richardson_cfg = ZneConfig::richardson_123();
        let linear_cfg = ZneConfig::linear_13();
        let ideal = Landscape::from_qaoa(grid, device.evaluator());
        let unmitigated = Landscape::generate(grid, |b, g| device.execute_scaled(&[b], &[g], 1.0));
        let richardson = Landscape::generate(grid, |b, g| {
            richardson_cfg.extrapolate(&mut |c| device.execute_scaled(&[b], &[g], c))
        });
        let linear = Landscape::generate(grid, |b, g| {
            linear_cfg.extrapolate(&mut |c| device.execute_scaled(&[b], &[g], c))
        });
        ZneLandscapes {
            ideal,
            unmitigated,
            richardson,
            linear,
        }
    }

    /// Like [`Self::generate`], but with deterministic counter-based
    /// noise keyed by `landscape_seed`: the result is a pure function
    /// of `(device, grid, landscape_seed)`, bit-identical across runs,
    /// worker counts, and evaluation orders (the device's internal
    /// order-dependent RNG stream is bypassed). The batch runtime's
    /// ZNE stage computes exactly these per-factor landscapes
    /// ([`scaled_noisy_landscape`]), so figures regenerated through
    /// this path agree with runtime sweeps.
    pub fn generate_seeded(device: &QpuDevice, grid: Grid2d, landscape_seed: u64) -> Self {
        let richardson_cfg = ZneConfig::richardson_123();
        let linear_cfg = ZneConfig::linear_13();
        let factor = |scale: f64| scaled_noisy_landscape(device, grid, landscape_seed, scale);
        let (f1, f2, f3) = (factor(1.0), factor(2.0), factor(3.0));
        let richardson = extrapolated_landscape(&richardson_cfg, &[&f1, &f2, &f3]);
        let linear = extrapolated_landscape(&linear_cfg, &[&f1, &f3]);
        ZneLandscapes {
            ideal: Landscape::from_qaoa(grid, device.evaluator()),
            unmitigated: f1,
            richardson,
            linear,
        }
    }

    /// The metrics of each original landscape.
    pub fn metrics(&self) -> MitigationMetrics {
        MitigationMetrics {
            unmitigated: metrics_of(&self.unmitigated),
            richardson: metrics_of(&self.richardson),
            linear: metrics_of(&self.linear),
        }
    }

    /// Reconstructs each mitigated landscape from a `fraction` of samples
    /// and reports the reconstructed metrics (the OSCAR-side columns of
    /// Figure 10).
    pub fn reconstructed_metrics<R: Rng + ?Sized>(
        &self,
        oscar: &Reconstructor,
        fraction: f64,
        rng: &mut R,
    ) -> MitigationMetrics {
        let recon =
            |l: &Landscape, rng: &mut R| oscar.reconstruct_fraction(l, fraction, rng).landscape;
        MitigationMetrics {
            unmitigated: metrics_of(&recon(&self.unmitigated, rng)),
            richardson: metrics_of(&recon(&self.richardson, rng)),
            linear: metrics_of(&recon(&self.linear, rng)),
        }
    }
}

/// Shape metrics for the three mitigation settings (Figure 10's bars).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MitigationMetrics {
    /// No mitigation.
    pub unmitigated: LandscapeMetrics,
    /// Richardson {1,2,3}.
    pub richardson: LandscapeMetrics,
    /// Linear {1,3}.
    pub linear: LandscapeMetrics,
}

fn metrics_of(l: &Landscape) -> LandscapeMetrics {
    LandscapeMetrics::compute(l.values(), l.grid().rows(), l.grid().cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_executor::latency::LatencyModel;
    use oscar_mitigation::model::NoiseModel;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(shots: Option<usize>) -> QpuDevice {
        let mut rng = StdRng::seed_from_u64(10);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let mut noise = NoiseModel::depolarizing(0.001, 0.02);
        if let Some(s) = shots {
            noise = noise.with_shots(s);
        }
        QpuDevice::new("zne-dev", &problem, 1, noise, LatencyModel::instant(), 0)
    }

    #[test]
    fn zne_improves_over_unmitigated() {
        // Without shot noise, both extrapolations should sit closer to the
        // ideal landscape than the unmitigated one.
        let dev = device(None);
        let grid = Grid2d::small_p1(10, 12);
        let set = ZneLandscapes::generate(&dev, grid);
        let err = |l: &Landscape| crate::metrics::nrmse(set.ideal.values(), l.values());
        let raw = err(&set.unmitigated);
        let rich = err(&set.richardson);
        let lin = err(&set.linear);
        assert!(rich < raw, "richardson {rich} vs raw {raw}");
        assert!(lin < raw, "linear {lin} vs raw {raw}");
    }

    #[test]
    fn richardson_is_rougher_with_shot_noise() {
        // Figure 9/10's headline: Richardson amplifies shot noise into
        // salt-like jaggedness; linear stays smooth.
        let dev = device(Some(1024));
        let grid = Grid2d::small_p1(12, 14);
        let set = ZneLandscapes::generate(&dev, grid);
        let m = set.metrics();
        assert!(
            m.richardson.second_derivative > 2.0 * m.linear.second_derivative,
            "richardson roughness {} should far exceed linear {}",
            m.richardson.second_derivative,
            m.linear.second_derivative
        );
    }

    #[test]
    fn seeded_generation_is_bit_stable_and_factor1_matches_unscaled() {
        let dev = device(Some(1024));
        let grid = Grid2d::small_p1(8, 10);
        let a = ZneLandscapes::generate_seeded(&dev, grid, 5);
        let b = ZneLandscapes::generate_seeded(&dev, grid, 5);
        assert_eq!(a.unmitigated.values(), b.unmitigated.values());
        assert_eq!(a.richardson.values(), b.richardson.values());
        assert_eq!(a.linear.values(), b.linear.values());
        // Another seed is a genuinely different noise realization.
        let c = ZneLandscapes::generate_seeded(&dev, grid, 6);
        assert_ne!(a.unmitigated.values(), c.unmitigated.values());
        // Factor 1.0 keeps the base seed: the unmitigated landscape is
        // exactly the scale-1 factor landscape.
        let f1 = scaled_noisy_landscape(&dev, grid, 5, 1.0);
        assert_eq!(a.unmitigated.values(), f1.values());
        // Other factors draw fresh noise rather than replaying seed 5.
        assert_eq!(zne_factor_seed(5, 1.0), 5);
        assert_ne!(zne_factor_seed(5, 2.0), 5);
        assert_ne!(zne_factor_seed(5, 2.0), zne_factor_seed(5, 3.0));
    }

    #[test]
    fn extrapolated_landscape_matches_pointwise_extrapolation() {
        let dev = device(None);
        let grid = Grid2d::small_p1(6, 8);
        let zne = ZneConfig::richardson_123();
        let subs: Vec<Landscape> = zne
            .scale_factors
            .iter()
            .map(|&c| scaled_noisy_landscape(&dev, grid, 3, c))
            .collect();
        let refs: Vec<&Landscape> = subs.iter().collect();
        let combined = extrapolated_landscape(&zne, &refs);
        for i in 0..grid.len() {
            let vals: Vec<f64> = subs.iter().map(|l| l.values()[i]).collect();
            assert_eq!(
                combined.values()[i].to_bits(),
                zne.extrapolate_values(&vals).to_bits(),
                "point {i}"
            );
        }
    }

    #[test]
    fn reconstruction_preserves_roughness_ordering() {
        let dev = device(Some(1024));
        let grid = Grid2d::small_p1(12, 14);
        let set = ZneLandscapes::generate(&dev, grid);
        let mut rng = StdRng::seed_from_u64(3);
        let rm = set.reconstructed_metrics(&Reconstructor::default(), 0.3, &mut rng);
        assert!(
            rm.richardson.second_derivative > rm.linear.second_derivative,
            "reconstructed roughness ordering lost: {} vs {}",
            rm.richardson.second_derivative,
            rm.linear.second_derivative
        );
    }
}
