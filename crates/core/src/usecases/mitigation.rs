//! Use case 1: benchmarking and tuning noise mitigation (paper §6).
//!
//! Generates landscapes under different ZNE configurations, reconstructs
//! them with OSCAR, and compares the paper's three shape metrics — showing
//! that reconstructions preserve the (dis)advantages of each mitigation
//! configuration at a fraction of the circuit cost.

use crate::grid::Grid2d;
use crate::landscape::Landscape;
use crate::metrics::LandscapeMetrics;
use crate::reconstruct::Reconstructor;
use oscar_executor::device::QpuDevice;
use oscar_mitigation::zne::ZneConfig;
use rand::Rng;

/// A set of landscapes for one problem under different mitigation
/// configurations.
#[derive(Clone, Debug)]
pub struct ZneLandscapes {
    /// The noiseless ground truth.
    pub ideal: Landscape,
    /// Noisy landscape without mitigation.
    pub unmitigated: Landscape,
    /// ZNE with Richardson extrapolation on scales {1,2,3}.
    pub richardson: Landscape,
    /// ZNE with linear extrapolation on scales {1,3}.
    pub linear: Landscape,
}

impl ZneLandscapes {
    /// Generates all four landscapes on `grid` by executing the device at
    /// every grid point (the expensive ground-truth path OSCAR avoids).
    pub fn generate(device: &QpuDevice, grid: Grid2d) -> Self {
        let richardson_cfg = ZneConfig::richardson_123();
        let linear_cfg = ZneConfig::linear_13();
        let ideal = Landscape::from_qaoa(grid, device.evaluator());
        let unmitigated = Landscape::generate(grid, |b, g| device.execute_scaled(&[b], &[g], 1.0));
        let richardson = Landscape::generate(grid, |b, g| {
            richardson_cfg.extrapolate(&mut |c| device.execute_scaled(&[b], &[g], c))
        });
        let linear = Landscape::generate(grid, |b, g| {
            linear_cfg.extrapolate(&mut |c| device.execute_scaled(&[b], &[g], c))
        });
        ZneLandscapes {
            ideal,
            unmitigated,
            richardson,
            linear,
        }
    }

    /// The metrics of each original landscape.
    pub fn metrics(&self) -> MitigationMetrics {
        MitigationMetrics {
            unmitigated: metrics_of(&self.unmitigated),
            richardson: metrics_of(&self.richardson),
            linear: metrics_of(&self.linear),
        }
    }

    /// Reconstructs each mitigated landscape from a `fraction` of samples
    /// and reports the reconstructed metrics (the OSCAR-side columns of
    /// Figure 10).
    pub fn reconstructed_metrics<R: Rng + ?Sized>(
        &self,
        oscar: &Reconstructor,
        fraction: f64,
        rng: &mut R,
    ) -> MitigationMetrics {
        let recon =
            |l: &Landscape, rng: &mut R| oscar.reconstruct_fraction(l, fraction, rng).landscape;
        MitigationMetrics {
            unmitigated: metrics_of(&recon(&self.unmitigated, rng)),
            richardson: metrics_of(&recon(&self.richardson, rng)),
            linear: metrics_of(&recon(&self.linear, rng)),
        }
    }
}

/// Shape metrics for the three mitigation settings (Figure 10's bars).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MitigationMetrics {
    /// No mitigation.
    pub unmitigated: LandscapeMetrics,
    /// Richardson {1,2,3}.
    pub richardson: LandscapeMetrics,
    /// Linear {1,3}.
    pub linear: LandscapeMetrics,
}

fn metrics_of(l: &Landscape) -> LandscapeMetrics {
    LandscapeMetrics::compute(l.values(), l.grid().rows(), l.grid().cols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_executor::latency::LatencyModel;
    use oscar_mitigation::model::NoiseModel;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn device(shots: Option<usize>) -> QpuDevice {
        let mut rng = StdRng::seed_from_u64(10);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let mut noise = NoiseModel::depolarizing(0.001, 0.02);
        if let Some(s) = shots {
            noise = noise.with_shots(s);
        }
        QpuDevice::new("zne-dev", &problem, 1, noise, LatencyModel::instant(), 0)
    }

    #[test]
    fn zne_improves_over_unmitigated() {
        // Without shot noise, both extrapolations should sit closer to the
        // ideal landscape than the unmitigated one.
        let dev = device(None);
        let grid = Grid2d::small_p1(10, 12);
        let set = ZneLandscapes::generate(&dev, grid);
        let err = |l: &Landscape| crate::metrics::nrmse(set.ideal.values(), l.values());
        let raw = err(&set.unmitigated);
        let rich = err(&set.richardson);
        let lin = err(&set.linear);
        assert!(rich < raw, "richardson {rich} vs raw {raw}");
        assert!(lin < raw, "linear {lin} vs raw {raw}");
    }

    #[test]
    fn richardson_is_rougher_with_shot_noise() {
        // Figure 9/10's headline: Richardson amplifies shot noise into
        // salt-like jaggedness; linear stays smooth.
        let dev = device(Some(1024));
        let grid = Grid2d::small_p1(12, 14);
        let set = ZneLandscapes::generate(&dev, grid);
        let m = set.metrics();
        assert!(
            m.richardson.second_derivative > 2.0 * m.linear.second_derivative,
            "richardson roughness {} should far exceed linear {}",
            m.richardson.second_derivative,
            m.linear.second_derivative
        );
    }

    #[test]
    fn reconstruction_preserves_roughness_ordering() {
        let dev = device(Some(1024));
        let grid = Grid2d::small_p1(12, 14);
        let set = ZneLandscapes::generate(&dev, grid);
        let mut rng = StdRng::seed_from_u64(3);
        let rm = set.reconstructed_metrics(&Reconstructor::default(), 0.3, &mut rng);
        assert!(
            rm.richardson.second_derivative > rm.linear.second_derivative,
            "reconstructed roughness ordering lost: {} vs {}",
            rm.richardson.second_derivative,
            rm.linear.second_derivative
        );
    }
}
