//! The paper's three debugging/tuning use cases plus the slice-experiment
//! methodology of Tables 2–3.

pub mod initialization;
pub mod mitigation;
pub mod optimizer_debug;
pub mod slices;
