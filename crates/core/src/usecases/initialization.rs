//! Use case 3: choosing optimizer initial points with OSCAR (paper §8,
//! Table 6).
//!
//! The minimum of the interpolated reconstructed landscape is a
//! high-quality initial point for the regular VQA workflow: the subsequent
//! real optimization needs far fewer circuit queries than starting from a
//! random point (dramatically so for ADAM; for already-frugal optimizers
//! like COBYLA the reconstruction overhead can dominate — which Table 6
//! and our benchmark both show).

use crate::landscape::Landscape;
use crate::usecases::optimizer_debug::optimize_on_reconstruction;
use oscar_optim::objective::{OptimResult, Optimizer};

/// Query accounting for one initialization strategy comparison
/// (one row-cell of Table 6).
#[derive(Clone, Debug)]
pub struct InitializationReport {
    /// Queries of the real-circuit optimization started from the random
    /// point.
    pub random_queries: usize,
    /// Queries of the real-circuit optimization started from the
    /// OSCAR-suggested point.
    pub oscar_queries: usize,
    /// Circuit executions spent reconstructing the landscape (the "recon"
    /// overhead column of Table 6).
    pub reconstruction_queries: usize,
    /// Final value from the random start.
    pub random_fx: f64,
    /// Final value from the OSCAR start.
    pub oscar_fx: f64,
    /// The OSCAR-suggested initial point.
    pub suggested_init: [f64; 2],
    /// Full run from the random start.
    pub random_run: OptimResult,
    /// Full run from the OSCAR start.
    pub oscar_run: OptimResult,
}

/// Compares random initialization against OSCAR initialization for one
/// optimizer and one problem.
///
/// * `reconstruction` — an OSCAR-reconstructed landscape;
/// * `reconstruction_queries` — how many circuit executions produced it;
/// * `circuit_objective` — the real (expensive) objective;
/// * `random_init` — the baseline random starting point.
pub fn compare_initialization(
    optimizer: &dyn Optimizer,
    reconstruction: &Landscape,
    reconstruction_queries: usize,
    circuit_objective: &mut dyn FnMut(&[f64]) -> f64,
    random_init: [f64; 2],
) -> InitializationReport {
    // Find the reconstruction's minimum by optimizing on the spline from
    // its best grid point (instant queries).
    let (_, (b0, g0)) = reconstruction.argmin();
    let inner = optimize_on_reconstruction(optimizer, reconstruction, [b0, g0]);
    let suggested = [inner.x[0], inner.x[1]];

    let random_run = optimizer.minimize(circuit_objective, &random_init);
    let oscar_run = optimizer.minimize(circuit_objective, &suggested);

    InitializationReport {
        random_queries: random_run.queries,
        oscar_queries: oscar_run.queries,
        reconstruction_queries,
        random_fx: random_run.fx,
        oscar_fx: oscar_run.fx,
        suggested_init: suggested,
        random_run,
        oscar_run,
    }
}

impl InitializationReport {
    /// Total OSCAR-side circuit cost including reconstruction overhead
    /// (Table 6's "opt.+recon." column).
    pub fn oscar_total_queries(&self) -> usize {
        self.oscar_queries + self.reconstruction_queries
    }

    /// `true` when the two strategies reach comparable final values
    /// (within `tol`) — the paper's observation that results land within
    /// optimizer termination tolerance of each other.
    pub fn outcomes_comparable(&self, tol: f64) -> bool {
        (self.random_fx - self.oscar_fx).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use crate::interpolate::BivariateSpline;
    use crate::reconstruct::Reconstructor;
    use oscar_optim::adam::Adam;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oscar_init_reduces_adam_queries() {
        let mut rng = StdRng::seed_from_u64(31);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let truth = Landscape::from_qaoa(Grid2d::small_p1(24, 32), &problem.qaoa_evaluator());
        let mut rng = StdRng::seed_from_u64(32);
        let report = Reconstructor::default().reconstruct_fraction(&truth, 0.15, &mut rng);

        let spline_truth = BivariateSpline::fit(&truth);
        let mut circuit = |p: &[f64]| spline_truth.eval_clamped(p[0], p[1]);
        let adam = Adam {
            max_iter: 400,
            grad_tol: 1e-3,
            ..Adam::default()
        };
        let cmp = compare_initialization(
            &adam,
            &report.landscape,
            report.samples_used,
            &mut circuit,
            [0.7, -1.2], // a deliberately poor random start
        );
        assert!(
            cmp.oscar_queries < cmp.random_queries,
            "OSCAR init should cut queries: {} vs {}",
            cmp.oscar_queries,
            cmp.random_queries
        );
        assert!(
            cmp.oscar_fx <= cmp.random_fx + 0.05,
            "OSCAR start should not be worse: {} vs {}",
            cmp.oscar_fx,
            cmp.random_fx
        );
    }

    #[test]
    fn totals_include_reconstruction() {
        let r = InitializationReport {
            random_queries: 100,
            oscar_queries: 30,
            reconstruction_queries: 50,
            random_fx: -1.0,
            oscar_fx: -1.0,
            suggested_init: [0.0, 0.0],
            random_run: dummy_run(),
            oscar_run: dummy_run(),
        };
        assert_eq!(r.oscar_total_queries(), 80);
        assert!(r.outcomes_comparable(1e-6));
    }

    fn dummy_run() -> oscar_optim::objective::OptimResult {
        oscar_optim::objective::OptimResult {
            x: vec![0.0, 0.0],
            fx: -1.0,
            queries: 0,
            iterations: 0,
            trace: vec![],
            converged: true,
        }
    }
}
