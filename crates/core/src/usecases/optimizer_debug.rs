//! Use case 2: configuring and debugging optimizers on the reconstructed
//! landscape (paper §7, Figures 11–13).
//!
//! After reconstructing and spline-interpolating a landscape, an optimizer
//! query becomes a (nearly free) spline evaluation instead of a circuit
//! batch. The key validation is that optimizing on the interpolated
//! reconstruction converges to (almost) the same endpoint as optimizing
//! with real circuit executions.

use crate::interpolate::{BivariateSpline, MultilinearInterp};
use crate::landscape::{Landscape, NdLandscape};
use oscar_optim::objective::{OptimResult, Optimizer};

/// Comparison of one optimizer run on the interpolated reconstruction vs
/// direct circuit execution (one point of Figure 12).
#[derive(Clone, Debug)]
pub struct PathComparison {
    /// Run on the spline-interpolated reconstructed landscape.
    pub on_reconstruction: OptimResult,
    /// Run querying the real (simulated) circuit.
    pub on_circuit: OptimResult,
    /// Euclidean distance between the two endpoints.
    pub endpoint_distance: f64,
}

/// Runs `optimizer` from `x0 = [beta, gamma]` twice: once against the
/// interpolated `reconstruction`, once against `circuit_objective`
/// (which should execute the real circuit), and compares endpoints.
pub fn compare_paths(
    optimizer: &dyn Optimizer,
    reconstruction: &Landscape,
    circuit_objective: &mut dyn FnMut(&[f64]) -> f64,
    x0: [f64; 2],
) -> PathComparison {
    let spline = BivariateSpline::fit(reconstruction);
    let mut spline_obj = |p: &[f64]| spline.eval_clamped(p[0], p[1]);
    let on_reconstruction = optimizer.minimize(&mut spline_obj, &x0);
    let on_circuit = optimizer.minimize(circuit_objective, &x0);
    let endpoint_distance = on_reconstruction.endpoint_distance(&on_circuit);
    PathComparison {
        on_reconstruction,
        on_circuit,
        endpoint_distance,
    }
}

/// Runs `optimizer` purely on the interpolated reconstruction (the
/// instant-query mode used for optimizer selection, Figure 13).
pub fn optimize_on_reconstruction(
    optimizer: &dyn Optimizer,
    reconstruction: &Landscape,
    x0: [f64; 2],
) -> OptimResult {
    let spline = BivariateSpline::fit(reconstruction);
    let mut obj = |p: &[f64]| spline.eval_clamped(p[0], p[1]);
    optimizer.minimize(&mut obj, &x0)
}

/// N-D counterpart of [`optimize_on_reconstruction`]: runs `optimizer`
/// on the clamped multilinear interpolation of a tensor-shaped
/// reconstruction, starting from the parameter vector `x0` (the
/// optimizers themselves are dimension-agnostic).
///
/// # Panics
///
/// Panics if `x0.len()` differs from the reconstruction's rank.
pub fn optimize_on_reconstruction_nd(
    optimizer: &dyn Optimizer,
    reconstruction: &NdLandscape,
    x0: &[f64],
) -> OptimResult {
    assert_eq!(
        x0.len(),
        reconstruction.shape().rank(),
        "start point rank mismatch"
    );
    let interp = MultilinearInterp::fit(reconstruction);
    let mut obj = |p: &[f64]| interp.eval_clamped(p);
    optimizer.minimize(&mut obj, x0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2d;
    use crate::reconstruct::Reconstructor;
    use oscar_optim::adam::Adam;
    use oscar_optim::cobyla::Cobyla;
    use oscar_problems::ising::IsingProblem;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Landscape, Landscape) {
        let mut rng = StdRng::seed_from_u64(21);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let truth = Landscape::from_qaoa(Grid2d::small_p1(24, 32), &problem.qaoa_evaluator());
        let mut rng = StdRng::seed_from_u64(22);
        let recon = Reconstructor::default()
            .reconstruct_fraction(&truth, 0.2, &mut rng)
            .landscape;
        (truth, recon)
    }

    #[test]
    fn adam_endpoints_close_between_recon_and_circuit() {
        let (truth, recon) = setup();
        let spline_truth = BivariateSpline::fit(&truth);
        let mut circuit = |p: &[f64]| spline_truth.eval_clamped(p[0], p[1]);
        let adam = Adam {
            max_iter: 150,
            ..Adam::default()
        };
        let cmp = compare_paths(&adam, &recon, &mut circuit, [0.1, 0.3]);
        assert!(
            cmp.endpoint_distance < 0.3,
            "endpoints too far: {}",
            cmp.endpoint_distance
        );
    }

    #[test]
    fn cobyla_runs_on_reconstruction() {
        let (_, recon) = setup();
        let cobyla = Cobyla::default();
        let res = optimize_on_reconstruction(&cobyla, &recon, [0.05, 0.2]);
        // Should descend below the starting value.
        assert!(res.fx < res.trace[0].1, "no descent: {:?}", res.fx);
    }

    #[test]
    fn nelder_mead_descends_on_nd_reconstruction() {
        use crate::grid::{Axis, TensorShape};
        use oscar_optim::nelder_mead::NelderMead;

        let shape = TensorShape::new(vec![Axis::new(-1.0, 1.0, 7); 4]);
        let recon = NdLandscape::generate(shape, |p| {
            p.iter().map(|x| (x - 0.3) * (x - 0.3)).sum::<f64>()
        });
        let nm = NelderMead::default();
        let res = optimize_on_reconstruction_nd(&nm, &recon, &[-0.8, -0.8, 0.8, -0.5]);
        assert!(res.fx < res.trace[0].1, "no descent: {:?}", res.fx);
        for &x in &res.x {
            assert!((x - 0.3).abs() < 0.25, "endpoint {x} far from minimum");
        }
    }

    #[test]
    fn reconstruction_queries_are_free_of_circuit_cost() {
        // The query count on the reconstruction is real, but each query is
        // a spline evaluation; verify the count is reported.
        let (_, recon) = setup();
        let adam = Adam {
            max_iter: 20,
            grad_tol: 0.0,
            ..Adam::default()
        };
        let res = optimize_on_reconstruction(&adam, &recon, [0.0, 0.0]);
        assert_eq!(res.queries, 1 + 20 * 5);
    }
}
