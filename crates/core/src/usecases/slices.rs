//! Random 2-D slice reconstruction for high-dimensional ansatzes — the
//! methodology behind paper Tables 2 and 3.
//!
//! For ansatzes with more than two parameters, the paper evaluates OSCAR
//! by repeatedly (1) picking two parameters to vary, (2) fixing the rest
//! to random values, (3) grid-searching the 2-D slice, and (4)
//! reconstructing it from a subset of samples.

use crate::grid::{Axis, Grid2d};
use crate::landscape::Landscape;
use crate::reconstruct::Reconstructor;
use oscar_problems::ansatz::Ansatz;
use oscar_qsim::pauli::PauliSum;
use rand::Rng;

/// Configuration for a slice-reconstruction experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SliceConfig {
    /// Equidistant points per varying parameter (Table 2/3 "#Samples":
    /// 7 for 8-parameter instances, 14 for 3- and 6-parameter ones).
    pub grid_points: usize,
    /// Fraction of slice points measured for reconstruction.
    pub fraction: f64,
    /// Number of random slices (the paper uses 100).
    pub repeats: usize,
    /// Range of each parameter (slices span `[-range, range]`).
    pub range: f64,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            grid_points: 14,
            fraction: 0.5,
            repeats: 20,
            range: std::f64::consts::PI,
        }
    }
}

/// Result of a slice experiment: per-slice NRMSE values.
#[derive(Clone, Debug)]
pub struct SliceReport {
    /// NRMSE of each random slice.
    pub errors: Vec<f64>,
}

impl SliceReport {
    /// Median NRMSE across slices (the table entry).
    pub fn median(&self) -> f64 {
        let mut sorted = self.errors.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[sorted.len() / 2]
    }

    /// Mean NRMSE across slices.
    pub fn mean(&self) -> f64 {
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }
}

/// Runs the slice-reconstruction experiment for an ansatz/observable pair.
///
/// # Panics
///
/// Panics if the ansatz has fewer than 2 parameters or `repeats == 0`.
pub fn slice_reconstruction<R: Rng + ?Sized>(
    ansatz: &Ansatz,
    observable: &PauliSum,
    cfg: &SliceConfig,
    oscar: &Reconstructor,
    rng: &mut R,
) -> SliceReport {
    let dim = ansatz.num_params();
    assert!(dim >= 2, "need at least two parameters to slice");
    assert!(cfg.repeats > 0, "need at least one repeat");
    let axis = Axis::new(-cfg.range, cfg.range, cfg.grid_points);
    let grid = Grid2d::new(axis, axis);

    let mut errors = Vec::with_capacity(cfg.repeats);
    for _ in 0..cfg.repeats {
        // Pick two distinct varying parameters; fix the rest randomly.
        let i = rng.gen_range(0..dim);
        let j = loop {
            let j = rng.gen_range(0..dim);
            if j != i {
                break j;
            }
        };
        let mut base: Vec<f64> = (0..dim)
            .map(|_| rng.gen_range(-cfg.range..cfg.range))
            .collect();

        let truth = Landscape::generate(grid, |a, b| {
            base[i] = a;
            base[j] = b;
            ansatz.expectation(&base, observable)
        });
        let report = oscar.reconstruct_fraction(&truth, cfg.fraction, rng);
        errors.push(report.nrmse);
    }
    SliceReport { errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscar_problems::ising::IsingProblem;
    use oscar_problems::molecules::h2_hamiltonian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_local_slices_reconstruct_well() {
        // Table 2's pattern: the Two-local ansatz has very smooth slices.
        let ansatz = Ansatz::two_local(2, 1);
        let h = h2_hamiltonian();
        let cfg = SliceConfig {
            grid_points: 14,
            fraction: 0.5,
            repeats: 4,
            ..SliceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(41);
        let report = slice_reconstruction(&ansatz, &h, &cfg, &Reconstructor::default(), &mut rng);
        assert_eq!(report.errors.len(), 4);
        assert!(report.median() < 0.6, "median {}", report.median());
    }

    #[test]
    fn qaoa_slices_have_higher_error_than_two_local() {
        // Qualitative ordering of Table 2: QAOA slices are harder than
        // Two-local ones at the same tiny grid size.
        let mut rng = StdRng::seed_from_u64(42);
        let problem = IsingProblem::random_3_regular(4, &mut rng);
        let h = problem.hamiltonian();
        let qaoa = Ansatz::qaoa(&problem, 4); // 8 parameters
        let two_local = Ansatz::two_local(4, 1); // 8 parameters
        let cfg = SliceConfig {
            grid_points: 7,
            fraction: 0.6,
            repeats: 6,
            ..SliceConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(43);
        let q = slice_reconstruction(&qaoa, &h, &cfg, &Reconstructor::default(), &mut rng);
        let mut rng = StdRng::seed_from_u64(43);
        let t = slice_reconstruction(&two_local, &h, &cfg, &Reconstructor::default(), &mut rng);
        assert!(
            q.mean() > t.mean(),
            "QAOA {} should exceed Two-local {}",
            q.mean(),
            t.mean()
        );
    }

    #[test]
    #[should_panic(expected = "at least two parameters")]
    fn rejects_single_parameter_ansatz() {
        use oscar_qsim::pauli::PauliString;
        let ansatz = Ansatz::uccsd(2, &[0], vec![PauliString::parse("XY", 1.0).unwrap()]);
        let h = h2_hamiltonian();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = slice_reconstruction(
            &ansatz,
            &h,
            &SliceConfig::default(),
            &Reconstructor::default(),
            &mut rng,
        );
    }
}
