//! Parameter-space grids for landscape generation (paper Table 1).

/// One axis of a parameter grid: `n` equidistant points spanning
/// `[lo, hi]` inclusive.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::Axis;
///
/// let axis = Axis::new(0.0, 1.0, 5);
/// assert_eq!(axis.values(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Axis {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Number of grid points (>= 2).
    pub n: usize,
}

impl Axis {
    /// Creates an axis.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `n < 2`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi, "axis bounds must satisfy lo < hi");
        assert!(n >= 2, "axis needs at least two points");
        Axis { lo, hi, n }
    }

    /// The `i`-th grid value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn value(&self, i: usize) -> f64 {
        assert!(i < self.n, "axis index out of range");
        self.lo + (self.hi - self.lo) * i as f64 / (self.n - 1) as f64
    }

    /// All grid values in order.
    pub fn values(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.value(i)).collect()
    }

    /// Grid spacing.
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.n - 1) as f64
    }
}

/// A 2-D parameter grid: rows sweep the β (mixer) axis, columns the γ
/// (phase) axis. Landscapes over the grid are stored row-major.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid2d {
    /// The row (β) axis.
    pub beta: Axis,
    /// The column (γ) axis.
    pub gamma: Axis,
}

impl Grid2d {
    /// Creates a grid from two axes.
    pub fn new(beta: Axis, gamma: Axis) -> Self {
        Grid2d { beta, gamma }
    }

    /// The paper's p=1 grid (Table 1): β ∈ [−π/4, π/4] with 50 points,
    /// γ ∈ [−π/2, π/2] with 100 points — 5,000 circuits for a full grid
    /// search.
    pub fn standard_p1() -> Self {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
        Grid2d {
            beta: Axis::new(-FRAC_PI_4, FRAC_PI_4, 50),
            gamma: Axis::new(-FRAC_PI_2, FRAC_PI_2, 100),
        }
    }

    /// A reduced p=1 grid for quick tests and examples (same ranges,
    /// fewer points).
    pub fn small_p1(nb: usize, ng: usize) -> Self {
        use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};
        Grid2d {
            beta: Axis::new(-FRAC_PI_4, FRAC_PI_4, nb),
            gamma: Axis::new(-FRAC_PI_2, FRAC_PI_2, ng),
        }
    }

    /// Number of rows (β points).
    pub fn rows(&self) -> usize {
        self.beta.n
    }

    /// Number of columns (γ points).
    pub fn cols(&self) -> usize {
        self.gamma.n
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    /// `true` for the (impossible) empty grid; present for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(β, γ)` values at flat row-major index `i`.
    pub fn point(&self, i: usize) -> (f64, f64) {
        let r = i / self.cols();
        let c = i % self.cols();
        (self.beta.value(r), self.gamma.value(c))
    }
}

/// The paper's p=2 grid (Table 1): β ∈ [−π/8, π/8] with 12 points per β
/// axis and γ ∈ [−π/4, π/4] with 15 points per γ axis (12² × 15² ≈ 32k
/// circuits). The 4-D landscape is reshaped to 2-D
/// (see [`crate::reshape`]) before reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid4d {
    /// Axis for each of the two β parameters.
    pub beta: Axis,
    /// Axis for each of the two γ parameters.
    pub gamma: Axis,
}

impl Grid4d {
    /// The paper's p=2 configuration.
    pub fn standard_p2() -> Self {
        use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};
        Grid4d {
            beta: Axis::new(-FRAC_PI_8, FRAC_PI_8, 12),
            gamma: Axis::new(-FRAC_PI_4, FRAC_PI_4, 15),
        }
    }

    /// A reduced p=2 configuration for quick runs.
    pub fn small_p2(nb: usize, ng: usize) -> Self {
        use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};
        Grid4d {
            beta: Axis::new(-FRAC_PI_8, FRAC_PI_8, nb),
            gamma: Axis::new(-FRAC_PI_4, FRAC_PI_4, ng),
        }
    }

    /// Total number of 4-D grid points `nb² × ng²`.
    pub fn len(&self) -> usize {
        self.beta.n * self.beta.n * self.gamma.n * self.gamma.n
    }

    /// `true` for the (impossible) empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(β1, β2, γ1, γ2)` tuple at 4-D index `(b1, b2, g1, g2)`.
    pub fn point(&self, b1: usize, b2: usize, g1: usize, g2: usize) -> (f64, f64, f64, f64) {
        (
            self.beta.value(b1),
            self.beta.value(b2),
            self.gamma.value(g1),
            self.gamma.value(g2),
        )
    }

    /// The shape of the reshaped 2-D landscape: `(nb², ng²)`.
    pub fn reshaped_dims(&self) -> (usize, usize) {
        (self.beta.n * self.beta.n, self.gamma.n * self.gamma.n)
    }
}

/// A general N-D parameter grid: one [`Axis`] per circuit parameter,
/// landscapes stored row-major with the **last** axis contiguous.
///
/// For depth-`p` QAOA the convention is `[β1..βp, γ1..γp]` (mixer axes
/// first, matching [`Grid2d`]'s rows-sweep-β layout at p = 1); VQE
/// parameter scans use one axis per ansatz parameter.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::{Axis, TensorShape};
///
/// let shape = TensorShape::new(vec![
///     Axis::new(-1.0, 1.0, 3),
///     Axis::new(0.0, 2.0, 5),
/// ]);
/// assert_eq!(shape.dims(), vec![3, 5]);
/// assert_eq!(shape.len(), 15);
/// assert_eq!(shape.point(14), vec![1.0, 2.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TensorShape {
    axes: Vec<Axis>,
}

impl TensorShape {
    /// Creates a shape from per-parameter axes.
    ///
    /// # Panics
    ///
    /// Panics if `axes` is empty.
    pub fn new(axes: Vec<Axis>) -> Self {
        assert!(!axes.is_empty(), "shape needs at least one axis");
        TensorShape { axes }
    }

    /// The per-parameter axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Number of parameters (tensor rank).
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis point counts.
    pub fn dims(&self) -> Vec<usize> {
        self.axes.iter().map(|a| a.n).collect()
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.n).product()
    }

    /// `true` for the (impossible) empty shape; present for API
    /// symmetry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parameter values at flat row-major index `i` (last axis
    /// contiguous).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn point(&self, i: usize) -> Vec<f64> {
        assert!(i < self.len(), "flat index out of range");
        let mut out = vec![0.0; self.axes.len()];
        let mut rem = i;
        for (k, axis) in self.axes.iter().enumerate().rev() {
            out[k] = axis.value(rem % axis.n);
            rem /= axis.n;
        }
        out
    }
}

/// The landscape shape a job sweeps: the classic 2-D `(β, γ)` grid or a
/// general N-D tensor (p >= 2 QAOA, VQE parameter scans).
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// The paper's p = 1 layout: rows sweep β, columns sweep γ.
    Grid2d(Grid2d),
    /// One axis per circuit parameter, row-major, last axis contiguous.
    Tensor(TensorShape),
}

impl Shape {
    /// The QAOA depth-`p` shape with `nb` points per β axis and `ng`
    /// per γ axis: β ∈ [−π/(4p), π/(4p)], γ ∈ [−π/(2p), π/(2p)] (the
    /// paper's Table 1 ranges, which reduce to the p = 1 and p = 2
    /// grids at those depths). `p == 1` yields the native 2-D shape.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn qaoa(p: usize, nb: usize, ng: usize) -> Self {
        Self::qaoa_with_counts(p, &vec![nb; p], &vec![ng; p])
    }

    /// As [`Shape::qaoa`] with explicit per-axis counts: `nb[i]` points
    /// on the i-th β axis, `ng[i]` on the i-th γ axis.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or the count slices are not length `p`.
    pub fn qaoa_with_counts(p: usize, nb: &[usize], ng: &[usize]) -> Self {
        use std::f64::consts::PI;
        assert!(p > 0, "QAOA depth must be positive");
        assert!(
            nb.len() == p && ng.len() == p,
            "need one point count per β and γ axis"
        );
        let b_hi = PI / (4.0 * p as f64);
        let g_hi = PI / (2.0 * p as f64);
        if p == 1 {
            return Shape::Grid2d(Grid2d::new(
                Axis::new(-b_hi, b_hi, nb[0]),
                Axis::new(-g_hi, g_hi, ng[0]),
            ));
        }
        let mut axes = Vec::with_capacity(2 * p);
        for &n in nb {
            axes.push(Axis::new(-b_hi, b_hi, n));
        }
        for &n in ng {
            axes.push(Axis::new(-g_hi, g_hi, n));
        }
        Shape::Tensor(TensorShape::new(axes))
    }

    /// A VQE parameter-scan shape: `counts[i]` points on the i-th
    /// ansatz parameter, each spanning θ ∈ [−π/2, π/2].
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn vqe_scan(counts: &[usize]) -> Self {
        use std::f64::consts::FRAC_PI_2;
        Shape::Tensor(TensorShape::new(
            counts
                .iter()
                .map(|&n| Axis::new(-FRAC_PI_2, FRAC_PI_2, n))
                .collect(),
        ))
    }

    /// Number of parameters the shape sweeps (2 for a grid).
    pub fn rank(&self) -> usize {
        match self {
            Shape::Grid2d(_) => 2,
            Shape::Tensor(t) => t.rank(),
        }
    }

    /// Per-axis point counts.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            Shape::Grid2d(g) => vec![g.rows(), g.cols()],
            Shape::Tensor(t) => t.dims(),
        }
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        match self {
            Shape::Grid2d(g) => g.len(),
            Shape::Tensor(t) => t.len(),
        }
    }

    /// `true` for the (impossible) empty shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parameter values at flat row-major index `i`.
    pub fn point(&self, i: usize) -> Vec<f64> {
        match self {
            Shape::Grid2d(g) => {
                let (b, gm) = g.point(i);
                vec![b, gm]
            }
            Shape::Tensor(t) => t.point(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_endpoints_inclusive() {
        let a = Axis::new(-1.0, 1.0, 3);
        assert_eq!(a.values(), vec![-1.0, 0.0, 1.0]);
        assert_eq!(a.step(), 1.0);
    }

    #[test]
    fn standard_p1_matches_table1() {
        let g = Grid2d::standard_p1();
        assert_eq!(g.rows(), 50);
        assert_eq!(g.cols(), 100);
        assert_eq!(g.len(), 5000);
        assert!((g.beta.lo + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((g.gamma.hi - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn standard_p2_matches_table1() {
        let g = Grid4d::standard_p2();
        assert_eq!(g.len(), 12 * 12 * 15 * 15);
        assert_eq!(g.reshaped_dims(), (144, 225));
    }

    #[test]
    fn point_roundtrip() {
        let g = Grid2d::small_p1(5, 7);
        let (b, gm) = g.point(0);
        assert!((b - g.beta.lo).abs() < 1e-12);
        assert!((gm - g.gamma.lo).abs() < 1e-12);
        let (b, gm) = g.point(g.len() - 1);
        assert!((b - g.beta.hi).abs() < 1e-12);
        assert!((gm - g.gamma.hi).abs() < 1e-12);
    }

    #[test]
    fn tensor_shape_point_is_row_major_last_axis_contiguous() {
        let t = TensorShape::new(vec![Axis::new(0.0, 1.0, 2), Axis::new(0.0, 3.0, 4)]);
        assert_eq!(t.point(0), vec![0.0, 0.0]);
        assert_eq!(t.point(1), vec![0.0, 1.0]);
        assert_eq!(t.point(4), vec![1.0, 0.0]);
        assert_eq!(t.point(7), vec![1.0, 3.0]);
    }

    #[test]
    fn qaoa_shape_depth_one_is_the_2d_grid() {
        let s = Shape::qaoa(1, 50, 100);
        match s {
            Shape::Grid2d(g) => {
                let std = Grid2d::standard_p1();
                assert_eq!(g.beta, std.beta);
                assert_eq!(g.gamma, std.gamma);
            }
            Shape::Tensor(_) => panic!("p=1 must produce the native grid"),
        }
    }

    #[test]
    fn qaoa_shape_depth_two_matches_paper_ranges() {
        let s = Shape::qaoa(2, 12, 15);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.dims(), vec![12, 12, 15, 15]);
        assert_eq!(s.len(), Grid4d::standard_p2().len());
        match &s {
            Shape::Tensor(t) => {
                let std = Grid4d::standard_p2();
                assert!((t.axes()[0].lo - std.beta.lo).abs() < 1e-15);
                assert!((t.axes()[2].hi - std.gamma.hi).abs() < 1e-15);
            }
            Shape::Grid2d(_) => panic!("p=2 must produce a tensor"),
        }
    }

    #[test]
    fn shape_point_matches_grid_point() {
        let g = Grid2d::small_p1(5, 7);
        let s = Shape::Grid2d(g);
        for i in [0, 6, 17, 34] {
            let (b, gm) = g.point(i);
            assert_eq!(s.point(i), vec![b, gm]);
        }
    }

    #[test]
    #[should_panic(expected = "flat index out of range")]
    fn tensor_shape_rejects_out_of_range_index() {
        let t = TensorShape::new(vec![Axis::new(0.0, 1.0, 2), Axis::new(0.0, 1.0, 2)]);
        let _ = t.point(4);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn axis_rejects_inverted_bounds() {
        let _ = Axis::new(1.0, 0.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn axis_rejects_single_point() {
        let _ = Axis::new(0.0, 1.0, 1);
    }
}
