//! General p-layer landscape reshaping — the extension of the paper's p=2
//! "concatenation" trick (§4.1: "When reconstructing high-dimensional
//! landscapes, we perform concatenations to reduce the dimension").
//!
//! A depth-`p` QAOA landscape is 2p-dimensional. Pairing all β indices
//! into the row coordinate and all γ indices into the column coordinate
//! yields a `(nb^p, ng^p)` 2-D grid that the standard 2-D CS machinery
//! reconstructs. Accuracy degrades with `p` (artificial repetition), which
//! is exactly the behaviour the paper reports for p=2.

use crate::grid::Axis;

/// A depth-`p` QAOA grid: one β axis and one γ axis replicated `p` times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridNd {
    /// The per-layer β axis.
    pub beta: Axis,
    /// The per-layer γ axis.
    pub gamma: Axis,
    /// QAOA depth (number of β and of γ parameters).
    pub p: usize,
}

impl GridNd {
    /// Creates a depth-`p` grid.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(beta: Axis, gamma: Axis, p: usize) -> Self {
        assert!(p >= 1, "depth must be at least 1");
        GridNd { beta, gamma, p }
    }

    /// Total number of grid points `nb^p * ng^p`.
    pub fn len(&self) -> usize {
        self.beta.n.pow(self.p as u32) * self.gamma.n.pow(self.p as u32)
    }

    /// `true` for the (impossible) empty grid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The reshaped 2-D dimensions `(nb^p, ng^p)`.
    pub fn reshaped_dims(&self) -> (usize, usize) {
        (
            self.beta.n.pow(self.p as u32),
            self.gamma.n.pow(self.p as u32),
        )
    }

    /// Decodes a reshaped row index into the `p` per-layer β values
    /// (layer 0 is the most significant digit, matching the p=2 layout in
    /// [`crate::reshape`]).
    pub fn betas_of_row(&self, mut row: usize) -> Vec<f64> {
        assert!(row < self.reshaped_dims().0, "row out of range");
        let nb = self.beta.n;
        let mut digits = vec![0usize; self.p];
        for d in (0..self.p).rev() {
            digits[d] = row % nb;
            row /= nb;
        }
        digits.into_iter().map(|i| self.beta.value(i)).collect()
    }

    /// Decodes a reshaped column index into the `p` per-layer γ values.
    pub fn gammas_of_col(&self, mut col: usize) -> Vec<f64> {
        assert!(col < self.reshaped_dims().1, "col out of range");
        let ng = self.gamma.n;
        let mut digits = vec![0usize; self.p];
        for d in (0..self.p).rev() {
            digits[d] = col % ng;
            col /= ng;
        }
        digits.into_iter().map(|i| self.gamma.value(i)).collect()
    }

    /// Generates the full reshaped 2-D landscape by evaluating
    /// `f(betas, gammas)` at every point (row-major).
    pub fn generate(&self, mut f: impl FnMut(&[f64], &[f64]) -> f64) -> Vec<f64> {
        let (rows, cols) = self.reshaped_dims();
        let mut out = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let betas = self.betas_of_row(r);
            for c in 0..cols {
                let gammas = self.gammas_of_col(c);
                out.push(f(&betas, &gammas));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid4d;
    use crate::reshape::generate_p2_landscape;

    fn axis(n: usize) -> Axis {
        Axis::new(-1.0, 1.0, n)
    }

    #[test]
    fn p1_matches_flat_grid() {
        let g = GridNd::new(axis(4), axis(5), 1);
        assert_eq!(g.reshaped_dims(), (4, 5));
        let v = g.generate(|b, gm| b[0] * 10.0 + gm[0]);
        assert_eq!(v.len(), 20);
        assert!((v[0] - (-10.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn p2_matches_dedicated_reshape() {
        use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};
        let grid4 = Grid4d::small_p2(3, 4);
        let gnd = GridNd::new(
            Axis::new(-FRAC_PI_8, FRAC_PI_8, 3),
            Axis::new(-FRAC_PI_4, FRAC_PI_4, 4),
            2,
        );
        let f = |b: &[f64], g: &[f64]| b[0] + 2.0 * b[1] + 3.0 * g[0] + 4.0 * g[1];
        let via_p2 = generate_p2_landscape(&grid4, f);
        let via_nd = gnd.generate(f);
        assert_eq!(via_p2.len(), via_nd.len());
        for (a, b) in via_p2.iter().zip(&via_nd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn digit_decoding_roundtrips() {
        let g = GridNd::new(axis(3), axis(4), 3);
        let (rows, cols) = g.reshaped_dims();
        assert_eq!(rows, 27);
        assert_eq!(cols, 64);
        // First row: all betas at lo; last row: all at hi.
        assert!(g.betas_of_row(0).iter().all(|&b| (b + 1.0).abs() < 1e-12));
        assert!(g
            .betas_of_row(rows - 1)
            .iter()
            .all(|&b| (b - 1.0).abs() < 1e-12));
        assert!(g
            .gammas_of_col(cols - 1)
            .iter()
            .all(|&gm| (gm - 1.0).abs() < 1e-12));
    }

    #[test]
    fn p3_reconstruction_is_harder_than_p1() {
        // The paper's trend extends: deeper reshaping hurts accuracy.
        use crate::metrics::nrmse;
        use crate::reconstruct::Reconstructor;
        use oscar_cs::measure::SamplePattern;
        use oscar_problems::ising::IsingProblem;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(55);
        let problem = IsingProblem::random_3_regular(8, &mut rng);
        let eval = problem.qaoa_evaluator();
        let oscar = Reconstructor::default();

        let err_for = |p: usize, nb: usize, ng: usize| {
            let g = GridNd::new(Axis::new(-0.4, 0.4, nb), Axis::new(-0.8, 0.8, ng), p);
            let values = g.generate(|b, gm| eval.expectation(b, gm));
            let (rows, cols) = g.reshaped_dims();
            let mut rng = StdRng::seed_from_u64(56);
            let pattern = SamplePattern::random(rows, cols, 0.2, &mut rng);
            let samples = pattern.gather(&values);
            let recon = oscar.reconstruct_array(rows, cols, &pattern, &samples);
            nrmse(&values, &recon)
        };
        let e1 = err_for(1, 16, 25); // 400 points
        let e3 = err_for(3, 3, 4); // 27 x 64 = 1728 points
        assert!(
            e3 > e1,
            "p=3 reshaped error {e3} should exceed p=1 error {e1}"
        );
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn rejects_zero_depth() {
        let _ = GridNd::new(axis(2), axis(2), 0);
    }
}
