//! Rectangular bivariate spline interpolation (paper §7).
//!
//! Optimizers need a continuous objective, but reconstructions live on a
//! discrete grid. The paper fills the gaps with SciPy's
//! `RectBivariateSpline`; we implement the same class of interpolant —
//! natural cubic splines applied separably (spline along γ in each row,
//! then a spline across the row results along β). Queries cost
//! `O(rows + log cols)` after an `O(rows · cols)` setup per γ-column pass.

use crate::grid::{Grid2d, TensorShape};
use crate::landscape::{Landscape, NdLandscape};

/// A 1-D natural cubic spline through `(xs[i], ys[i])`.
#[derive(Clone, Debug)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots (natural boundary: zero at ends).
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 points or `xs` is not strictly increasing.
    pub fn fit(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "knot count mismatch");
        assert!(xs.len() >= 2, "need at least two knots");
        assert!(
            xs.windows(2).all(|w| w[0] < w[1]),
            "knots must be strictly increasing"
        );
        let n = xs.len();
        let mut m = vec![0.0; n];
        if n > 2 {
            // Tridiagonal system (Thomas algorithm) for interior second
            // derivatives with natural boundary conditions.
            let mut a = vec![0.0; n]; // sub-diagonal
            let mut b = vec![0.0; n]; // diagonal
            let mut c = vec![0.0; n]; // super-diagonal
            let mut d = vec![0.0; n]; // rhs
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                a[i] = h0;
                b[i] = 2.0 * (h0 + h1);
                c[i] = h1;
                d[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            // Forward sweep on interior rows 1..n-1.
            for i in 2..n - 1 {
                let w = a[i] / b[i - 1];
                b[i] -= w * c[i - 1];
                d[i] -= w * d[i - 1];
            }
            // Back substitution.
            m[n - 2] = d[n - 2] / b[n - 2];
            for i in (1..n - 2).rev() {
                m[i] = (d[i] - c[i] * m[i + 1]) / b[i];
            }
        }
        CubicSpline { xs, ys, m }
    }

    /// Evaluates the spline at `x` (clamped extrapolation beyond the
    /// knots: continues the boundary cubic).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Find the segment by binary search.
        let i = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => i.min(n - 2),
            Err(0) => 0,
            Err(i) => (i - 1).min(n - 2),
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let a = 1.0 - t;
        // Standard cubic-spline segment formula.
        a * self.ys[i]
            + t * self.ys[i + 1]
            + ((a * a * a - a) * self.m[i] + (t * t * t - t) * self.m[i + 1]) * h * h / 6.0
    }
}

/// A bivariate spline over a [`Landscape`] grid.
///
/// # Examples
///
/// ```
/// use oscar_core::grid::Grid2d;
/// use oscar_core::interpolate::BivariateSpline;
/// use oscar_core::landscape::Landscape;
///
/// let grid = Grid2d::small_p1(12, 16);
/// let l = Landscape::generate(grid, |b, g| b + 2.0 * g);
/// let spline = BivariateSpline::fit(&l);
/// // A plane is reproduced exactly.
/// assert!((spline.eval(0.1, -0.2) - (0.1 - 0.4)).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct BivariateSpline {
    grid: Grid2d,
    /// One spline per grid row (along the γ axis).
    row_splines: Vec<CubicSpline>,
    beta_values: Vec<f64>,
}

impl BivariateSpline {
    /// Fits the interpolant to a landscape.
    pub fn fit(landscape: &Landscape) -> Self {
        let grid = *landscape.grid();
        let gamma_values = grid.gamma.values();
        let row_splines = (0..grid.rows())
            .map(|r| {
                let row: Vec<f64> = (0..grid.cols()).map(|c| landscape.at(r, c)).collect();
                CubicSpline::fit(gamma_values.clone(), row)
            })
            .collect();
        BivariateSpline {
            grid,
            row_splines,
            beta_values: grid.beta.values(),
        }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// Evaluates at `(beta, gamma)`: γ-splines per row, then a β-spline
    /// across the row results.
    pub fn eval(&self, beta: f64, gamma: f64) -> f64 {
        let col: Vec<f64> = self.row_splines.iter().map(|s| s.eval(gamma)).collect();
        CubicSpline::fit(self.beta_values.clone(), col).eval(beta)
    }

    /// Evaluates at a parameter vector `[beta, gamma]` — the signature
    /// optimizers use.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != 2`.
    pub fn eval_params(&self, params: &[f64]) -> f64 {
        assert_eq!(params.len(), 2, "bivariate spline takes [beta, gamma]");
        self.eval(params[0], params[1])
    }

    /// Evaluates with the query point clamped into the grid box.
    ///
    /// Cubic splines extrapolate as cubics and can diverge arbitrarily
    /// outside the fitted box, which would let an optimizer walk off to
    /// spurious minima. Optimizer objectives should use this method (the
    /// reconstructed landscape only carries information inside the grid).
    pub fn eval_clamped(&self, beta: f64, gamma: f64) -> f64 {
        let b = beta.clamp(self.grid.beta.lo, self.grid.beta.hi);
        let g = gamma.clamp(self.grid.gamma.lo, self.grid.gamma.hi);
        self.eval(b, g)
    }
}

/// A clamped multilinear interpolant over an [`NdLandscape`] — the N-D
/// counterpart of [`BivariateSpline::eval_clamped`] used by descent on
/// tensor-shaped reconstructions. Queries cost `O(N · 2^N)` for rank
/// `N` (the weighted sum over the enclosing cell's corners).
///
/// # Examples
///
/// ```
/// use oscar_core::grid::{Axis, TensorShape};
/// use oscar_core::interpolate::MultilinearInterp;
/// use oscar_core::landscape::NdLandscape;
///
/// let shape = TensorShape::new(vec![Axis::new(0.0, 1.0, 3); 3]);
/// let l = NdLandscape::generate(shape, |p| p[0] + 2.0 * p[1] - p[2]);
/// let interp = MultilinearInterp::fit(&l);
/// // Multilinear functions are reproduced exactly.
/// assert!((interp.eval_clamped(&[0.3, 0.7, 0.1]) - (0.3 + 1.4 - 0.1)).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct MultilinearInterp {
    landscape: NdLandscape,
    /// Row-major strides per axis (last axis contiguous).
    strides: Vec<usize>,
}

impl MultilinearInterp {
    /// Fits the interpolant to a tensor landscape (clones the values).
    pub fn fit(landscape: &NdLandscape) -> Self {
        let dims = landscape.shape().dims();
        let mut strides = vec![1usize; dims.len()];
        for k in (0..dims.len().saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * dims[k + 1];
        }
        MultilinearInterp {
            landscape: landscape.clone(),
            strides,
        }
    }

    /// The underlying shape.
    pub fn shape(&self) -> &TensorShape {
        self.landscape.shape()
    }

    /// Evaluates at `params` with each coordinate clamped into its axis
    /// range (the reconstruction carries no information outside the
    /// scanned box, so optimizers must not walk off it).
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the tensor rank.
    pub fn eval_clamped(&self, params: &[f64]) -> f64 {
        let axes = self.landscape.shape().axes();
        assert_eq!(params.len(), axes.len(), "parameter count mismatch");
        // Per-axis cell index and in-cell fraction.
        let mut cell = Vec::with_capacity(axes.len());
        for (axis, &x) in axes.iter().zip(params.iter()) {
            let clamped = x.clamp(axis.lo, axis.hi);
            let pos = (clamped - axis.lo) / axis.step();
            let lo = (pos.floor() as usize).min(axis.n - 2);
            cell.push((lo, pos - lo as f64));
        }
        // Weighted sum over the 2^N corners of the enclosing cell.
        let corners = 1usize << axes.len();
        let mut acc = 0.0;
        for mask in 0..corners {
            let mut w = 1.0;
            let mut idx = 0usize;
            for (k, &(lo, t)) in cell.iter().enumerate() {
                let hi_side = (mask >> k) & 1 == 1;
                w *= if hi_side { t } else { 1.0 - t };
                idx += (lo + usize::from(hi_side)) * self.strides[k];
            }
            if w != 0.0 {
                acc += w * self.landscape.values()[idx];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_passes_through_knots() {
        let xs = vec![0.0, 1.0, 2.5, 4.0];
        let ys = vec![1.0, -1.0, 0.5, 2.0];
        let s = CubicSpline::fit(xs.clone(), ys.clone());
        for (x, y) in xs.iter().zip(&ys) {
            assert!((s.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn spline_reproduces_line_exactly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x - 3.0).collect();
        let s = CubicSpline::fit(xs, ys);
        for k in 0..50 {
            let x = k as f64 * 0.18;
            assert!((s.eval(x) - (2.0 * x - 3.0)).abs() < 1e-10, "at {x}");
        }
    }

    #[test]
    fn spline_approximates_sine_well() {
        let n = 30;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64 * 6.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let s = CubicSpline::fit(xs, ys);
        for k in 0..100 {
            let x = k as f64 * 0.06;
            assert!((s.eval(x) - x.sin()).abs() < 1e-3, "at {x}");
        }
    }

    #[test]
    fn two_knot_spline_is_linear() {
        let s = CubicSpline::fit(vec![0.0, 2.0], vec![0.0, 4.0]);
        assert!((s.eval(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bivariate_passes_through_grid_points() {
        let grid = Grid2d::small_p1(8, 10);
        let l = Landscape::generate(grid, |b, g| (3.0 * b).sin() * (2.0 * g).cos());
        let spline = BivariateSpline::fit(&l);
        for r in (0..grid.rows()).step_by(2) {
            for c in (0..grid.cols()).step_by(3) {
                let (b, g) = (grid.beta.value(r), grid.gamma.value(c));
                assert!(
                    (spline.eval(b, g) - l.at(r, c)).abs() < 1e-10,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn bivariate_interpolates_smooth_function() {
        let grid = Grid2d::small_p1(20, 25);
        let f = |b: f64, g: f64| (2.0 * b).cos() * (1.5 * g).sin();
        let l = Landscape::generate(grid, f);
        let spline = BivariateSpline::fit(&l);
        // Off-grid points should be close for a smooth function.
        for k in 0..20 {
            let b = -0.7 + k as f64 * 0.07;
            let g = -1.4 + k as f64 * 0.14;
            assert!(
                (spline.eval(b, g) - f(b, g)).abs() < 5e-3,
                "at ({b},{g}): {} vs {}",
                spline.eval(b, g),
                f(b, g)
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        let _ = CubicSpline::fit(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn multilinear_passes_through_tensor_points() {
        use crate::grid::Axis;
        let shape = TensorShape::new(vec![
            Axis::new(-1.0, 1.0, 4),
            Axis::new(0.0, 2.0, 3),
            Axis::new(-0.5, 0.5, 5),
        ]);
        let l = NdLandscape::generate(shape.clone(), |p| (p[0] * 2.0).sin() + p[1] * p[2]);
        let interp = MultilinearInterp::fit(&l);
        for i in (0..shape.len()).step_by(7) {
            let p = shape.point(i);
            assert!(
                (interp.eval_clamped(&p) - l.values()[i]).abs() < 1e-12,
                "mismatch at flat index {i}"
            );
        }
    }

    #[test]
    fn multilinear_clamps_out_of_box_queries() {
        use crate::grid::Axis;
        let shape = TensorShape::new(vec![Axis::new(0.0, 1.0, 3); 2]);
        let l = NdLandscape::generate(shape, |p| p[0] + p[1]);
        let interp = MultilinearInterp::fit(&l);
        assert!((interp.eval_clamped(&[5.0, -3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multilinear_matches_bilinear_on_2d_tensor() {
        use crate::grid::Axis;
        let shape = TensorShape::new(vec![Axis::new(0.0, 1.0, 5), Axis::new(0.0, 1.0, 5)]);
        let l = NdLandscape::generate(shape, |p| p[0] * p[1]);
        let interp = MultilinearInterp::fit(&l);
        // x*y is bilinear inside each cell, so interpolation is exact at
        // cell-aligned fractions.
        assert!((interp.eval_clamped(&[0.375, 0.625]) - 0.375 * 0.625).abs() < 1e-3);
    }
}
