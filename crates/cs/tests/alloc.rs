//! Steady-state allocation audit for the solver hot path.
//!
//! The PR's contract: once a [`Workspace`] has warmed up, FISTA/ISTA
//! iterations perform **zero heap allocation** — every transform and
//! operator apply goes through the `_into` APIs. This test pins that
//! with a counting global allocator: a warmed-up `fista_with` solve may
//! allocate only the result it returns, independent of iteration count
//! and grid size.

use oscar_cs::dct::Dct2d;
use oscar_cs::fista::{fista_with, FistaConfig};
use oscar_cs::ista::ista_with;
use oscar_cs::measure::{MeasurementOperator, SamplePattern};
use oscar_cs::workspace::Workspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure delegation to `System`, which upholds the GlobalAlloc
// contract; the counter bump is a Relaxed side effect with no bearing
// on allocation soundness.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: forwards the caller's layout contract to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's pointer/layout contract to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: forwards the caller's pointer/layout contract to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A 64x64 problem with a handful of DCT spikes, sampled at 25%.
fn setup() -> (Dct2d, SamplePattern, Vec<f64>) {
    let dct = Dct2d::new(64, 64);
    assert!(dct.is_fast(), "64x64 must take the FFT path");
    let mut coeffs = vec![0.0; 64 * 64];
    for (i, v) in [
        (0usize, 5.0),
        (13, -2.0),
        (64, 1.5),
        (200, 0.8),
        (901, -0.6),
    ] {
        coeffs[i] = v;
    }
    let full = dct.inverse(&coeffs);
    let mut rng = StdRng::seed_from_u64(42);
    let pattern = SamplePattern::random(64, 64, 0.25, &mut rng);
    let y = pattern.gather(&full);
    (dct, pattern, y)
}

#[test]
fn warmed_fista_solve_is_allocation_free_modulo_result() {
    // Pin the parallel helpers to one worker: thread spawning allocates,
    // and the audit is about the solver itself. (First use caches it.)
    std::env::set_var("OSCAR_THREADS", "1");
    assert_eq!(oscar_par::max_threads(), 1);

    let (dct, pattern, y) = setup();
    let op = MeasurementOperator::new(&dct, &pattern);
    // Fixed iteration budget so the measured work is substantial.
    let cfg = FistaConfig {
        max_iter: 100,
        tol: 0.0,
        debias_iters: 25,
        ..FistaConfig::default()
    };

    let mut ws = Workspace::for_operator(&op);
    let warm = fista_with(&op, &y, &cfg, &mut ws); // warm-up: sizes settle

    let before = alloc_count();
    let result = fista_with(&op, &y, &cfg, &mut ws);
    let during = alloc_count() - before;

    // The only permitted allocations are the returned FistaResult's
    // coefficient vector (plus nothing proportional to iterations: 125
    // operator applies ran in the measured window).
    assert!(
        during <= 4,
        "steady-state FISTA made {during} allocations; hot loop must make none"
    );
    assert_eq!(result.iterations, warm.iterations);
    assert!((result.residual_norm - warm.residual_norm).abs() < 1e-12);
}

#[test]
fn warmed_fista_solve_on_mixed_radix_grid_is_allocation_free() {
    // The paper's p=1 grid: both sides are non-power-of-two and
    // 2·3·5-smooth, so this pins that the mixed-radix kernel's scratch
    // (Stockham ping-pong buffer, gather block) is fully threaded
    // through Workspace and never allocated at apply time.
    std::env::set_var("OSCAR_THREADS", "1");
    assert_eq!(oscar_par::max_threads(), 1);

    let dct = Dct2d::new(50, 100);
    assert!(dct.is_fast(), "50x100 must take the FFT path");
    let mut coeffs = vec![0.0; 50 * 100];
    for (i, v) in [(0usize, 5.0), (7, -2.0), (120, 1.5), (3003, 0.7)] {
        coeffs[i] = v;
    }
    let full = dct.inverse(&coeffs);
    let mut rng = StdRng::seed_from_u64(43);
    let pattern = SamplePattern::random(50, 100, 0.15, &mut rng);
    let y = pattern.gather(&full);
    let op = MeasurementOperator::new(&dct, &pattern);
    let cfg = FistaConfig {
        max_iter: 40,
        tol: 0.0,
        debias_iters: 10,
        ..FistaConfig::default()
    };

    let mut ws = Workspace::for_operator(&op);
    let _ = fista_with(&op, &y, &cfg, &mut ws);

    let before = alloc_count();
    let _ = fista_with(&op, &y, &cfg, &mut ws);
    let during = alloc_count() - before;
    assert!(
        during <= 4,
        "steady-state mixed-radix FISTA made {during} allocations"
    );
}

#[test]
fn warmed_multiworker_parallel_apply_allocates_zero_words() {
    // ROADMAP item 6: the pool's region bookkeeping is a fixed slab, so
    // a steady-state *multi-worker* parallel apply allocates nothing at
    // all — not "a few words for the queue push", zero. An explicit
    // 4-worker pool sidesteps the OSCAR_THREADS=1 pin the other tests
    // need for the global helpers.
    let pool = oscar_par::pool::WorkerPool::with_threads(4);
    let mut v = vec![0.0f64; 1 << 16];
    // Warm-up: spawns the workers (which allocates) and settles the
    // region protocol.
    for _ in 0..4 {
        pool.for_each_chunk_mut(&mut v, 256, |offset, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x += (offset + k) as f64;
            }
        });
    }
    assert_eq!(pool.stats().threads_spawned, 3);

    // Other tests in this binary run concurrently and share the global
    // counter, so take the minimum over many short attempts: the apply
    // itself allocating would show in *every* window.
    let min_during = (0..50)
        .map(|_| {
            let before = alloc_count();
            pool.for_each_chunk_mut(&mut v, 256, |_, chunk| {
                for x in chunk.iter_mut() {
                    *x *= 1.0000001;
                }
            });
            alloc_count() - before
        })
        .min()
        .unwrap();
    assert_eq!(
        min_during, 0,
        "steady-state multi-worker apply allocated {min_during} times"
    );
}

#[test]
fn warmed_ista_solve_is_allocation_free_modulo_result() {
    std::env::set_var("OSCAR_THREADS", "1");
    let (dct, pattern, y) = setup();
    let op = MeasurementOperator::new(&dct, &pattern);
    let cfg = FistaConfig {
        max_iter: 60,
        tol: 0.0,
        debias_iters: 0,
        ..FistaConfig::default()
    };
    let mut ws = Workspace::for_operator(&op);
    let _ = ista_with(&op, &y, &cfg, &mut ws);

    let before = alloc_count();
    let _ = ista_with(&op, &y, &cfg, &mut ws);
    let during = alloc_count() - before;
    assert!(
        during <= 4,
        "steady-state ISTA made {during} allocations; hot loop must make none"
    );
}

#[test]
fn workspace_reuse_across_patterns_stays_quiet_once_sized() {
    std::env::set_var("OSCAR_THREADS", "1");
    let (dct, _, _) = setup();
    let cfg = FistaConfig {
        max_iter: 30,
        tol: 0.0,
        debias_iters: 0,
        ..FistaConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    // Warm with the largest measurement count, then solve a smaller one.
    let big = SamplePattern::random(64, 64, 0.3, &mut rng);
    let small = SamplePattern::random(64, 64, 0.2, &mut rng);
    let mut coeffs = vec![0.0; 64 * 64];
    coeffs[5] = 2.0;
    let full = dct.inverse(&coeffs);

    let op_big = MeasurementOperator::new(&dct, &big);
    let op_small = MeasurementOperator::new(&dct, &small);
    let y_big = big.gather(&full);
    let y_small = small.gather(&full);

    let mut ws = Workspace::for_operator(&op_big);
    let _ = fista_with(&op_big, &y_big, &cfg, &mut ws);
    let _ = fista_with(&op_small, &y_small, &cfg, &mut ws); // resize happens here

    let before = alloc_count();
    let _ = fista_with(&op_small, &y_small, &cfg, &mut ws);
    let during = alloc_count() - before;
    assert!(during <= 4, "re-used workspace made {during} allocations");
}
