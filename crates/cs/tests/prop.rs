//! Property-based tests for the compressed-sensing machinery.

use oscar_cs::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DCT is linear: T(a x + b y) = a T(x) + b T(y).
    #[test]
    fn dct_is_linear(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 24;
        let dct = Dct1d::new(n);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + b * yi).collect();
        let lhs = dct.forward(&combo);
        let tx = dct.forward(&x);
        let ty = dct.forward(&y);
        for i in 0..n {
            prop_assert!((lhs[i] - (a * tx[i] + b * ty[i])).abs() < 1e-9);
        }
    }

    /// Hard thresholding (keep_top_k) never increases energy and keeps at
    /// most k non-zeros.
    #[test]
    fn keep_top_k_contracts(values in prop::collection::vec(-5.0f64..5.0, 1..60), k in 0usize..70) {
        let kept = keep_top_k(&values, k);
        let e_in: f64 = values.iter().map(|v| v * v).sum();
        let e_out: f64 = kept.iter().map(|v| v * v).sum();
        prop_assert!(e_out <= e_in + 1e-12);
        prop_assert!(kept.iter().filter(|v| **v != 0.0).count() <= k.min(values.len()));
    }

    /// The energy fraction is monotone in the energy target.
    #[test]
    fn energy_fraction_monotone(values in prop::collection::vec(-5.0f64..5.0, 2..80)) {
        let f90 = energy_fraction(&values, 0.90);
        let f99 = energy_fraction(&values, 0.99);
        prop_assert!(f99 >= f90 - 1e-12);
        prop_assert!(f90 > 0.0 && f99 <= 1.0);
    }

    /// Gather/truncate consistency: a truncated pattern gathers a prefix.
    #[test]
    fn truncated_pattern_gathers_prefix(seed in 0u64..500, keep in 1usize..20) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let keep = keep.min(pattern.num_samples());
        let full: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let all = pattern.gather(&full);
        let t = pattern.truncated(keep);
        prop_assert_eq!(t.gather(&full), all[..keep].to_vec());
    }

    /// FISTA's residual never exceeds ||y|| (the zero solution's residual,
    /// which the solver must at least match).
    #[test]
    fn fista_beats_zero_solution(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        coeffs[rng.gen_range(0usize..64)] = rng.gen_range(0.5..3.0);
        let full = dct.inverse(&coeffs);
        let pattern = SamplePattern::random(8, 8, 0.4, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let sol = fista(&op, &y, &FistaConfig::default());
        let ynorm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(sol.residual_norm <= ynorm + 1e-9);
    }

    /// ISTA and FISTA agree on the recovered support for well-posed
    /// 1-sparse problems.
    #[test]
    fn ista_fista_agree_on_easy_problems(spike in 0usize..64, seed in 0u64..100) {
        use rand::SeedableRng;
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        coeffs[spike] = 2.0;
        let full = dct.inverse(&coeffs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let cfg = FistaConfig { max_iter: 2000, ..FistaConfig::default() };
        let f = fista(&op, &y, &cfg);
        let i = ista(&op, &y, &cfg);
        // Both should put their largest coefficient on the true spike.
        let argmax = |v: &[f64]| {
            v.iter().enumerate().max_by(|a, b| a.1.abs().total_cmp(&b.1.abs())).unwrap().0
        };
        prop_assert_eq!(argmax(&f.coefficients), spike);
        prop_assert_eq!(argmax(&i.coefficients), spike);
    }

    /// OMP's residual decreases as the atom budget grows.
    #[test]
    fn omp_residual_monotone_in_atoms(seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        for _ in 0..5 {
            let i = rng.gen_range(0usize..64);
            coeffs[i] = rng.gen_range(-2.0..2.0);
        }
        let full = dct.inverse(&coeffs);
        let pattern = SamplePattern::random(8, 8, 0.6, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let small = omp(&op, &y, &OmpConfig { max_atoms: 2, residual_tol: 0.0 });
        let large = omp(&op, &y, &OmpConfig { max_atoms: 8, residual_tol: 0.0 });
        prop_assert!(large.residual_norm <= small.residual_norm + 1e-9);
    }
}

/// FFT-kernel vs dense-kernel equivalence and transform invariants for
/// the sizes the acceptance criteria pin: every n in 1..=64, every
/// 2·3·5-smooth n up to 240 (the mixed-radix fast path, including the
/// paper's exact grid sides 50, 100, 144, 225), sizes exercising the
/// generic 7..=31 butterflies and the large-prime Bluestein sub-stage,
/// plus 128 (power of two) and 257 (prime, whole-length Bluestein).
mod fft_vs_dense {
    use oscar_cs::dct::{Dct1d, Dct2d, DctNd};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const SIZES: &[usize] = &[
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
        26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48,
        49, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59, 60, 61, 62, 63, 64, 100, 128, 257,
    ];

    /// Every 2·3·5-smooth size in 65..=240 (the 1..=64 range is already
    /// fully covered by `SIZES`); all take the mixed-radix path on
    /// dedicated butterflies. Includes the paper's sides 100, 144, 225.
    const SMOOTH_240: &[usize] = &[
        72, 75, 80, 81, 90, 96, 100, 108, 120, 125, 135, 144, 150, 160, 162, 180, 192, 200, 216,
        225, 240,
    ];

    /// Sizes whose factorizations exercise the generic prime
    /// butterflies (7..=31) and the Bluestein sub-stage for a large
    /// prime cofactor (74 = 2·37, 111 = 3·37, 235 = 5·47).
    const ROUGH_SIZES: &[usize] = &[74, 77, 91, 111, 143, 169, 187, 203, 217, 231, 235];

    fn all_sizes() -> impl Iterator<Item = usize> {
        SIZES.iter().chain(SMOOTH_240).chain(ROUGH_SIZES).copied()
    }

    fn random_signal(n: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn fft_forward_matches_dense_oracle_to_1e10() {
        let mut rng = StdRng::seed_from_u64(101);
        for n in all_sizes() {
            let dense = Dct1d::new_dense(n);
            let fast = Dct1d::new_fast(n);
            let x = random_signal(n, &mut rng);
            let a = dense.forward(&x);
            let b = fast.forward(&x);
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                assert!(
                    (u - v).abs() < 1e-10,
                    "n={n} coeff {i}: dense {u} vs fft {v}"
                );
            }
        }
    }

    #[test]
    fn fft_inverse_matches_dense_oracle_to_1e10() {
        let mut rng = StdRng::seed_from_u64(102);
        for n in all_sizes() {
            let dense = Dct1d::new_dense(n);
            let fast = Dct1d::new_fast(n);
            let s = random_signal(n, &mut rng);
            let a = dense.inverse(&s);
            let b = fast.inverse(&s);
            for (i, (u, v)) in a.iter().zip(&b).enumerate() {
                assert!(
                    (u - v).abs() < 1e-10,
                    "n={n} sample {i}: dense {u} vs fft {v}"
                );
            }
        }
    }

    #[test]
    fn fft_roundtrip_identity_to_1e10() {
        let mut rng = StdRng::seed_from_u64(103);
        for n in all_sizes() {
            let fast = Dct1d::new_fast(n);
            let x = random_signal(n, &mut rng);
            let y = fast.inverse(&fast.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn dct2d_roundtrip_non_pow2_non_square() {
        let mut rng = StdRng::seed_from_u64(104);
        // Mix of non-power-of-two, non-square, production, and skinny grids.
        for &(rows, cols) in &[
            (5usize, 9usize),
            (33, 47),
            (50, 100),
            (144, 225),
            (1, 257),
            (100, 3),
            (64, 64),
        ] {
            let dct = Dct2d::new(rows, cols);
            let x = random_signal(rows * cols, &mut rng);
            let y = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-10, "grid {rows}x{cols}");
            }
        }
    }

    #[test]
    fn dct2d_fast_matches_dense_on_grids() {
        let mut rng = StdRng::seed_from_u64(105);
        for &(rows, cols) in &[(33usize, 50usize), (50, 100), (144, 225), (40, 257)] {
            let dense = Dct2d::new_dense(rows, cols);
            let fast = Dct2d::new_fast(rows, cols);
            let x = random_signal(rows * cols, &mut rng);
            let a = dense.forward(&x);
            let b = fast.forward(&x);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-9, "grid {rows}x{cols}");
            }
        }
    }

    #[test]
    fn dctnd_roundtrip_non_pow2_non_square() {
        let mut rng = StdRng::seed_from_u64(106);
        for shape in [
            vec![7usize],
            vec![5, 7],
            vec![12, 15, 10],
            vec![3, 33, 5],
            vec![2, 3, 5, 7],
        ] {
            let dct = DctNd::new(&shape);
            let x = random_signal(dct.len(), &mut rng);
            let y = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-10, "shape {shape:?}");
            }
        }
    }
}
