//! Property-based tests for the compressed-sensing machinery.

use oscar_cs::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DCT is linear: T(a x + b y) = a T(x) + b T(y).
    #[test]
    fn dct_is_linear(
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 24;
        let dct = Dct1d::new(n);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| a * xi + b * yi).collect();
        let lhs = dct.forward(&combo);
        let tx = dct.forward(&x);
        let ty = dct.forward(&y);
        for i in 0..n {
            prop_assert!((lhs[i] - (a * tx[i] + b * ty[i])).abs() < 1e-9);
        }
    }

    /// Hard thresholding (keep_top_k) never increases energy and keeps at
    /// most k non-zeros.
    #[test]
    fn keep_top_k_contracts(values in prop::collection::vec(-5.0f64..5.0, 1..60), k in 0usize..70) {
        let kept = keep_top_k(&values, k);
        let e_in: f64 = values.iter().map(|v| v * v).sum();
        let e_out: f64 = kept.iter().map(|v| v * v).sum();
        prop_assert!(e_out <= e_in + 1e-12);
        prop_assert!(kept.iter().filter(|v| **v != 0.0).count() <= k.min(values.len()));
    }

    /// The energy fraction is monotone in the energy target.
    #[test]
    fn energy_fraction_monotone(values in prop::collection::vec(-5.0f64..5.0, 2..80)) {
        let f90 = energy_fraction(&values, 0.90);
        let f99 = energy_fraction(&values, 0.99);
        prop_assert!(f99 >= f90 - 1e-12);
        prop_assert!(f90 > 0.0 && f99 <= 1.0);
    }

    /// Gather/truncate consistency: a truncated pattern gathers a prefix.
    #[test]
    fn truncated_pattern_gathers_prefix(seed in 0u64..500, keep in 1usize..20) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let keep = keep.min(pattern.num_samples());
        let full: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let all = pattern.gather(&full);
        let t = pattern.truncated(keep);
        prop_assert_eq!(t.gather(&full), all[..keep].to_vec());
    }

    /// FISTA's residual never exceeds ||y|| (the zero solution's residual,
    /// which the solver must at least match).
    #[test]
    fn fista_beats_zero_solution(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        coeffs[rng.gen_range(0..64)] = rng.gen_range(0.5..3.0);
        let full = dct.inverse(&coeffs);
        let pattern = SamplePattern::random(8, 8, 0.4, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let sol = fista(&op, &y, &FistaConfig::default());
        let ynorm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(sol.residual_norm <= ynorm + 1e-9);
    }

    /// ISTA and FISTA agree on the recovered support for well-posed
    /// 1-sparse problems.
    #[test]
    fn ista_fista_agree_on_easy_problems(spike in 0usize..64, seed in 0u64..100) {
        use rand::SeedableRng;
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        coeffs[spike] = 2.0;
        let full = dct.inverse(&coeffs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let cfg = FistaConfig { max_iter: 2000, ..FistaConfig::default() };
        let f = fista(&op, &y, &cfg);
        let i = ista(&op, &y, &cfg);
        // Both should put their largest coefficient on the true spike.
        let argmax = |v: &[f64]| {
            v.iter().enumerate().max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap()).unwrap().0
        };
        prop_assert_eq!(argmax(&f.coefficients), spike);
        prop_assert_eq!(argmax(&i.coefficients), spike);
    }

    /// OMP's residual decreases as the atom budget grows.
    #[test]
    fn omp_residual_monotone_in_atoms(seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        for _ in 0..5 {
            let i = rng.gen_range(0..64);
            coeffs[i] = rng.gen_range(-2.0..2.0);
        }
        let full = dct.inverse(&coeffs);
        let pattern = SamplePattern::random(8, 8, 0.6, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let small = omp(&op, &y, &OmpConfig { max_atoms: 2, residual_tol: 0.0 });
        let large = omp(&op, &y, &OmpConfig { max_atoms: 8, residual_tol: 0.0 });
        prop_assert!(large.residual_norm <= small.residual_norm + 1e-9);
    }
}
