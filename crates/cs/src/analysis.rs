//! Frequency-domain sparsity analysis of landscapes.
//!
//! Reproduces the paper's Table 4 methodology: the fraction of DCT
//! coefficients needed to retain 99% of a landscape's signal energy — the
//! empirical justification that VQA landscapes are compressible.

use crate::dct::Dct2d;

/// Fraction of (sorted, largest-first) coefficients whose cumulative squared
/// magnitude reaches `energy_fraction` of the total energy.
///
/// Returns a value in `(0, 1]`. A tiny return value means the signal is
/// highly compressible.
///
/// # Panics
///
/// Panics unless `0 < energy_fraction <= 1` and `coeffs` is non-empty.
///
/// # Examples
///
/// ```
/// // A 1-sparse spectrum needs exactly one coefficient.
/// let mut coeffs = vec![0.0; 100];
/// coeffs[3] = 5.0;
/// let f = oscar_cs::analysis::energy_fraction(&coeffs, 0.99);
/// assert!((f - 0.01).abs() < 1e-12);
/// ```
pub fn energy_fraction(coeffs: &[f64], energy_fraction: f64) -> f64 {
    assert!(!coeffs.is_empty(), "coefficient vector is empty");
    assert!(
        energy_fraction > 0.0 && energy_fraction <= 1.0,
        "energy fraction must be in (0,1]"
    );
    let mut energies: Vec<f64> = coeffs.iter().map(|c| c * c).collect();
    let total: f64 = energies.iter().sum();
    if total == 0.0 {
        // The zero signal is "fully captured" by a single (zero) term.
        return 1.0 / coeffs.len() as f64;
    }
    // total_cmp, not partial_cmp: a NaN coefficient (e.g. a landscape
    // from a misbehaving noisy device) must degrade deterministically
    // (NaN energies sort first, the cumulative sum goes NaN, and the
    // function returns 1.0) instead of panicking mid-batch.
    energies.sort_by(|a, b| b.total_cmp(a));
    let target = energy_fraction * total;
    let mut acc = 0.0;
    for (i, e) in energies.iter().enumerate() {
        acc += e;
        if acc >= target - 1e-15 {
            return (i + 1) as f64 / coeffs.len() as f64;
        }
    }
    1.0
}

/// Convenience: DCT-transform a row-major landscape and report the 99%
/// energy fraction (Table 4's metric).
///
/// # Panics
///
/// Panics if `landscape.len() != rows * cols`.
pub fn dct_energy_fraction_99(landscape: &[f64], rows: usize, cols: usize) -> f64 {
    let dct = Dct2d::new(rows, cols);
    let coeffs = dct.forward(landscape);
    energy_fraction(&coeffs, 0.99)
}

/// Keeps only the `k` largest-magnitude coefficients (hard thresholding);
/// used to test how well a k-sparse approximation reproduces a landscape.
pub fn keep_top_k(coeffs: &[f64], k: usize) -> Vec<f64> {
    if k >= coeffs.len() {
        return coeffs.to_vec();
    }
    let mut order: Vec<usize> = (0..coeffs.len()).collect();
    // total_cmp so NaN inputs sort deterministically (largest) instead
    // of panicking; a NaN coefficient counts as "large" and is kept.
    order.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
    let mut out = vec![0.0; coeffs.len()];
    for &i in order.iter().take(k) {
        out[i] = coeffs[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sparse_needs_one_coefficient() {
        let mut c = vec![0.0; 50];
        c[7] = 2.0;
        assert!((energy_fraction(&c, 0.99) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn flat_spectrum_needs_nearly_all() {
        let c = vec![1.0; 100];
        let f = energy_fraction(&c, 0.99);
        assert!(f >= 0.99, "flat spectrum fraction {f}");
    }

    #[test]
    fn zero_signal_handled() {
        let c = vec![0.0; 10];
        assert!((energy_fraction(&c, 0.99) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn full_energy_needs_all_nonzero() {
        let c = vec![1.0, 1.0, 0.0, 0.0];
        let f = energy_fraction(&c, 1.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smooth_landscape_is_compressible() {
        // A slowly varying cosine landscape concentrates in few DCT terms.
        let (rows, cols) = (30, 30);
        let mut x = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                x[r * cols + c] =
                    (r as f64 * 0.2).cos() * (c as f64 * 0.15).sin() + 0.5 * (r as f64 * 0.1).sin();
            }
        }
        let f = dct_energy_fraction_99(&x, rows, cols);
        assert!(f < 0.05, "smooth landscape fraction {f} not sparse");
    }

    #[test]
    fn keep_top_k_zeroes_small_terms() {
        let c = vec![5.0, -1.0, 3.0, 0.5];
        let kept = keep_top_k(&c, 2);
        assert_eq!(kept, vec![5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn keep_top_k_with_large_k_is_identity() {
        let c = vec![1.0, 2.0];
        assert_eq!(keep_top_k(&c, 10), c);
    }

    #[test]
    #[should_panic(expected = "energy fraction must be in (0,1]")]
    fn rejects_invalid_energy_fraction() {
        let _ = energy_fraction(&[1.0], 0.0);
    }

    #[test]
    fn nan_input_degrades_deterministically() {
        // Regression: these used to panic via partial_cmp().unwrap()
        // when a noisy-device landscape produced a NaN. Both calls must
        // return (not panic), identically on every run.
        let c = vec![1.0, f64::NAN, 3.0, 0.5];
        let f1 = energy_fraction(&c, 0.99);
        let f2 = energy_fraction(&c, 0.99);
        assert_eq!(f1.to_bits(), f2.to_bits(), "must be deterministic");
        assert_eq!(f1, 1.0, "NaN energy never reaches the target");

        let kept = keep_top_k(&c, 2);
        assert_eq!(kept.len(), 4);
        // NaN sorts as the largest magnitude and is kept; the true
        // largest finite coefficient fills the second slot.
        assert!(kept[1].is_nan());
        assert_eq!(kept[2], 3.0);
        assert_eq!((kept[0], kept[3]), (0.0, 0.0));
    }
}
