//! FISTA solver for the LASSO formulation of compressed-sensing recovery.
//!
//! Solves `min_s 0.5 ||y - A s||_2^2 + lambda ||s||_1` with the fast
//! iterative shrinkage-thresholding algorithm (Beck & Teboulle 2009). For
//! our measurement operator `||A||_2 <= 1` (orthonormal basis + row
//! selection), so the step size is fixed at 1 and no backtracking is
//! needed. With small `lambda` the solution approximates basis pursuit,
//! the l1 program in the paper's Appendix A (Eq. 7).
//!
//! Two entry points: [`fista`] is the convenience form that allocates a
//! fresh [`Workspace`] per call; [`fista_with`] takes a caller-owned
//! workspace and performs **no heap allocation in steady state** (the
//! only allocation per solve is the result's coefficient vector).

use crate::measure::SensingOperator;
use crate::workspace::Workspace;

/// Configuration for [`fista`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FistaConfig {
    /// l1 penalty weight. If `relative_lambda` is set, the effective
    /// penalty is `lambda * max|A^T y|`, making the setting scale-free.
    pub lambda: f64,
    /// Interpret `lambda` relative to `max|A^T y|` (recommended).
    pub relative_lambda: bool,
    /// Maximum number of iterations.
    pub max_iter: usize,
    /// Stop when the relative change of the iterate drops below this.
    pub tol: f64,
    /// After convergence, refit the values on the recovered support by
    /// gradient descent with the l1 term removed (debiasing); reduces the
    /// systematic shrinkage of large coefficients.
    pub debias_iters: usize,
}

impl Default for FistaConfig {
    fn default() -> Self {
        FistaConfig {
            lambda: 0.005,
            relative_lambda: true,
            max_iter: 500,
            tol: 1e-7,
            debias_iters: 120,
        }
    }
}

/// Outcome of a FISTA run.
#[derive(Clone, Debug)]
pub struct FistaResult {
    /// Recovered sparse coefficient vector.
    pub coefficients: Vec<f64>,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final residual norm `||y - A s||_2`.
    pub residual_norm: f64,
    /// Number of non-zero coefficients in the solution.
    pub support_size: usize,
}

/// Runs FISTA for the operator `op` and measurements `y`.
///
/// # Panics
///
/// Panics if `y.len()` does not match the operator's measurement length, or
/// if the config has `max_iter == 0` / non-positive `lambda`.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::Dct2d;
/// use oscar_cs::measure::{MeasurementOperator, SamplePattern};
/// use oscar_cs::fista::{fista, FistaConfig};
/// use rand::SeedableRng;
///
/// // A 1-sparse signal in DCT space, recovered from 40% of samples.
/// let dct = Dct2d::new(8, 8);
/// let mut coeffs = vec![0.0; 64];
/// coeffs[9] = 3.0;
/// let full = dct.inverse(&coeffs);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let pattern = SamplePattern::random(8, 8, 0.4, &mut rng);
/// let y = pattern.gather(&full);
/// let op = MeasurementOperator::new(&dct, &pattern);
/// let result = fista(&op, &y, &FistaConfig::default());
/// assert!((result.coefficients[9] - 3.0).abs() < 0.1);
/// ```
pub fn fista<O: SensingOperator + ?Sized>(op: &O, y: &[f64], cfg: &FistaConfig) -> FistaResult {
    let mut ws = Workspace::for_operator(op);
    fista_with(op, y, cfg, &mut ws)
}

/// Runs FISTA through a caller-owned [`Workspace`].
///
/// After the workspace has warmed up to this problem shape (one call, or
/// [`Workspace::ensure`]), iterations perform no heap allocation; the
/// solve's only allocation is the returned coefficient vector.
///
/// # Panics
///
/// Same conditions as [`fista`].
pub fn fista_with<O: SensingOperator + ?Sized>(
    op: &O,
    y: &[f64],
    cfg: &FistaConfig,
    ws: &mut Workspace,
) -> FistaResult {
    assert_eq!(y.len(), op.measurement_len(), "measurement length mismatch");
    assert!(cfg.max_iter > 0, "max_iter must be positive");
    assert!(cfg.lambda > 0.0, "lambda must be positive");
    ws.ensure(op);

    let n = op.signal_len();
    let lambda = if cfg.relative_lambda {
        op.adjoint_into(y, &mut ws.grad, &mut ws.op);
        let max_corr = ws.grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        (cfg.lambda * max_corr).max(f64::MIN_POSITIVE)
    } else {
        cfg.lambda
    };

    ws.s.fill(0.0); // current iterate
    ws.z.fill(0.0); // momentum point
    let mut t = 1.0f64;
    let mut iterations = 0;

    for it in 0..cfg.max_iter {
        iterations = it + 1;
        // Gradient step at z: grad = A^T (A z - y).
        op.forward_into(&ws.z, &mut ws.az, &mut ws.op);
        for ((r, &a), &b) in ws.resid.iter_mut().zip(ws.az.iter()).zip(y.iter()) {
            *r = a - b;
        }
        op.adjoint_into(&ws.resid, &mut ws.grad, &mut ws.op);
        // Proximal (soft-threshold) step with unit step size.
        for i in 0..n {
            ws.s_next[i] = soft_threshold(ws.z[i] - ws.grad[i], lambda);
        }
        // Momentum update.
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_next;
        let mut max_delta = 0.0f64;
        let mut max_mag = 0.0f64;
        for i in 0..n {
            let delta = ws.s_next[i] - ws.s[i];
            ws.z[i] = ws.s_next[i] + beta * delta;
            max_delta = max_delta.max(delta.abs());
            max_mag = max_mag.max(ws.s_next[i].abs());
        }
        std::mem::swap(&mut ws.s, &mut ws.s_next);
        t = t_next;
        if max_delta <= cfg.tol * max_mag.max(1e-12) {
            break;
        }
    }

    if cfg.debias_iters > 0 {
        debias(op, y, cfg.debias_iters, ws);
    }

    op.forward_into(&ws.s, &mut ws.az, &mut ws.op);
    let residual_norm = ws
        .az
        .iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let support_size = ws.s.iter().filter(|v| **v != 0.0).count();
    FistaResult {
        coefficients: ws.s.clone(),
        iterations,
        residual_norm,
        support_size,
    }
}

/// Gradient descent restricted to the current support (l1 term dropped),
/// correcting the soft-threshold shrinkage bias. Operates on `ws.s`.
fn debias<O: SensingOperator + ?Sized>(op: &O, y: &[f64], iters: usize, ws: &mut Workspace) {
    ws.support.clear();
    ws.support.extend(
        ws.s.iter()
            .enumerate()
            .filter(|(_, v)| **v != 0.0)
            .map(|(i, _)| i),
    );
    if ws.support.is_empty() {
        return;
    }
    for _ in 0..iters {
        op.forward_into(&ws.s, &mut ws.az, &mut ws.op);
        for ((r, &a), &b) in ws.resid.iter_mut().zip(ws.az.iter()).zip(y.iter()) {
            *r = a - b;
        }
        op.adjoint_into(&ws.resid, &mut ws.grad, &mut ws.op);
        let mut max_step = 0.0f64;
        for &i in &ws.support {
            ws.s[i] -= ws.grad[i];
            max_step = max_step.max(ws.grad[i].abs());
        }
        if max_step < 1e-12 {
            break;
        }
    }
}

/// Soft-thresholding operator `sign(x) * max(|x| - t, 0)`.
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::Dct2d;
    use crate::measure::{MeasurementOperator, SamplePattern};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sparse_signal(dct: &Dct2d, spikes: &[(usize, f64)]) -> (Vec<f64>, Vec<f64>) {
        let mut coeffs = vec![0.0; dct.len()];
        for &(i, v) in spikes {
            coeffs[i] = v;
        }
        let full = dct.inverse(&coeffs);
        (coeffs, full)
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_three_sparse_signal() {
        let dct = Dct2d::new(12, 12);
        let (coeffs, full) = sparse_signal(&dct, &[(0, 5.0), (13, -2.0), (30, 1.5)]);
        let mut rng = StdRng::seed_from_u64(2);
        let pattern = SamplePattern::random(12, 12, 0.35, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = fista(&op, &y, &FistaConfig::default());
        for (i, (&c, &r)) in coeffs.iter().zip(res.coefficients.iter()).enumerate() {
            assert!((c - r).abs() < 0.05, "coef {i}: true {c} rec {r}");
        }
    }

    #[test]
    fn reconstruction_matches_full_signal() {
        let dct = Dct2d::new(10, 14);
        let (_, full) = sparse_signal(&dct, &[(1, 2.0), (15, 1.0), (29, -0.8), (3, 0.4)]);
        let mut rng = StdRng::seed_from_u64(8);
        let pattern = SamplePattern::random(10, 14, 0.4, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = fista(&op, &y, &FistaConfig::default());
        let recon = dct.inverse(&res.coefficients);
        let err: f64 = recon
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = full.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / norm < 0.02, "relative error {}", err / norm);
    }

    #[test]
    fn noisy_measurements_still_approximate() {
        let dct = Dct2d::new(10, 10);
        let (_, full) = sparse_signal(&dct, &[(0, 4.0), (11, 2.0)]);
        let mut rng = StdRng::seed_from_u64(21);
        let pattern = SamplePattern::random(10, 10, 0.5, &mut rng);
        let y: Vec<f64> = pattern
            .gather(&full)
            .iter()
            .map(|v| v + rng.gen_range(-0.01..0.01))
            .collect();
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = fista(
            &op,
            &y,
            &FistaConfig {
                lambda: 0.02,
                ..FistaConfig::default()
            },
        );
        let recon = dct.inverse(&res.coefficients);
        let err: f64 = recon
            .iter()
            .zip(&full)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let norm: f64 = full.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / norm < 0.1, "relative error {}", err / norm);
    }

    #[test]
    fn full_sampling_reproduces_any_signal() {
        // With 100% sampling, even a non-sparse signal is recovered by the
        // data-fidelity term.
        let dct = Dct2d::new(6, 6);
        let full: Vec<f64> = (0..36).map(|i| ((i * 17) % 7) as f64 - 3.0).collect();
        let pattern = SamplePattern::from_indices(6, 6, (0..36).collect());
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = fista(
            &op,
            &y,
            &FistaConfig {
                lambda: 1e-5,
                max_iter: 2000,
                debias_iters: 200,
                ..FistaConfig::default()
            },
        );
        let recon = dct.inverse(&res.coefficients);
        for (a, b) in recon.iter().zip(&full) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn support_size_reported() {
        let dct = Dct2d::new(8, 8);
        let (_, full) = sparse_signal(&dct, &[(5, 1.0)]);
        let mut rng = StdRng::seed_from_u64(5);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = fista(&op, &y, &FistaConfig::default());
        assert!(res.support_size >= 1);
        assert!(res.residual_norm < 0.05);
    }

    #[test]
    fn recovers_sparse_signal_through_nd_operator() {
        use crate::dct::DctNd;
        use crate::measure::{MeasurementOperatorNd, NdSamplePattern};

        let dct = DctNd::new(&[6, 5, 7]);
        let mut coeffs = vec![0.0; dct.len()];
        coeffs[0] = 4.0;
        coeffs[12] = -1.5;
        coeffs[40] = 0.8;
        let full = dct.inverse(&coeffs);
        let mut rng = StdRng::seed_from_u64(17);
        let pattern = NdSamplePattern::random(&[6, 5, 7], 0.4, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperatorNd::new(&dct, &pattern);
        let res = fista(&op, &y, &FistaConfig::default());
        for (i, (&c, &r)) in coeffs.iter().zip(res.coefficients.iter()).enumerate() {
            assert!((c - r).abs() < 0.05, "coef {i}: true {c} rec {r}");
        }
    }

    #[test]
    fn nd_operator_on_2d_shape_matches_2d_operator() {
        // A [rows, cols] tensor operator and the dedicated 2-D operator
        // describe the same sensing matrix; FISTA must agree closely.
        let rows = 9;
        let cols = 11;
        let dct2 = Dct2d::new(rows, cols);
        let dctn = crate::dct::DctNd::new(&[rows, cols]);
        let (_, full) = sparse_signal(&dct2, &[(2, 2.0), (14, -1.0)]);
        let mut rng = StdRng::seed_from_u64(9);
        let pattern = SamplePattern::random(rows, cols, 0.4, &mut rng);
        let nd_pattern = crate::measure::NdSamplePattern::from_indices(
            &[rows, cols],
            pattern.indices().to_vec(),
        );
        let y = pattern.gather(&full);
        let op2 = MeasurementOperator::new(&dct2, &pattern);
        let opn = crate::measure::MeasurementOperatorNd::new(&dctn, &nd_pattern);
        let a = fista(&op2, &y, &FistaConfig::default());
        let b = fista(&opn, &y, &FistaConfig::default());
        for (x, z) in a.coefficients.iter().zip(&b.coefficients) {
            assert!((x - z).abs() < 1e-9, "{x} vs {z}");
        }
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_nonpositive_lambda() {
        let dct = Dct2d::new(4, 4);
        let pattern = SamplePattern::from_indices(4, 4, vec![0, 1]);
        let op = MeasurementOperator::new(&dct, &pattern);
        let _ = fista(
            &op,
            &[0.0, 0.0],
            &FistaConfig {
                lambda: 0.0,
                relative_lambda: false,
                ..FistaConfig::default()
            },
        );
    }
}
