//! Plain ISTA (no momentum) — the baseline FISTA accelerates.
//!
//! Kept as a separate solver so the convergence benefit of FISTA's
//! momentum is measurable (`recovery_ablation` bench) and so users with
//! pathological operators have the unconditionally-monotone option.

use crate::fista::{soft_threshold, FistaConfig, FistaResult};
use crate::measure::MeasurementOperator;
use crate::workspace::Workspace;

/// Runs ISTA with the same configuration type as FISTA.
///
/// Identical proximal-gradient iteration, but without the Nesterov
/// momentum sequence — O(1/k) convergence instead of O(1/k²).
///
/// # Panics
///
/// Panics under the same conditions as [`crate::fista::fista`].
pub fn ista(op: &MeasurementOperator<'_>, y: &[f64], cfg: &FistaConfig) -> FistaResult {
    let mut ws = Workspace::for_operator(op);
    ista_with(op, y, cfg, &mut ws)
}

/// Runs ISTA through a caller-owned [`Workspace`]; iterations are
/// heap-allocation-free once the workspace fits the problem shape.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::fista::fista`].
pub fn ista_with(
    op: &MeasurementOperator<'_>,
    y: &[f64],
    cfg: &FistaConfig,
    ws: &mut Workspace,
) -> FistaResult {
    assert_eq!(y.len(), op.measurement_len(), "measurement length mismatch");
    assert!(cfg.max_iter > 0, "max_iter must be positive");
    assert!(cfg.lambda > 0.0, "lambda must be positive");
    ws.ensure(op);

    let n = op.signal_len();
    let lambda = if cfg.relative_lambda {
        op.adjoint_into(y, &mut ws.grad, &mut ws.op);
        let max_corr = ws.grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        (cfg.lambda * max_corr).max(f64::MIN_POSITIVE)
    } else {
        cfg.lambda
    };

    ws.s.fill(0.0);
    let mut iterations = 0;
    for it in 0..cfg.max_iter {
        iterations = it + 1;
        op.forward_into(&ws.s, &mut ws.az, &mut ws.op);
        for ((r, &a), &b) in ws.resid.iter_mut().zip(ws.az.iter()).zip(y.iter()) {
            *r = a - b;
        }
        op.adjoint_into(&ws.resid, &mut ws.grad, &mut ws.op);
        let mut max_delta = 0.0f64;
        let mut max_mag = 0.0f64;
        for i in 0..n {
            let next = soft_threshold(ws.s[i] - ws.grad[i], lambda);
            max_delta = max_delta.max((next - ws.s[i]).abs());
            max_mag = max_mag.max(next.abs());
            ws.s[i] = next;
        }
        if max_delta <= cfg.tol * max_mag.max(1e-12) {
            break;
        }
    }

    op.forward_into(&ws.s, &mut ws.az, &mut ws.op);
    let residual_norm = ws
        .az
        .iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let support_size = ws.s.iter().filter(|v| **v != 0.0).count();
    FistaResult {
        coefficients: ws.s.clone(),
        iterations,
        residual_norm,
        support_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::Dct2d;
    use crate::fista::fista;
    use crate::measure::SamplePattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dct2d, SamplePattern, Vec<f64>, Vec<f64>) {
        let dct = Dct2d::new(10, 10);
        let mut coeffs = vec![0.0; 100];
        coeffs[3] = 2.0;
        coeffs[40] = -1.0;
        let full = dct.inverse(&coeffs);
        let mut rng = StdRng::seed_from_u64(9);
        let pattern = SamplePattern::random(10, 10, 0.4, &mut rng);
        let y = pattern.gather(&full);
        (dct, pattern, y, coeffs)
    }

    #[test]
    fn ista_recovers_sparse_signal() {
        let (dct, pattern, y, coeffs) = setup();
        let op = MeasurementOperator::new(&dct, &pattern);
        let cfg = FistaConfig {
            max_iter: 3000,
            ..FistaConfig::default()
        };
        let res = ista(&op, &y, &cfg);
        for (i, (&c, &r)) in coeffs.iter().zip(res.coefficients.iter()).enumerate() {
            assert!((c - r).abs() < 0.1, "coef {i}: {c} vs {r}");
        }
    }

    #[test]
    fn fista_converges_in_fewer_iterations() {
        let (dct, pattern, y, _) = setup();
        let op = MeasurementOperator::new(&dct, &pattern);
        let cfg = FistaConfig {
            max_iter: 5000,
            tol: 1e-9,
            debias_iters: 0,
            ..FistaConfig::default()
        };
        let slow = ista(&op, &y, &cfg);
        let fast = fista(&op, &y, &cfg);
        assert!(
            fast.iterations < slow.iterations,
            "FISTA {} should beat ISTA {}",
            fast.iterations,
            slow.iterations
        );
    }

    #[test]
    fn ista_monotone_residual() {
        // ISTA is monotone in the objective; check the residual after more
        // iterations is no worse.
        let (dct, pattern, y, _) = setup();
        let op = MeasurementOperator::new(&dct, &pattern);
        let short = ista(
            &op,
            &y,
            &FistaConfig {
                max_iter: 20,
                tol: 0.0,
                debias_iters: 0,
                ..FistaConfig::default()
            },
        );
        let long = ista(
            &op,
            &y,
            &FistaConfig {
                max_iter: 400,
                tol: 0.0,
                debias_iters: 0,
                ..FistaConfig::default()
            },
        );
        assert!(long.residual_norm <= short.residual_norm + 1e-12);
    }
}
