//! Reusable scratch buffers for the solver stack.
//!
//! Every FISTA iteration applies the measurement operator (a separable
//! DCT + gather) and its adjoint (scatter + DCT), each needing full-grid
//! and measurement-sized temporaries. The seed implementation allocated
//! ~5 fresh `Vec`s per iteration; a [`Workspace`] owns all of them, so
//! the `*_with` solver entry points ([`crate::fista::fista_with`],
//! [`crate::ista::ista_with`], [`crate::omp::omp_with`]) perform **no
//! heap allocation in steady state** — verified by the
//! allocation-counting test in `crates/cs/tests/alloc.rs`. (With more
//! than one `oscar-par` worker, the scoped thread spawns inside large
//! parallel transforms do allocate; see the `oscar-par` crate docs.)
//!
//! A workspace is keyed by buffer sizes only, so one instance can be
//! reused across solves, operators (2-D or N-D), and sampling patterns;
//! [`Workspace::ensure`] regrows buffers on first use with a new
//! problem shape and is a no-op afterwards.

use crate::dct::{Dct2d, Dct2dScratch, DctNd, DctNdScratch};
use crate::measure::SensingOperator;

/// Transform-specific scratch inside an [`OperatorScratch`]: either a
/// 2-D separable DCT's buffers or an N-D transform's per-axis lines.
#[derive(Debug)]
pub(crate) enum TransformScratch {
    /// Scratch for a [`Dct2d`].
    D2(Dct2dScratch),
    /// Scratch for a [`DctNd`].
    Nd(DctNdScratch),
}

/// Transform identity an [`OperatorScratch`] was sized for. The dense
/// kernel and each FFT decomposition (radix-2 / mixed-radix /
/// Bluestein) of the same grid need differently shaped scratch, so the
/// per-axis kernel ids are part of the key alongside the extents.
#[derive(Debug, PartialEq, Eq)]
enum ScratchKey {
    D2(usize, usize, (u8, u8)),
    Nd(Vec<usize>, Vec<u8>),
}

/// Scratch for one forward or adjoint application of a sensing
/// operator: the full-grid landscape buffer plus the transform's
/// internal scratch.
#[derive(Debug)]
pub struct OperatorScratch {
    /// Full-grid buffer (`signal_len` entries) holding `Ψ s` or the
    /// scattered residual.
    pub(crate) grid: Vec<f64>,
    /// Separable-transform scratch sized for the operator's grid.
    pub(crate) transform: TransformScratch,
    /// Transform the scratch was sized for.
    key: ScratchKey,
}

impl OperatorScratch {
    /// Builds scratch sized for `dct`'s grid.
    pub fn new(dct: &Dct2d) -> Self {
        OperatorScratch {
            grid: vec![0.0; dct.len()],
            transform: TransformScratch::D2(dct.make_scratch()),
            key: ScratchKey::D2(dct.rows(), dct.cols(), dct.kernel_kinds()),
        }
    }

    /// Builds scratch sized for an N-D transform's tensor.
    pub fn new_nd(dct: &DctNd) -> Self {
        OperatorScratch {
            grid: vec![0.0; dct.len()],
            transform: TransformScratch::Nd(dct.make_scratch()),
            key: ScratchKey::Nd(dct.shape().to_vec(), dct.kernel_ids()),
        }
    }

    /// Rebuilds for a different 2-D transform (grid size or kernel) if
    /// needed.
    pub(crate) fn ensure(&mut self, dct: &Dct2d) {
        if self.key != ScratchKey::D2(dct.rows(), dct.cols(), dct.kernel_kinds()) {
            *self = OperatorScratch::new(dct);
        }
    }

    /// Rebuilds for a different N-D transform (shape or kernels) if
    /// needed.
    pub(crate) fn ensure_nd(&mut self, dct: &DctNd) {
        let matches = match &self.key {
            ScratchKey::Nd(shape, kinds) => shape == dct.shape() && *kinds == dct.kernel_ids(),
            ScratchKey::D2(..) => false,
        };
        if !matches {
            *self = OperatorScratch::new_nd(dct);
        }
    }
}

/// All scratch state a sparse-recovery solve needs. See the module docs.
#[derive(Debug)]
pub struct Workspace {
    /// Operator-apply scratch.
    pub(crate) op: OperatorScratch,
    /// Current iterate (signal length `n`).
    pub(crate) s: Vec<f64>,
    /// Momentum point (FISTA) — `n`.
    pub(crate) z: Vec<f64>,
    /// Next iterate under construction — `n`.
    pub(crate) s_next: Vec<f64>,
    /// Gradient / correlation buffer — `n`.
    pub(crate) grad: Vec<f64>,
    /// Recovered support indices (debias step, OMP).
    pub(crate) support: Vec<usize>,
    /// Operator output `A s` (measurement length `m`).
    pub(crate) az: Vec<f64>,
    /// Residual `A s - y` — `m`.
    pub(crate) resid: Vec<f64>,
    /// OMP: selected atom columns, flattened `k * m`.
    pub(crate) atoms: Vec<f64>,
    /// OMP: Gram matrix of the selected atoms, `k * k`.
    pub(crate) gram: Vec<f64>,
    /// OMP: Cholesky factor scratch, `k * k`.
    pub(crate) chol: Vec<f64>,
    /// OMP: right-hand side / substitution scratch, `k` each.
    pub(crate) rhs: Vec<f64>,
    /// OMP: least-squares solution on the support, `k`.
    pub(crate) coef: Vec<f64>,
}

impl Workspace {
    /// Builds a workspace sized for `op` (2-D or N-D).
    pub fn for_operator<O: SensingOperator + ?Sized>(op: &O) -> Self {
        let n = op.signal_len();
        let m = op.measurement_len();
        Workspace {
            op: op.make_scratch(),
            s: vec![0.0; n],
            z: vec![0.0; n],
            s_next: vec![0.0; n],
            grad: vec![0.0; n],
            support: Vec::new(),
            az: vec![0.0; m],
            resid: vec![0.0; m],
            atoms: Vec::new(),
            gram: Vec::new(),
            chol: Vec::new(),
            rhs: Vec::new(),
            coef: Vec::new(),
        }
    }

    /// Regrows buffers for `op`'s dimensions; a no-op when they already
    /// fit (the steady-state case).
    pub fn ensure<O: SensingOperator + ?Sized>(&mut self, op: &O) {
        let n = op.signal_len();
        let m = op.measurement_len();
        op.ensure_scratch(&mut self.op);
        if self.s.len() != n {
            for v in [&mut self.s, &mut self.z, &mut self.s_next, &mut self.grad] {
                v.resize(n, 0.0);
            }
        }
        if self.az.len() != m {
            self.az.resize(m, 0.0);
            self.resid.resize(m, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasurementOperator, SamplePattern};

    #[test]
    fn workspace_sizes_match_operator() {
        let dct = Dct2d::new(6, 9);
        let pattern = SamplePattern::from_indices(6, 9, vec![0, 5, 17, 53]);
        let op = MeasurementOperator::new(&dct, &pattern);
        let ws = Workspace::for_operator(&op);
        assert_eq!(ws.s.len(), 54);
        assert_eq!(ws.az.len(), 4);
    }

    #[test]
    fn ensure_adapts_across_kernel_kinds() {
        use crate::fista::{fista_with, FistaConfig};
        use crate::measure::SamplePattern;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Same grid shape, different kernels: a workspace warmed on the
        // dense operator must rebuild its transform scratch for the FFT
        // operator instead of tripping the plan-size assertions.
        let dense = Dct2d::new_dense(40, 40);
        let fast = Dct2d::new_fast(40, 40);
        let mut rng = StdRng::seed_from_u64(3);
        let pattern = SamplePattern::random(40, 40, 0.3, &mut rng);
        let mut coeffs = vec![0.0; 1600];
        coeffs[7] = 2.0;
        let full = dense.inverse(&coeffs);
        let y = pattern.gather(&full);
        let cfg = FistaConfig {
            max_iter: 50,
            debias_iters: 0,
            ..FistaConfig::default()
        };

        let op_dense = MeasurementOperator::new(&dense, &pattern);
        let op_fast = MeasurementOperator::new(&fast, &pattern);
        let mut ws = Workspace::for_operator(&op_dense);
        let a = fista_with(&op_dense, &y, &cfg, &mut ws);
        let b = fista_with(&op_fast, &y, &cfg, &mut ws);
        let c = fista_with(&op_dense, &y, &cfg, &mut ws);
        for ((x, y2), z) in a
            .coefficients
            .iter()
            .zip(&b.coefficients)
            .zip(&c.coefficients)
        {
            assert!((x - y2).abs() < 1e-9 && (x - z).abs() < 1e-12);
        }

        // Same grid, same "fast" flag, different DFT decomposition:
        // the kernel id in the key must force a scratch rebuild when a
        // mixed-radix-warmed workspace meets a Bluestein operator.
        let blue = Dct2d::new_bluestein(40, 40);
        let op_blue = MeasurementOperator::new(&blue, &pattern);
        let d = fista_with(&op_blue, &y, &cfg, &mut ws);
        for (x, w) in b.coefficients.iter().zip(&d.coefficients) {
            assert!((x - w).abs() < 1e-9);
        }
    }

    #[test]
    fn ensure_adapts_to_new_operator() {
        let dct_a = Dct2d::new(4, 4);
        let pat_a = SamplePattern::from_indices(4, 4, vec![1, 2]);
        let op_a = MeasurementOperator::new(&dct_a, &pat_a);
        let mut ws = Workspace::for_operator(&op_a);

        let dct_b = Dct2d::new(8, 10);
        let pat_b = SamplePattern::from_indices(8, 10, vec![0, 9, 40, 41, 66]);
        let op_b = MeasurementOperator::new(&dct_b, &pat_b);
        ws.ensure(&op_b);
        assert_eq!(ws.s.len(), 80);
        assert_eq!(ws.az.len(), 5);
        assert_eq!(ws.op.grid.len(), 80);
    }

    #[test]
    fn ensure_adapts_between_2d_and_nd_operators() {
        use crate::measure::{MeasurementOperatorNd, NdSamplePattern};

        let dct2 = Dct2d::new(4, 6);
        let pat2 = SamplePattern::from_indices(4, 6, vec![0, 7, 20]);
        let op2 = MeasurementOperator::new(&dct2, &pat2);
        let mut ws = Workspace::for_operator(&op2);

        let dctn = DctNd::new(&[3, 4, 5]);
        let patn = NdSamplePattern::from_indices(&[3, 4, 5], vec![0, 11, 59]);
        let opn = MeasurementOperatorNd::new(&dctn, &patn);
        ws.ensure(&opn);
        assert_eq!(ws.s.len(), 60);
        assert_eq!(ws.op.grid.len(), 60);

        ws.ensure(&op2);
        assert_eq!(ws.op.grid.len(), 24);
    }
}
