//! The compressed-sensing measurement operator `A = C Ψ`.
//!
//! `Ψ` is the inverse separable DCT (so the unknown is the coefficient
//! vector `s` with landscape `x = Ψ s`), and `C` selects the `m` sampled
//! grid points. Because `Ψ` is orthonormal and `C` a row selector,
//! `||A||_2 <= 1`, which lets the FISTA solver use a unit step size with
//! no line search.
//!
//! Two concrete operators share the [`SensingOperator`] contract the
//! solvers are generic over: [`MeasurementOperator`] couples a
//! [`Dct2d`] with a [`SamplePattern`] (the paper's p = 1 grids), and
//! [`MeasurementOperatorNd`] couples a [`DctNd`] with an
//! [`NdSamplePattern`] (p >= 2 QAOA tensors and VQE parameter scans).

use crate::dct::{Dct2d, DctNd};
use crate::workspace::{OperatorScratch, TransformScratch};
use rand::seq::SliceRandom;
use rand::Rng;

/// The abstract sensing operator `A = C Ψ` the sparse solvers run
/// against: an orthonormal synthesis transform composed with a row
/// selector, applied through reusable [`OperatorScratch`].
///
/// Implementations must keep `||A||_2 <= 1` (orthonormal `Ψ`, selector
/// `C`) — the solvers rely on it for their fixed unit step size.
pub trait SensingOperator {
    /// Signal dimension `n` (full grid element count).
    fn signal_len(&self) -> usize;
    /// Measurement dimension `m` (sampled point count).
    fn measurement_len(&self) -> usize;
    /// Allocates scratch sized for this operator's transform.
    fn make_scratch(&self) -> OperatorScratch;
    /// Rebuilds `scratch` for this operator's transform if it was sized
    /// for another one; a no-op when it already fits.
    fn ensure_scratch(&self, scratch: &mut OperatorScratch);
    /// Zero-allocation `A s`: writes the `m` sampled values into `out`.
    fn forward_into(&self, s: &[f64], out: &mut [f64], scratch: &mut OperatorScratch);
    /// Zero-allocation `A^T y`: writes the `n` coefficient-domain
    /// values into `out`.
    fn adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut OperatorScratch);
}

/// A random uniform sampling pattern over a `rows x cols` grid.
///
/// # Examples
///
/// ```
/// use oscar_cs::measure::SamplePattern;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pat = SamplePattern::random(10, 10, 0.25, &mut rng);
/// assert_eq!(pat.indices().len(), 25);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplePattern {
    rows: usize,
    cols: usize,
    indices: Vec<usize>,
}

impl SamplePattern {
    /// Samples `ceil(fraction * rows * cols)` distinct grid points uniformly
    /// at random (without replacement).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, fraction: f64, rng: &mut R) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        let total = rows * cols;
        let m = ((fraction * total as f64).ceil() as usize).clamp(1, total);
        Self::random_count(rows, cols, m, rng)
    }

    /// Samples exactly `m` distinct grid points uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < m <= rows * cols`.
    pub fn random_count<R: Rng + ?Sized>(rows: usize, cols: usize, m: usize, rng: &mut R) -> Self {
        let total = rows * cols;
        assert!(m > 0 && m <= total, "sample count out of range");
        let mut all: Vec<usize> = (0..total).collect();
        all.shuffle(rng);
        let mut indices = all[..m].to_vec();
        indices.sort_unstable();
        SamplePattern {
            rows,
            cols,
            indices,
        }
    }

    /// Builds a pattern from explicit flat indices (deduplicated, sorted).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or the list is empty.
    pub fn from_indices(rows: usize, cols: usize, mut indices: Vec<usize>) -> Self {
        assert!(!indices.is_empty(), "pattern needs at least one index");
        indices.sort_unstable();
        indices.dedup();
        assert!(
            *indices.last().unwrap() < rows * cols,
            "index out of grid range"
        );
        SamplePattern {
            rows,
            cols,
            indices,
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The sampled flat indices (sorted, distinct).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of samples `m`.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// Achieved sampling fraction `m / (rows * cols)`.
    pub fn fraction(&self) -> f64 {
        self.indices.len() as f64 / (self.rows * self.cols) as f64
    }

    /// (row, col) coordinates of each sample.
    pub fn coords(&self) -> Vec<(usize, usize)> {
        self.indices
            .iter()
            .map(|&i| (i / self.cols, i % self.cols))
            .collect()
    }

    /// Extracts the sampled values from a full row-major landscape.
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != rows * cols`.
    pub fn gather(&self, full: &[f64]) -> Vec<f64> {
        assert_eq!(full.len(), self.rows * self.cols, "grid size mismatch");
        self.indices.iter().map(|&i| full[i]).collect()
    }

    /// Restricts the pattern to its first `m` indices (in index order),
    /// used by eager reconstruction when late samples are dropped.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < m <= num_samples()`.
    pub fn truncated(&self, m: usize) -> SamplePattern {
        assert!(m > 0 && m <= self.indices.len(), "truncation out of range");
        SamplePattern {
            rows: self.rows,
            cols: self.cols,
            indices: self.indices[..m].to_vec(),
        }
    }
}

/// The forward/adjoint measurement operator used by the sparse solvers.
#[derive(Clone, Debug)]
pub struct MeasurementOperator<'a> {
    dct: &'a Dct2d,
    pattern: &'a SamplePattern,
}

impl<'a> MeasurementOperator<'a> {
    /// Couples a transform with a sampling pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern grid does not match the transform grid.
    pub fn new(dct: &'a Dct2d, pattern: &'a SamplePattern) -> Self {
        assert_eq!(dct.rows(), pattern.rows(), "grid rows mismatch");
        assert_eq!(dct.cols(), pattern.cols(), "grid cols mismatch");
        MeasurementOperator { dct, pattern }
    }

    /// Signal dimension `n = rows * cols`.
    pub fn signal_len(&self) -> usize {
        self.dct.len()
    }

    /// Measurement dimension `m`.
    pub fn measurement_len(&self) -> usize {
        self.pattern.num_samples()
    }

    /// The sparsifying transform this operator couples to.
    pub fn dct(&self) -> &Dct2d {
        self.dct
    }

    /// The sampling pattern this operator couples to.
    pub fn pattern(&self) -> &SamplePattern {
        self.pattern
    }

    /// Applies `A s = C Ψ s`: coefficients -> sampled landscape values.
    ///
    /// Convenience wrapper allocating transient scratch; the solver hot
    /// loop uses [`Self::forward_into`].
    pub fn forward(&self, s: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.measurement_len()];
        let mut scratch = OperatorScratch::new(self.dct);
        self.forward_into(s, &mut out, &mut scratch);
        out
    }

    /// Zero-allocation `A s`: writes the `m` sampled values into `out`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or scratch sized for another grid.
    pub fn forward_into(&self, s: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        assert_eq!(s.len(), self.dct.len(), "signal length mismatch");
        assert_eq!(
            out.len(),
            self.pattern.num_samples(),
            "output length mismatch"
        );
        let TransformScratch::D2(dct_scratch) = &mut scratch.transform else {
            panic!("scratch sized for another transform kind");
        };
        self.dct.inverse_into(s, &mut scratch.grid, dct_scratch);
        for (o, &idx) in out.iter_mut().zip(self.pattern.indices().iter()) {
            *o = scratch.grid[idx];
        }
    }

    /// Applies the adjoint `A^T y = Ψ^T C^T y`: residuals -> coefficient
    /// gradient (transient-scratch wrapper over [`Self::adjoint_into`]).
    pub fn adjoint(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.signal_len()];
        let mut scratch = OperatorScratch::new(self.dct);
        self.adjoint_into(y, &mut out, &mut scratch);
        out
    }

    /// Zero-allocation `A^T y`: writes the `n` coefficient-domain values
    /// into `out`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or scratch sized for another grid.
    pub fn adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        assert_eq!(
            y.len(),
            self.pattern.num_samples(),
            "measurement length mismatch"
        );
        assert_eq!(out.len(), self.dct.len(), "output length mismatch");
        let TransformScratch::D2(dct_scratch) = &mut scratch.transform else {
            panic!("scratch sized for another transform kind");
        };
        scratch.grid.fill(0.0);
        for (&idx, &v) in self.pattern.indices().iter().zip(y.iter()) {
            scratch.grid[idx] = v;
        }
        self.dct.forward_into(&scratch.grid, out, dct_scratch);
    }
}

impl SensingOperator for MeasurementOperator<'_> {
    fn signal_len(&self) -> usize {
        MeasurementOperator::signal_len(self)
    }

    fn measurement_len(&self) -> usize {
        MeasurementOperator::measurement_len(self)
    }

    fn make_scratch(&self) -> OperatorScratch {
        OperatorScratch::new(self.dct)
    }

    fn ensure_scratch(&self, scratch: &mut OperatorScratch) {
        scratch.ensure(self.dct);
    }

    fn forward_into(&self, s: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        MeasurementOperator::forward_into(self, s, out, scratch);
    }

    fn adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        MeasurementOperator::adjoint_into(self, y, out, scratch);
    }
}

/// A random uniform sampling pattern over a row-major N-D tensor.
///
/// Flat indices follow the same discipline as [`SamplePattern`]
/// (distinct, sorted ascending); in fact, for the same element count,
/// sampling fraction, and RNG state the two draw the **same** flat
/// index set, so 2-D results are unaffected by which pattern type
/// gathers them.
///
/// # Examples
///
/// ```
/// use oscar_cs::measure::NdSamplePattern;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pat = NdSamplePattern::random(&[5, 4, 5], 0.25, &mut rng);
/// assert_eq!(pat.indices().len(), 25);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NdSamplePattern {
    dims: Vec<usize>,
    indices: Vec<usize>,
}

impl NdSamplePattern {
    /// Samples `ceil(fraction * total)` distinct tensor points uniformly
    /// at random (without replacement).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`, and unless every extent in
    /// `dims` is positive.
    pub fn random<R: Rng + ?Sized>(dims: &[usize], fraction: f64, rng: &mut R) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        let total = checked_total(dims);
        let m = ((fraction * total as f64).ceil() as usize).clamp(1, total);
        Self::random_count(dims, m, rng)
    }

    /// Samples exactly `m` distinct tensor points uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < m <= dims product`.
    pub fn random_count<R: Rng + ?Sized>(dims: &[usize], m: usize, rng: &mut R) -> Self {
        let total = checked_total(dims);
        assert!(m > 0 && m <= total, "sample count out of range");
        let mut all: Vec<usize> = (0..total).collect();
        all.shuffle(rng);
        let mut indices = all[..m].to_vec();
        indices.sort_unstable();
        NdSamplePattern {
            dims: dims.to_vec(),
            indices,
        }
    }

    /// Builds a pattern from explicit flat indices (deduplicated,
    /// sorted).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or the list is empty.
    pub fn from_indices(dims: &[usize], mut indices: Vec<usize>) -> Self {
        let total = checked_total(dims);
        assert!(!indices.is_empty(), "pattern needs at least one index");
        indices.sort_unstable();
        indices.dedup();
        assert!(*indices.last().unwrap() < total, "index out of grid range");
        NdSamplePattern {
            dims: dims.to_vec(),
            indices,
        }
    }

    /// Per-axis extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The sampled flat indices (sorted, distinct).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of samples `m`.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// Achieved sampling fraction `m / total`.
    pub fn fraction(&self) -> f64 {
        self.indices.len() as f64 / self.dims.iter().product::<usize>() as f64
    }

    /// Extracts the sampled values from a full row-major tensor.
    ///
    /// # Panics
    ///
    /// Panics if `full.len()` does not match the tensor element count.
    pub fn gather(&self, full: &[f64]) -> Vec<f64> {
        assert_eq!(
            full.len(),
            self.dims.iter().product::<usize>(),
            "grid size mismatch"
        );
        self.indices.iter().map(|&i| full[i]).collect()
    }
}

fn checked_total(dims: &[usize]) -> usize {
    assert!(!dims.is_empty(), "pattern needs at least one axis");
    assert!(dims.iter().all(|&d| d > 0), "axis extents must be positive");
    dims.iter().product()
}

/// The N-D forward/adjoint measurement operator: a [`DctNd`] synthesis
/// basis sampled at an [`NdSamplePattern`]'s flat indices.
#[derive(Clone, Debug)]
pub struct MeasurementOperatorNd<'a> {
    dct: &'a DctNd,
    pattern: &'a NdSamplePattern,
}

impl<'a> MeasurementOperatorNd<'a> {
    /// Couples a transform with a sampling pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern dims do not match the transform shape.
    pub fn new(dct: &'a DctNd, pattern: &'a NdSamplePattern) -> Self {
        assert_eq!(dct.shape(), pattern.dims(), "tensor shape mismatch");
        MeasurementOperatorNd { dct, pattern }
    }

    /// The sparsifying transform this operator couples to.
    pub fn dct(&self) -> &DctNd {
        self.dct
    }

    /// The sampling pattern this operator couples to.
    pub fn pattern(&self) -> &NdSamplePattern {
        self.pattern
    }
}

impl SensingOperator for MeasurementOperatorNd<'_> {
    fn signal_len(&self) -> usize {
        self.dct.len()
    }

    fn measurement_len(&self) -> usize {
        self.pattern.num_samples()
    }

    fn make_scratch(&self) -> OperatorScratch {
        OperatorScratch::new_nd(self.dct)
    }

    fn ensure_scratch(&self, scratch: &mut OperatorScratch) {
        scratch.ensure_nd(self.dct);
    }

    fn forward_into(&self, s: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        assert_eq!(s.len(), self.dct.len(), "signal length mismatch");
        assert_eq!(
            out.len(),
            self.pattern.num_samples(),
            "output length mismatch"
        );
        let TransformScratch::Nd(nd_scratch) = &mut scratch.transform else {
            panic!("scratch sized for another transform kind");
        };
        self.dct.inverse_into(s, &mut scratch.grid, nd_scratch);
        for (o, &idx) in out.iter_mut().zip(self.pattern.indices().iter()) {
            *o = scratch.grid[idx];
        }
    }

    fn adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut OperatorScratch) {
        assert_eq!(
            y.len(),
            self.pattern.num_samples(),
            "measurement length mismatch"
        );
        assert_eq!(out.len(), self.dct.len(), "output length mismatch");
        let TransformScratch::Nd(nd_scratch) = &mut scratch.transform else {
            panic!("scratch sized for another transform kind");
        };
        scratch.grid.fill(0.0);
        for (&idx, &v) in self.pattern.indices().iter().zip(y.iter()) {
            scratch.grid[idx] = v;
        }
        self.dct.forward_into(&scratch.grid, out, nd_scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_pattern_has_distinct_sorted_indices() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = SamplePattern::random(20, 30, 0.1, &mut rng);
        assert_eq!(p.num_samples(), 60);
        for w in p.indices().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn fraction_matches_request() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = SamplePattern::random(10, 10, 0.37, &mut rng);
        assert_eq!(p.num_samples(), 37);
        assert!((p.fraction() - 0.37).abs() < 1e-12);
    }

    #[test]
    fn gather_selects_values() {
        let p = SamplePattern::from_indices(2, 3, vec![5, 0, 2]);
        let full = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        assert_eq!(p.gather(&full), vec![10.0, 12.0, 15.0]);
    }

    #[test]
    fn coords_invert_flat_indices() {
        let p = SamplePattern::from_indices(3, 4, vec![0, 5, 11]);
        assert_eq!(p.coords(), vec![(0, 0), (1, 1), (2, 3)]);
    }

    #[test]
    fn adjoint_is_transpose_of_forward() {
        // <A s, y> == <s, A^T y> for random vectors.
        let dct = Dct2d::new(6, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let pattern = SamplePattern::random(6, 5, 0.4, &mut rng);
        let op = MeasurementOperator::new(&dct, &pattern);
        use rand::Rng;
        let s: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..op.measurement_len())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let lhs: f64 = op.forward(&s).iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = op.adjoint(&y).iter().zip(&s).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn operator_norm_at_most_one() {
        // Power iteration estimate of ||A^T A||.
        let dct = Dct2d::new(8, 8);
        let mut rng = StdRng::seed_from_u64(12);
        let pattern = SamplePattern::random(8, 8, 0.3, &mut rng);
        let op = MeasurementOperator::new(&dct, &pattern);
        use rand::Rng;
        let mut v: Vec<f64> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut lambda = 0.0;
        for _ in 0..50 {
            let w = op.adjoint(&op.forward(&v));
            lambda = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if lambda == 0.0 {
                break;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / lambda;
            }
        }
        assert!(lambda <= 1.0 + 1e-9, "operator norm {lambda} > 1");
    }

    #[test]
    fn truncated_keeps_prefix() {
        let p = SamplePattern::from_indices(2, 4, vec![1, 3, 6, 7]);
        let t = p.truncated(2);
        assert_eq!(t.indices(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0,1]")]
    fn rejects_zero_fraction() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = SamplePattern::random(4, 4, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "index out of grid range")]
    fn rejects_out_of_range_index() {
        let _ = SamplePattern::from_indices(2, 2, vec![4]);
    }

    #[test]
    #[should_panic(expected = "pattern needs at least one index")]
    fn from_indices_rejects_empty_list() {
        let _ = SamplePattern::from_indices(3, 3, vec![]);
    }

    #[test]
    #[should_panic(expected = "index out of grid range")]
    fn from_indices_rejects_out_of_range_among_valid() {
        // One bad index hiding in an otherwise valid, unsorted list
        // still panics (the check runs after sort, on the maximum).
        let _ = SamplePattern::from_indices(3, 4, vec![0, 7, 12, 3]);
    }

    #[test]
    fn from_indices_dedups_and_sorts_duplicate_heavy_input() {
        // Heavily duplicated, reverse-ordered input collapses to the
        // sorted distinct index set; m and the fraction follow suit.
        let p = SamplePattern::from_indices(2, 3, vec![5, 5, 5, 2, 2, 0, 5, 0, 2, 5]);
        assert_eq!(p.indices(), &[0, 2, 5]);
        assert_eq!(p.num_samples(), 3);
        assert!((p.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_indices_boundary_index_is_accepted() {
        // rows*cols - 1 is the last valid flat index.
        let p = SamplePattern::from_indices(2, 3, vec![5]);
        assert_eq!(p.indices(), &[5]);
        assert_eq!(p.coords(), vec![(1, 2)]);
    }
}
