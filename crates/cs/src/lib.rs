//! # oscar-cs — compressed sensing for landscape reconstruction
//!
//! The mathematical core of OSCAR (paper §4 and Appendix A):
//!
//! * [`dct`] — orthonormal DCT-II/III in 1-D, separable 2-D, and N-D
//!   form, the sparsifying basis `Ψ`, with interchangeable dense
//!   (O(n²), tiny sizes + test oracle) and FFT (O(n log n), default
//!   from `n >= 32`) kernels;
//! * [`fft`] — the FFT machinery behind the fast kernel: radix-2 for
//!   powers of two, Stockham mixed-radix (dedicated 2/3/4/5
//!   butterflies) for every other size with a prime factor `<= 31` —
//!   which covers the paper's 50/100/144/225 grid sides natively — and
//!   Bluestein chirp-z only for large-prime lengths;
//! * [`plan_cache`] — process-wide per-size plan cache so concurrent
//!   jobs at the same grid side share twiddle/chirp tables, each on
//!   the cheapest decomposition for its size;
//! * [`measure`] — random sampling patterns and the measurement operator
//!   `A = C Ψ` with its adjoint;
//! * [`fista`] — FISTA solver for the l1 (LASSO) recovery program, the
//!   workhorse reconstruction routine;
//! * [`omp`] — orthogonal matching pursuit, the greedy alternative used in
//!   the recovery-ablation benchmark;
//! * [`workspace`] — reusable scratch making the solver hot loops
//!   allocation-free in steady state;
//! * [`analysis`] — DCT energy-compaction metrics (Table 4).
//!
//! # Example
//!
//! Recover a sparse landscape from 35% of its points:
//!
//! ```
//! use oscar_cs::prelude::*;
//! use rand::SeedableRng;
//!
//! let dct = Dct2d::new(10, 10);
//! let mut coeffs = vec![0.0; 100];
//! coeffs[0] = 4.0;
//! coeffs[21] = -1.0;
//! let landscape = dct.inverse(&coeffs);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let pattern = SamplePattern::random(10, 10, 0.35, &mut rng);
//! let y = pattern.gather(&landscape);
//! let op = MeasurementOperator::new(&dct, &pattern);
//! let sol = fista(&op, &y, &FistaConfig::default());
//! let recon = dct.inverse(&sol.coefficients);
//! let err: f64 = recon.iter().zip(&landscape).map(|(a, b)| (a - b).abs()).sum();
//! assert!(err / 100.0 < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod analysis;
pub mod dct;
pub mod fft;
pub mod fista;
pub mod ista;
pub mod measure;
pub mod omp;
pub mod plan_cache;
pub mod workspace;

/// Glob-import of the most used types.
pub mod prelude {
    pub use crate::analysis::{dct_energy_fraction_99, energy_fraction, keep_top_k};
    pub use crate::dct::{Dct1d, Dct2d, DctNd, FAST_DCT_THRESHOLD};
    pub use crate::fista::{fista, fista_with, FistaConfig, FistaResult};
    pub use crate::ista::{ista, ista_with};
    pub use crate::measure::{
        MeasurementOperator, MeasurementOperatorNd, NdSamplePattern, SamplePattern, SensingOperator,
    };
    pub use crate::omp::{omp, omp_with, OmpConfig, OmpResult};
    pub use crate::workspace::Workspace;
}
