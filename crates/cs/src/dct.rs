//! Orthonormal Discrete Cosine Transforms (DCT-II and its inverse DCT-III).
//!
//! VQA landscapes are sparse in the DCT basis (paper Table 4); compressed
//! sensing recovers them from few samples by l1-minimizing DCT coefficients.
//! Grid sides in the paper are at most a few hundred points, so a
//! precomputed dense transform matrix (O(n^2) apply) is both simple and fast
//! enough; the 2-D transform is applied separably.

/// A precomputed 1-D orthonormal DCT of size `n`.
///
/// Forward is DCT-II with orthonormal scaling; inverse is its transpose
/// (DCT-III), so `inverse(forward(x)) == x` to machine precision.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::Dct1d;
///
/// let dct = Dct1d::new(8);
/// let x: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
/// let s = dct.forward(&x);
/// let y = dct.inverse(&s);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Dct1d {
    n: usize,
    /// Row-major `n x n` orthonormal DCT-II matrix: `mat[k*n + i]` is the
    /// weight of sample `i` in coefficient `k`.
    mat: Vec<f64>,
}

impl Dct1d {
    /// Builds the transform for length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        let mut mat = vec![0.0; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let scale = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                mat[k * n + i] = scale
                    * (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos();
            }
        }
        Dct1d { n, mat }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the transform length is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DCT-II: time/space domain -> frequency coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "input length mismatch");
        let mut out = vec![0.0; self.n];
        self.forward_into(x, &mut out);
        out
    }

    /// Forward transform into a caller-provided buffer (no allocation).
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        for k in 0..self.n {
            let row = &self.mat[k * self.n..(k + 1) * self.n];
            out[k] = row.iter().zip(x.iter()).map(|(m, v)| m * v).sum();
        }
    }

    /// Inverse transform (DCT-III, the transpose of the orthonormal DCT-II).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != n`.
    pub fn inverse(&self, s: &[f64]) -> Vec<f64> {
        assert_eq!(s.len(), self.n, "input length mismatch");
        let mut out = vec![0.0; self.n];
        self.inverse_into(s, &mut out);
        out
    }

    /// Inverse transform into a caller-provided buffer.
    pub fn inverse_into(&self, s: &[f64], out: &mut [f64]) {
        assert_eq!(s.len(), self.n, "input length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        out.fill(0.0);
        // x = M^T s: accumulate row-by-row for cache-friendly access.
        for k in 0..self.n {
            let c = s[k];
            if c == 0.0 {
                continue;
            }
            let row = &self.mat[k * self.n..(k + 1) * self.n];
            for (o, m) in out.iter_mut().zip(row.iter()) {
                *o += c * m;
            }
        }
    }
}

/// A separable 2-D orthonormal DCT on row-major `rows x cols` data.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::Dct2d;
///
/// let dct = Dct2d::new(4, 6);
/// let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).cos()).collect();
/// let s = dct.forward(&x);
/// let y = dct.inverse(&s);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Dct2d {
    rows: usize,
    cols: usize,
    row_t: Dct1d,
    col_t: Dct1d,
}

impl Dct2d {
    /// Builds the transform for a `rows x cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        Dct2d {
            rows,
            cols,
            row_t: Dct1d::new(cols),
            col_t: Dct1d::new(rows),
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward 2-D DCT of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * cols`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.apply(x, true)
    }

    /// Inverse 2-D DCT of row-major coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != rows * cols`.
    pub fn inverse(&self, s: &[f64]) -> Vec<f64> {
        self.apply(s, false)
    }

    fn apply(&self, x: &[f64], forward: bool) -> Vec<f64> {
        assert_eq!(x.len(), self.rows * self.cols, "grid size mismatch");
        let mut tmp = vec![0.0; x.len()];
        let mut buf_in = vec![0.0; self.cols.max(self.rows)];
        let mut buf_out = vec![0.0; self.cols.max(self.rows)];
        // Transform each row.
        for r in 0..self.rows {
            let src = &x[r * self.cols..(r + 1) * self.cols];
            let dst = &mut tmp[r * self.cols..(r + 1) * self.cols];
            if forward {
                self.row_t.forward_into(src, dst);
            } else {
                self.row_t.inverse_into(src, dst);
            }
        }
        // Transform each column.
        let mut out = vec![0.0; x.len()];
        for c in 0..self.cols {
            for r in 0..self.rows {
                buf_in[r] = tmp[r * self.cols + c];
            }
            if forward {
                self.col_t.forward_into(&buf_in[..self.rows], &mut buf_out[..self.rows]);
            } else {
                self.col_t.inverse_into(&buf_in[..self.rows], &mut buf_out[..self.rows]);
            }
            for r in 0..self.rows {
                out[r * self.cols + c] = buf_out[r];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn dc_component_of_constant() {
        let dct = Dct1d::new(16);
        let x = vec![1.0; 16];
        let s = dct.forward(&x);
        assert!((s[0] - 4.0).abs() < 1e-12); // sqrt(16) * 1
        for &c in &s[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn forward_inverse_roundtrip_1d() {
        let dct = Dct1d::new(33);
        let x: Vec<f64> = (0..33).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let y = dct.inverse(&dct.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved_1d() {
        let dct = Dct1d::new(21);
        let x: Vec<f64> = (0..21).map(|i| (i as f64 * 0.91).sin() * 2.0).collect();
        let s = dct.forward(&x);
        assert!((l2(&x) - l2(&s)).abs() < 1e-10);
    }

    #[test]
    fn single_cosine_is_one_coefficient() {
        let n = 64;
        let dct = Dct1d::new(n);
        let k = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos())
            .collect();
        let s = dct.forward(&x);
        let mut sorted: Vec<f64> = s.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // All the energy should be in exactly one coefficient.
        assert!(sorted[0] > 1.0);
        assert!(sorted[1] < 1e-10);
        assert!(s[k].abs() > 1.0);
    }

    #[test]
    fn roundtrip_2d() {
        let dct = Dct2d::new(5, 9);
        let x: Vec<f64> = (0..45).map(|i| (i as f64 * 1.3).cos()).collect();
        let y = dct.inverse(&dct.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_2d() {
        let dct = Dct2d::new(7, 7);
        let x: Vec<f64> = (0..49).map(|i| ((i * i) % 11) as f64 - 5.0).collect();
        let s = dct.forward(&x);
        assert!((l2(&x) - l2(&s)).abs() < 1e-10);
    }

    #[test]
    fn separable_product_structure() {
        // A product of cosines along each axis concentrates into a single
        // 2-D coefficient.
        let (rows, cols) = (16, 12);
        let dct = Dct2d::new(rows, cols);
        let (kr, kc) = (3usize, 2usize);
        let mut x = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let fr =
                    (std::f64::consts::PI * (r as f64 + 0.5) * kr as f64 / rows as f64).cos();
                let fc =
                    (std::f64::consts::PI * (c as f64 + 0.5) * kc as f64 / cols as f64).cos();
                x[r * cols + c] = fr * fc;
            }
        }
        let s = dct.forward(&x);
        let dominant = s[kr * cols + kc].abs();
        let rest: f64 = s
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != kr * cols + kc)
            .map(|(_, v)| v.abs())
            .sum();
        assert!(dominant > 1.0 && rest < 1e-9, "dom {dominant} rest {rest}");
    }

    #[test]
    #[should_panic(expected = "transform length must be positive")]
    fn rejects_zero_length() {
        let _ = Dct1d::new(0);
    }

    #[test]
    fn non_square_dimensions_tracked() {
        let dct = Dct2d::new(3, 8);
        assert_eq!(dct.rows(), 3);
        assert_eq!(dct.cols(), 8);
        assert_eq!(dct.len(), 24);
    }
}
