//! Orthonormal Discrete Cosine Transforms (DCT-II and its inverse DCT-III).
//!
//! VQA landscapes are sparse in the DCT basis (paper Table 4); compressed
//! sensing recovers them from few samples by l1-minimizing DCT coefficients.
//! Two interchangeable 1-D kernels sit behind every transform here:
//!
//! * a precomputed dense matrix, O(n²) per apply — fastest for tiny `n`
//!   and kept as the reference oracle the FFT path is property-tested
//!   against;
//! * an FFT-based kernel ([`crate::fft::DctPlan`]), O(n log n) per
//!   apply — the default for `n >= FAST_DCT_THRESHOLD`, which covers
//!   every production grid side (the paper's grids are 50×100 and
//!   144×225).
//!
//! The 2-D and N-D transforms are separable products of 1-D passes. All
//! transforms expose `_into_with` variants taking caller-owned scratch,
//! so the solver hot loop ([`crate::fista`]) runs with zero heap
//! allocation in steady state, and the 2-D passes run data-parallel
//! across rows (via `oscar-par`) on grids large enough to pay for it.

use crate::fft::{DctPlan, FftScratch, FftStrategy};
use std::sync::Arc;

/// Transform sides at or above this length default to the FFT kernel.
///
/// Below it the dense matrix kernel wins on constant factors (and the
/// matrix is tiny); at or above it the O(n log n) path wins — see
/// `benches/cs_kernels.rs`.
pub const FAST_DCT_THRESHOLD: usize = 32;

/// Grids with at least this many elements split their separable passes
/// across worker threads.
const PAR_MIN_ELEMS: usize = 1 << 14;

/// Apply-time scratch for one [`Dct1d`]. Empty for the dense kernel.
#[derive(Clone, Debug, Default)]
pub struct Dct1dScratch(FftScratch);

#[derive(Clone, Debug)]
enum Kernel {
    /// Row-major `n x n` orthonormal DCT-II matrix: `mat[k*n + i]` is the
    /// weight of sample `i` in coefficient `k`.
    Dense(Vec<f64>),
    /// FFT-backed O(n log n) plan, shared per size through
    /// [`crate::plan_cache`] so concurrent transforms of the same length
    /// reuse one set of twiddles/chirps.
    Fast(Arc<DctPlan>),
}

/// A 1-D orthonormal DCT of size `n`.
///
/// Forward is DCT-II with orthonormal scaling; inverse is its transpose
/// (DCT-III), so `inverse(forward(x)) == x` to machine precision.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::Dct1d;
///
/// let dct = Dct1d::new(8);
/// let x: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
/// let s = dct.forward(&x);
/// let y = dct.inverse(&s);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Dct1d {
    n: usize,
    kernel: Kernel,
}

// Emptiness is unrepresentable (lengths are validated positive at
// construction), so a `len`-only API is deliberate.
#[allow(clippy::len_without_is_empty)]
impl Dct1d {
    /// Builds the transform for length `n`, choosing the FFT kernel for
    /// `n >= FAST_DCT_THRESHOLD` and the dense kernel below it.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        if n >= FAST_DCT_THRESHOLD {
            Self::new_fast(n)
        } else {
            Self::new_dense(n)
        }
    }

    /// Builds the dense O(n²) kernel regardless of size — the test
    /// oracle, and the baseline in `benches/speedup.rs`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_dense(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        let mut mat = vec![0.0; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let scale = if k == 0 { norm0 } else { norm };
            for i in 0..n {
                mat[k * n + i] =
                    scale * (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos();
            }
        }
        Dct1d {
            n,
            kernel: Kernel::Dense(mat),
        }
    }

    /// Builds the FFT-backed O(n log n) kernel regardless of size. The
    /// plan comes from the process-wide [`crate::plan_cache`], so
    /// repeated constructions at one size share twiddles and chirps
    /// instead of replanning; the cached plan uses the cheapest DFT
    /// decomposition for `n` (mixed-radix for any size with a prime
    /// factor `<= 31`; see [`FftStrategy`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_fast(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        Dct1d {
            n,
            kernel: Kernel::Fast(crate::plan_cache::plan(n)),
        }
    }

    /// Builds an FFT kernel forced onto the whole-length Bluestein
    /// decomposition — the pre-mixed-radix baseline for benchmarks and
    /// oracle tests. Not cached: the plan cache holds the cheapest
    /// decomposition per size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new_bluestein(n: usize) -> Self {
        assert!(n > 0, "transform length must be positive");
        Dct1d {
            n,
            kernel: Kernel::Fast(Arc::new(DctPlan::new_bluestein(n))),
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when this instance uses the FFT kernel.
    pub fn is_fast(&self) -> bool {
        matches!(self.kernel, Kernel::Fast(_))
    }

    /// The DFT decomposition behind the FFT kernel (`None` for the
    /// dense matrix kernel).
    pub fn strategy(&self) -> Option<FftStrategy> {
        self.fast_plan().map(DctPlan::strategy)
    }

    /// Scratch-compatibility id: dense and each FFT decomposition need
    /// differently shaped scratch, so the kernel identity participates
    /// in workspace keys.
    pub(crate) fn kernel_id(&self) -> u8 {
        match self.strategy() {
            None => 0,
            Some(FftStrategy::Radix2) => 1,
            Some(FftStrategy::MixedRadix) => 2,
            Some(FftStrategy::Bluestein) => 3,
        }
    }

    /// The FFT plan, when this instance uses the FFT kernel (for the
    /// pair-packed batched pass).
    fn fast_plan(&self) -> Option<&DctPlan> {
        match &self.kernel {
            Kernel::Dense(_) => None,
            Kernel::Fast(plan) => Some(plan),
        }
    }

    /// Allocates apply-time scratch for this transform (empty for the
    /// dense kernel). Reusable across any number of applies.
    pub fn make_scratch(&self) -> Dct1dScratch {
        match &self.kernel {
            Kernel::Dense(_) => Dct1dScratch::default(),
            Kernel::Fast(plan) => Dct1dScratch(plan.scratch()),
        }
    }

    /// Forward DCT-II: space domain -> frequency coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.forward_into(x, &mut out);
        out
    }

    /// Forward transform into a caller-provided buffer.
    ///
    /// Convenience wrapper allocating transient scratch for the FFT
    /// kernel; hot paths should hold a [`Dct1dScratch`] and call
    /// [`Self::forward_into_with`].
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        let mut scratch = self.make_scratch();
        self.forward_into_with(x, out, &mut scratch);
    }

    /// Zero-allocation forward transform.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `scratch` came from a different
    /// plan size.
    pub fn forward_into_with(&self, x: &[f64], out: &mut [f64], scratch: &mut Dct1dScratch) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        match &self.kernel {
            Kernel::Dense(mat) => {
                for k in 0..self.n {
                    let row = &mat[k * self.n..(k + 1) * self.n];
                    out[k] = row.iter().zip(x.iter()).map(|(m, v)| m * v).sum();
                }
            }
            Kernel::Fast(plan) => plan.forward_into(x, out, &mut scratch.0),
        }
    }

    /// Inverse transform (DCT-III, the transpose of the orthonormal
    /// DCT-II).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != n`.
    pub fn inverse(&self, s: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.inverse_into(s, &mut out);
        out
    }

    /// Inverse transform into a caller-provided buffer (transient
    /// scratch; see [`Self::inverse_into_with`] for the hot-path form).
    pub fn inverse_into(&self, s: &[f64], out: &mut [f64]) {
        let mut scratch = self.make_scratch();
        self.inverse_into_with(s, out, &mut scratch);
    }

    /// Zero-allocation inverse transform.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `scratch` came from a different
    /// plan size.
    pub fn inverse_into_with(&self, s: &[f64], out: &mut [f64], scratch: &mut Dct1dScratch) {
        assert_eq!(s.len(), self.n, "input length mismatch");
        assert_eq!(out.len(), self.n, "output length mismatch");
        match &self.kernel {
            Kernel::Dense(mat) => {
                out.fill(0.0);
                // x = M^T s: accumulate row-by-row for cache-friendly access.
                for k in 0..self.n {
                    let c = s[k];
                    if c == 0.0 {
                        continue;
                    }
                    let row = &mat[k * self.n..(k + 1) * self.n];
                    for (o, m) in out.iter_mut().zip(row.iter()) {
                        *o += c * m;
                    }
                }
            }
            Kernel::Fast(plan) => plan.inverse_into(s, out, &mut scratch.0),
        }
    }
}

/// Apply-time scratch for a [`Dct2d`]: two full-grid buffers for the
/// separable passes plus per-worker 1-D scratch pools. Allocate once
/// with [`Dct2d::make_scratch`] and reuse — every apply through it is
/// heap-allocation-free.
#[derive(Clone, Debug)]
pub struct Dct2dScratch {
    tmp: Vec<f64>,
    tmp2: Vec<f64>,
    row: Vec<Dct1dScratch>,
    col: Vec<Dct1dScratch>,
}

/// A separable 2-D orthonormal DCT on row-major `rows x cols` data.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::Dct2d;
///
/// let dct = Dct2d::new(4, 6);
/// let x: Vec<f64> = (0..24).map(|i| (i as f64 * 0.37).cos()).collect();
/// let s = dct.forward(&x);
/// let y = dct.inverse(&s);
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-12);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Dct2d {
    rows: usize,
    cols: usize,
    row_t: Dct1d,
    col_t: Dct1d,
}

// Emptiness is unrepresentable (lengths are validated positive at
// construction), so a `len`-only API is deliberate.
#[allow(clippy::len_without_is_empty)]
impl Dct2d {
    /// Builds the transform for a `rows x cols` grid (per-axis kernels
    /// chosen automatically; see [`FAST_DCT_THRESHOLD`]).
    pub fn new(rows: usize, cols: usize) -> Self {
        Dct2d {
            rows,
            cols,
            row_t: Dct1d::new(cols),
            col_t: Dct1d::new(rows),
        }
    }

    /// Builds the transform with dense kernels on both axes — the
    /// baseline configuration benchmarked against the default.
    pub fn new_dense(rows: usize, cols: usize) -> Self {
        Dct2d {
            rows,
            cols,
            row_t: Dct1d::new_dense(cols),
            col_t: Dct1d::new_dense(rows),
        }
    }

    /// Builds the transform with FFT kernels on both axes.
    pub fn new_fast(rows: usize, cols: usize) -> Self {
        Dct2d {
            rows,
            cols,
            row_t: Dct1d::new_fast(cols),
            col_t: Dct1d::new_fast(rows),
        }
    }

    /// Builds the transform with whole-length Bluestein FFT kernels on
    /// both axes — the pre-mixed-radix baseline benchmarked against the
    /// default in `benches/fft_mixed_radix.rs`.
    pub fn new_bluestein(rows: usize, cols: usize) -> Self {
        Dct2d {
            rows,
            cols,
            row_t: Dct1d::new_bluestein(cols),
            col_t: Dct1d::new_bluestein(rows),
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when both axes use the FFT kernel.
    pub fn is_fast(&self) -> bool {
        self.row_t.is_fast() && self.col_t.is_fast()
    }

    /// Per-axis kernel identity `(row_id, col_id)` — part of the
    /// scratch-compatibility key (the dense kernel and each FFT
    /// decomposition of the same grid size need differently shaped
    /// scratch; see [`Dct1d::kernel_id`]).
    pub(crate) fn kernel_kinds(&self) -> (u8, u8) {
        (self.row_t.kernel_id(), self.col_t.kernel_id())
    }

    /// Allocates reusable apply-time scratch for this grid.
    pub fn make_scratch(&self) -> Dct2dScratch {
        let workers = if self.len() >= PAR_MIN_ELEMS {
            oscar_par::max_threads()
        } else {
            1
        };
        Dct2dScratch {
            tmp: vec![0.0; self.len()],
            tmp2: vec![0.0; self.len()],
            row: (0..workers).map(|_| self.row_t.make_scratch()).collect(),
            col: (0..workers).map(|_| self.col_t.make_scratch()).collect(),
        }
    }

    /// Forward 2-D DCT of row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows * cols`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = self.make_scratch();
        self.forward_into(x, &mut out, &mut scratch);
        out
    }

    /// Inverse 2-D DCT of row-major coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != rows * cols`.
    pub fn inverse(&self, s: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.len()];
        let mut scratch = self.make_scratch();
        self.inverse_into(s, &mut out, &mut scratch);
        out
    }

    /// Zero-allocation forward transform into `out`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or scratch from a different grid.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64], scratch: &mut Dct2dScratch) {
        self.apply_into(x, out, scratch, true);
    }

    /// Zero-allocation inverse transform into `out`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or scratch from a different grid.
    pub fn inverse_into(&self, s: &[f64], out: &mut [f64], scratch: &mut Dct2dScratch) {
        self.apply_into(s, out, scratch, false);
    }

    /// Separable apply. Two strategies, identical arithmetic:
    ///
    /// * serial + both axes on the FFT kernel: a contiguous pair-packed
    ///   row pass, then a *strided* pair-packed column pass — no
    ///   transposes at all (the pack/unpack closures absorb the stride);
    /// * otherwise: a pass over rows, a transpose, a pass over the (now
    ///   contiguous) columns, and a transpose back, with each pass split
    ///   across worker threads on large grids.
    fn apply_into(&self, x: &[f64], out: &mut [f64], scratch: &mut Dct2dScratch, forward: bool) {
        let (rows, cols) = (self.rows, self.cols);
        assert_eq!(x.len(), rows * cols, "grid size mismatch");
        assert_eq!(out.len(), rows * cols, "output size mismatch");
        assert_eq!(scratch.tmp.len(), rows * cols, "scratch grid mismatch");
        let Dct2dScratch {
            tmp,
            tmp2,
            row,
            col,
        } = scratch;

        let parallel = rows * cols >= PAR_MIN_ELEMS && row.len() > 1;
        if !parallel {
            if let (Some(_), Some(col_plan)) = (self.row_t.fast_plan(), self.col_t.fast_plan()) {
                // Pass 1: contiguous pair-packed rows, x -> tmp.
                process_lines(&self.row_t, x, tmp, cols, &mut row[0], forward);
                // Pass 2: strided pair-packed columns, tmp -> out.
                strided_col_pass(col_plan, tmp, out, rows, cols, &mut col[0], forward);
                return;
            }
        }

        // Pass 1: transform every row of `x` into `tmp`.
        line_pass(&self.row_t, x, tmp, cols, row, forward);
        // Transpose rows x cols -> cols x rows so columns become rows.
        transpose(tmp, tmp2, rows, cols);
        // Pass 2: transform every (former) column, now contiguous.
        line_pass(&self.col_t, tmp2, tmp, rows, col, forward);
        // Transpose back into the caller's layout.
        transpose(tmp, out, cols, rows);
    }
}

/// Column pass without transposes: transforms every column of the
/// row-major `rows x cols` grid `src` into `dst`, packing two columns
/// per complex DFT with strided loads/stores. An odd final column packs
/// a zero line in the imaginary slot and discards it.
fn strided_col_pass(
    plan: &DctPlan,
    src: &[f64],
    dst: &mut [f64],
    rows: usize,
    cols: usize,
    scr: &mut Dct1dScratch,
    forward: bool,
) {
    debug_assert_eq!(plan.len(), rows, "column plan must match row count");
    debug_assert_eq!(src.len(), rows * cols);
    let mut c = 0;
    while c < cols {
        let pair = c + 1 < cols;
        let c2 = if pair { c + 1 } else { c };
        let load = |i: usize| {
            (
                src[i * cols + c],
                if pair { src[i * cols + c2] } else { 0.0 },
            )
        };
        let store = |k: usize, a: f64, b: f64| {
            dst[k * cols + c] = a;
            if pair {
                dst[k * cols + c2] = b;
            }
        };
        if forward {
            plan.forward_pair_with(&mut scr.0, load, store);
        } else {
            plan.inverse_pair_with(&mut scr.0, load, store);
        }
        c += 2;
    }
}

/// Applies `t` to every `line_len`-sized line of `src`, writing the
/// matching line of `dst`. Splits across workers when the grid is large
/// enough, handing each worker its own scratch from the pool. With the
/// FFT kernel, lines are processed two at a time through one complex
/// DFT ([`DctPlan::forward_pair_with`]), halving the dominant cost.
fn line_pass(
    t: &Dct1d,
    src: &[f64],
    dst: &mut [f64],
    line_len: usize,
    pool: &mut [Dct1dScratch],
    forward: bool,
) {
    let parallel = src.len() >= PAR_MIN_ELEMS && pool.len() > 1;
    if !parallel {
        process_lines(t, src, dst, line_len, &mut pool[0], forward);
        return;
    }
    // Granule of two lines so worker chunks never split a packed pair.
    oscar_par::for_each_chunk_mut_with(dst, 2 * line_len, pool, |offset, chunk, scr| {
        process_lines(
            t,
            &src[offset..offset + chunk.len()],
            chunk,
            line_len,
            scr,
            forward,
        );
    });
}

/// Serial core of [`line_pass`]: transforms the complete lines of `src`
/// into `dst` (equal lengths, whole number of lines).
fn process_lines(
    t: &Dct1d,
    src: &[f64],
    dst: &mut [f64],
    line_len: usize,
    scr: &mut Dct1dScratch,
    forward: bool,
) {
    debug_assert_eq!(src.len(), dst.len());
    let nlines = dst.len() / line_len;
    if let Some(plan) = t.fast_plan() {
        let mut i = 0;
        while i + 1 < nlines {
            let s1 = &src[i * line_len..(i + 1) * line_len];
            let s2 = &src[(i + 1) * line_len..(i + 2) * line_len];
            let pair = &mut dst[i * line_len..(i + 2) * line_len];
            // Transform of the zero line is zero — skip the DFT when a
            // whole pair is zero, which is common for the sparse
            // coefficient grids FISTA feeds through the inverse (the
            // dense kernel gets the same effect from its per-row
            // zero-coefficient skip).
            if s1.iter().chain(s2).all(|&v| v == 0.0) {
                pair.fill(0.0);
                i += 2;
                continue;
            }
            let (d1, d2) = pair.split_at_mut(line_len);
            if forward {
                plan.forward_pair_with(
                    &mut scr.0,
                    |j| (s1[j], s2[j]),
                    |k, a, b| {
                        d1[k] = a;
                        d2[k] = b;
                    },
                );
            } else {
                plan.inverse_pair_with(
                    &mut scr.0,
                    |k| (s1[k], s2[k]),
                    |j, a, b| {
                        d1[j] = a;
                        d2[j] = b;
                    },
                );
            }
            i += 2;
        }
        if i < nlines {
            let s = &src[i * line_len..(i + 1) * line_len];
            let d = &mut dst[i * line_len..(i + 1) * line_len];
            if s.iter().all(|&v| v == 0.0) {
                d.fill(0.0);
            } else if forward {
                t.forward_into_with(s, d, scr);
            } else {
                t.inverse_into_with(s, d, scr);
            }
        }
        return;
    }
    for (src_line, dst_line) in src
        .chunks_exact(line_len)
        .zip(dst.chunks_exact_mut(line_len))
    {
        if forward {
            t.forward_into_with(src_line, dst_line, scr);
        } else {
            t.inverse_into_with(src_line, dst_line, scr);
        }
    }
}

/// Cache-blocked out-of-place transpose of a row-major `rows x cols`
/// matrix into a `cols x rows` one.
fn transpose(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    const BLOCK: usize = 32;
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    let mut rb = 0;
    while rb < rows {
        let r_end = (rb + BLOCK).min(rows);
        let mut cb = 0;
        while cb < cols {
            let c_end = (cb + BLOCK).min(cols);
            for r in rb..r_end {
                for c in cb..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            cb += BLOCK;
        }
        rb += BLOCK;
    }
}

/// Apply-time scratch for a [`DctNd`].
#[derive(Clone, Debug)]
pub struct DctNdScratch {
    line_in: Vec<f64>,
    line_out: Vec<f64>,
    axis: Vec<Dct1dScratch>,
}

/// A separable N-dimensional orthonormal DCT over a row-major tensor of
/// the given shape (last axis contiguous) — the transform behind
/// reshaped p >= 2 QAOA landscapes when they are treated natively
/// instead of flattened to 2-D.
///
/// # Examples
///
/// ```
/// use oscar_cs::dct::DctNd;
///
/// let dct = DctNd::new(&[3, 4, 5]);
/// let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).sin()).collect();
/// let y = dct.inverse(&dct.forward(&x));
/// for (a, b) in x.iter().zip(&y) {
///     assert!((a - b).abs() < 1e-10);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct DctNd {
    shape: Vec<usize>,
    axes: Vec<Dct1d>,
}

// Emptiness is unrepresentable (lengths are validated positive at
// construction), so a `len`-only API is deliberate.
#[allow(clippy::len_without_is_empty)]
impl DctNd {
    /// Builds the transform for `shape` (kernels per axis chosen
    /// automatically).
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any extent is zero.
    pub fn new(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape needs at least one axis");
        assert!(
            shape.iter().all(|&d| d > 0),
            "axis extents must be positive"
        );
        DctNd {
            shape: shape.to_vec(),
            axes: shape.iter().map(|&d| Dct1d::new(d)).collect(),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Per-axis kernel identities (same role as [`Dct2d::kernel_kinds`]:
    /// scratch layouts differ per kernel, so they key operator scratch).
    pub(crate) fn kernel_ids(&self) -> Vec<u8> {
        self.axes.iter().map(|t| t.kernel_id()).collect()
    }

    /// Total number of tensor elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Allocates reusable apply-time scratch.
    pub fn make_scratch(&self) -> DctNdScratch {
        let max_side = self.shape.iter().copied().max().unwrap_or(1);
        DctNdScratch {
            line_in: vec![0.0; max_side],
            line_out: vec![0.0; max_side],
            axis: self.axes.iter().map(|t| t.make_scratch()).collect(),
        }
    }

    /// Forward N-D DCT.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the shape's element count.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        let mut scratch = self.make_scratch();
        self.apply_in_place(&mut out, &mut scratch, true);
        out
    }

    /// Inverse N-D DCT.
    ///
    /// # Panics
    ///
    /// Panics if `s.len()` does not match the shape's element count.
    pub fn inverse(&self, s: &[f64]) -> Vec<f64> {
        let mut out = s.to_vec();
        let mut scratch = self.make_scratch();
        self.apply_in_place(&mut out, &mut scratch, false);
        out
    }

    /// Zero-allocation forward transform: copies `x` into `out` and
    /// transforms in place there.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64], scratch: &mut DctNdScratch) {
        assert_eq!(out.len(), x.len(), "output size mismatch");
        out.copy_from_slice(x);
        self.apply_in_place(out, scratch, true);
    }

    /// Zero-allocation inverse transform.
    pub fn inverse_into(&self, s: &[f64], out: &mut [f64], scratch: &mut DctNdScratch) {
        assert_eq!(out.len(), s.len(), "output size mismatch");
        out.copy_from_slice(s);
        self.apply_in_place(out, scratch, false);
    }

    /// Transforms each axis in turn: axis `a` is visited as
    /// `(outer, len, inner)` strides; each 1-D line is gathered,
    /// transformed, and scattered back.
    fn apply_in_place(&self, data: &mut [f64], scratch: &mut DctNdScratch, forward: bool) {
        assert_eq!(data.len(), self.len(), "tensor size mismatch");
        let mut inner = 1usize;
        for (a, t) in self.axes.iter().enumerate().rev() {
            let len = self.shape[a];
            let outer = data.len() / (len * inner);
            let line_in = &mut scratch.line_in[..len];
            let line_out = &mut scratch.line_out[..len];
            let scr = &mut scratch.axis[a];
            for o in 0..outer {
                let base = o * len * inner;
                for i in 0..inner {
                    for (k, v) in line_in.iter_mut().enumerate() {
                        *v = data[base + k * inner + i];
                    }
                    if forward {
                        t.forward_into_with(line_in, line_out, scr);
                    } else {
                        t.inverse_into_with(line_in, line_out, scr);
                    }
                    for (k, v) in line_out.iter().enumerate() {
                        data[base + k * inner + i] = *v;
                    }
                }
            }
            inner *= len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2(a: &[f64]) -> f64 {
        a.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn dc_component_of_constant() {
        let dct = Dct1d::new(16);
        let x = vec![1.0; 16];
        let s = dct.forward(&x);
        assert!((s[0] - 4.0).abs() < 1e-12); // sqrt(16) * 1
        for &c in &s[1..] {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn forward_inverse_roundtrip_1d() {
        let dct = Dct1d::new(33);
        let x: Vec<f64> = (0..33).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let y = dct.inverse(&dct.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved_1d() {
        let dct = Dct1d::new(21);
        let x: Vec<f64> = (0..21).map(|i| (i as f64 * 0.91).sin() * 2.0).collect();
        let s = dct.forward(&x);
        assert!((l2(&x) - l2(&s)).abs() < 1e-10);
    }

    #[test]
    fn single_cosine_is_one_coefficient() {
        let n = 64;
        let dct = Dct1d::new(n);
        assert!(dct.is_fast(), "n=64 should take the FFT path");
        let k = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos())
            .collect();
        let s = dct.forward(&x);
        let mut sorted: Vec<f64> = s.iter().map(|v| v.abs()).collect();
        sorted.sort_by(|a, b| b.total_cmp(a));
        // All the energy should be in exactly one coefficient.
        assert!(sorted[0] > 1.0);
        assert!(sorted[1] < 1e-10);
        assert!(s[k].abs() > 1.0);
    }

    #[test]
    fn fast_kernel_selected_at_threshold() {
        assert!(!Dct1d::new(FAST_DCT_THRESHOLD - 1).is_fast());
        assert!(Dct1d::new(FAST_DCT_THRESHOLD).is_fast());
        // Forced constructors override the threshold in both directions.
        assert!(Dct1d::new_fast(4).is_fast());
        assert!(!Dct1d::new_dense(128).is_fast());
    }

    #[test]
    fn fast_matches_dense_exactly_enough() {
        for n in [32usize, 50, 64, 100] {
            let dense = Dct1d::new_dense(n);
            let fast = Dct1d::new_fast(n);
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 31 % 17) as f64 - 8.0) * 0.25)
                .collect();
            let a = dense.forward(&x);
            let b = fast.forward(&x);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-10, "n={n}");
            }
            let ia = dense.inverse(&a);
            let ib = fast.inverse(&b);
            for (u, v) in ia.iter().zip(&ib) {
                assert!((u - v).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let dct = Dct2d::new(5, 9);
        let x: Vec<f64> = (0..45).map(|i| (i as f64 * 1.3).cos()).collect();
        let y = dct.inverse(&dct.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_2d_fast_kernels() {
        let dct = Dct2d::new(50, 100);
        assert!(dct.is_fast());
        let x: Vec<f64> = (0..5000).map(|i| (i as f64 * 0.013).sin()).collect();
        let y = dct.inverse(&dct.forward(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_2d() {
        let dct = Dct2d::new(7, 7);
        let x: Vec<f64> = (0..49).map(|i| ((i * i) % 11) as f64 - 5.0).collect();
        let s = dct.forward(&x);
        assert!((l2(&x) - l2(&s)).abs() < 1e-10);
    }

    #[test]
    fn separable_product_structure() {
        // A product of cosines along each axis concentrates into a single
        // 2-D coefficient.
        let (rows, cols) = (16, 12);
        let dct = Dct2d::new(rows, cols);
        let (kr, kc) = (3usize, 2usize);
        let mut x = vec![0.0; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let fr = (std::f64::consts::PI * (r as f64 + 0.5) * kr as f64 / rows as f64).cos();
                let fc = (std::f64::consts::PI * (c as f64 + 0.5) * kc as f64 / cols as f64).cos();
                x[r * cols + c] = fr * fc;
            }
        }
        let s = dct.forward(&x);
        let dominant = s[kr * cols + kc].abs();
        let rest: f64 = s
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != kr * cols + kc)
            .map(|(_, v)| v.abs())
            .sum();
        assert!(dominant > 1.0 && rest < 1e-9, "dom {dominant} rest {rest}");
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        let dct = Dct2d::new(40, 50);
        let mut scratch = dct.make_scratch();
        let x: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut a = vec![0.0; 2000];
        let mut b = vec![0.0; 2000];
        dct.forward_into(&x, &mut a, &mut scratch);
        dct.forward_into(&x, &mut b, &mut scratch);
        assert_eq!(a, b);
        assert_eq!(a, dct.forward(&x));
    }

    #[test]
    #[should_panic(expected = "transform length must be positive")]
    fn rejects_zero_length() {
        let _ = Dct1d::new(0);
    }

    #[test]
    fn non_square_dimensions_tracked() {
        let dct = Dct2d::new(3, 8);
        assert_eq!(dct.rows(), 3);
        assert_eq!(dct.cols(), 8);
        assert_eq!(dct.len(), 24);
    }

    #[test]
    fn transpose_is_involution() {
        let (r, c) = (37, 53);
        let src: Vec<f64> = (0..r * c).map(|i| i as f64).collect();
        let mut t = vec![0.0; r * c];
        let mut back = vec![0.0; r * c];
        transpose(&src, &mut t, r, c);
        transpose(&t, &mut back, c, r);
        assert_eq!(src, back);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], c as f64); // (1,0) of transposed = (0,1) of source
    }

    #[test]
    fn nd_matches_2d_on_matrices() {
        let (rows, cols) = (6, 10);
        let d2 = Dct2d::new(rows, cols);
        let dn = DctNd::new(&[rows, cols]);
        let x: Vec<f64> = (0..60).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = d2.forward(&x);
        let b = dn.forward(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn nd_roundtrip_non_pow2_shapes() {
        for shape in [vec![3usize], vec![5, 7], vec![3, 4, 5], vec![2, 3, 5, 7]] {
            let dct = DctNd::new(&shape);
            let n = dct.len();
            let x: Vec<f64> = (0..n).map(|i| ((i * 29 % 23) as f64) - 11.0).collect();
            let y = dct.inverse(&dct.forward(&x));
            for (a, b) in x.iter().zip(&y) {
                assert!((a - b).abs() < 1e-10, "shape {shape:?}");
            }
        }
    }

    #[test]
    fn nd_parseval() {
        let dct = DctNd::new(&[4, 6, 5]);
        let x: Vec<f64> = (0..120).map(|i| (i as f64 * 0.61).cos()).collect();
        let s = dct.forward(&x);
        assert!((l2(&x) - l2(&s)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shape needs at least one axis")]
    fn nd_rejects_empty_shape() {
        let _ = DctNd::new(&[]);
    }
}
