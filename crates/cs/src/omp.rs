//! Orthogonal Matching Pursuit — the greedy alternative to FISTA.
//!
//! Used by the recovery-ablation benchmark to compare l1 relaxation against
//! greedy support selection. OMP repeatedly picks the dictionary atom most
//! correlated with the residual and re-solves least squares on the selected
//! support (via normal equations + Cholesky).

use crate::measure::MeasurementOperator;
use crate::workspace::Workspace;

/// Configuration for [`omp`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OmpConfig {
    /// Maximum number of atoms to select.
    pub max_atoms: usize,
    /// Stop when the residual norm falls below this.
    pub residual_tol: f64,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            max_atoms: 64,
            residual_tol: 1e-8,
        }
    }
}

/// Outcome of an OMP run.
#[derive(Clone, Debug)]
pub struct OmpResult {
    /// Recovered coefficient vector (zero off the selected support).
    pub coefficients: Vec<f64>,
    /// Selected atom indices, in selection order.
    pub support: Vec<usize>,
    /// Final residual norm.
    pub residual_norm: f64,
}

/// Runs OMP for measurements `y` under operator `op`.
///
/// # Panics
///
/// Panics if `y.len()` mismatches the operator or `max_atoms == 0`.
pub fn omp(op: &MeasurementOperator<'_>, y: &[f64], cfg: &OmpConfig) -> OmpResult {
    let mut ws = Workspace::for_operator(op);
    omp_with(op, y, cfg, &mut ws)
}

/// Runs OMP through a caller-owned [`Workspace`].
///
/// All per-iteration state (residual, correlations, atom columns, Gram
/// matrix, Cholesky factor) lives in reserved workspace storage, so a
/// warmed-up workspace makes iterations heap-allocation-free. The Gram
/// matrix is updated incrementally — one new row per selected atom —
/// instead of being recomputed from scratch each round.
///
/// # Panics
///
/// Panics if `y.len()` mismatches the operator or `max_atoms == 0`.
pub fn omp_with(
    op: &MeasurementOperator<'_>,
    y: &[f64],
    cfg: &OmpConfig,
    ws: &mut Workspace,
) -> OmpResult {
    assert_eq!(y.len(), op.measurement_len(), "measurement length mismatch");
    assert!(cfg.max_atoms > 0, "max_atoms must be positive");
    ws.ensure(op);
    let n = op.signal_len();
    let m = op.measurement_len();
    let max_atoms = cfg.max_atoms.min(m).min(n);

    ws.resid.copy_from_slice(y);
    ws.support.clear();
    // Flat `k x m` atom storage and `max_atoms^2` factor storage,
    // reserved up front so pushes never reallocate mid-solve.
    ws.atoms.clear();
    ws.atoms.reserve(max_atoms * m);
    ws.gram.clear();
    ws.gram.reserve(max_atoms * max_atoms);
    ws.chol.clear();
    ws.chol.resize(max_atoms * max_atoms, 0.0);
    ws.rhs.clear();
    ws.rhs.reserve(max_atoms);
    ws.coef.clear();
    ws.coef.reserve(max_atoms);

    for _ in 0..max_atoms {
        if norm(&ws.resid) < cfg.residual_tol {
            break;
        }
        // Most correlated atom: argmax |A^T r|.
        op.adjoint_into(&ws.resid, &mut ws.grad, &mut ws.op);
        let mut best = None;
        let mut best_val = 0.0;
        for (i, &c) in ws.grad.iter().enumerate() {
            if ws.support.contains(&i) {
                continue;
            }
            if c.abs() > best_val {
                best_val = c.abs();
                best = Some(i);
            }
        }
        let Some(j) = best else { break };
        if best_val < 1e-14 {
            break;
        }

        // Materialize column j of A via e_j (reusing the iterate buffer).
        let k = ws.support.len();
        ws.support.push(j);
        ws.s.fill(0.0);
        ws.s[j] = 1.0;
        op.forward_into(&ws.s, &mut ws.az, &mut ws.op);
        ws.atoms.extend_from_slice(&ws.az);

        // Grow the Gram matrix by one symmetric row: re-lay the old
        // `k x k` block into the new `(k+1) x (k+1)` geometry (back to
        // front so it can run in place), then append the new products.
        let new_atom = &ws.atoms[k * m..(k + 1) * m];
        ws.gram.resize((k + 1) * (k + 1), 0.0);
        for a in (0..k).rev() {
            for b in (0..k).rev() {
                ws.gram[a * (k + 1) + b] = ws.gram[a * k + b];
            }
        }
        for a in 0..k {
            let g = dot(&ws.atoms[a * m..(a + 1) * m], new_atom);
            ws.gram[a * (k + 1) + k] = g;
            ws.gram[k * (k + 1) + a] = g;
        }
        ws.gram[k * (k + 1) + k] = dot(new_atom, new_atom);
        ws.rhs.push(dot(new_atom, y));

        // Least squares on the support via normal equations.
        let k = k + 1;
        ws.coef.resize(k, 0.0);
        cholesky_solve_into(&ws.gram, &ws.rhs, k, &mut ws.chol, &mut ws.coef);

        // New residual.
        ws.resid.copy_from_slice(y);
        for (a, &c) in ws.coef.iter().enumerate() {
            for (r, &v) in ws.resid.iter_mut().zip(ws.atoms[a * m..(a + 1) * m].iter()) {
                *r -= c * v;
            }
        }
    }

    let mut coefficients = vec![0.0; n];
    for (&j, &c) in ws.support.iter().zip(ws.coef.iter()) {
        coefficients[j] = c;
    }
    OmpResult {
        coefficients,
        support: ws.support.clone(),
        residual_norm: norm(&ws.resid),
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `G x = b` for symmetric positive-definite `G` (row-major `k x k`)
/// by Cholesky decomposition, with a tiny diagonal ridge for robustness.
/// `l` provides factor storage (at least `k * k`); the solution lands in
/// `x` (length `k`), which doubles as the substitution buffer.
fn cholesky_solve_into(g: &[f64], b: &[f64], k: usize, l: &mut [f64], x: &mut [f64]) {
    let ridge = 1e-12;
    for i in 0..k {
        for j in 0..=i {
            let mut sum = g[i * k + j];
            if i == j {
                sum += ridge;
            }
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                l[i * k + i] = sum.max(1e-300).sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    // Forward substitution L z = b (z stored in x).
    for i in 0..k {
        let mut sum = b[i];
        for p in 0..i {
            sum -= l[i * k + p] * x[p];
        }
        x[i] = sum / l[i * k + i];
    }
    // Back substitution L^T x = z, in place.
    for i in (0..k).rev() {
        let mut sum = x[i];
        for p in i + 1..k {
            sum -= l[p * k + i] * x[p];
        }
        x[i] = sum / l[i * k + i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct::Dct2d;
    use crate::measure::SamplePattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cholesky_solves_spd_system() {
        // G = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let g = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![2.0, 1.0];
        let mut l = vec![0.0; 4];
        let mut x = vec![0.0; 2];
        cholesky_solve_into(&g, &b, 2, &mut l, &mut x);
        assert!((x[0] - 0.5).abs() < 1e-9 && x[1].abs() < 1e-9, "{x:?}");
    }

    #[test]
    fn omp_recovers_exactly_sparse() {
        let dct = Dct2d::new(10, 10);
        let mut coeffs = vec![0.0; 100];
        coeffs[0] = 3.0;
        coeffs[12] = -1.5;
        coeffs[47] = 0.7;
        let full = dct.inverse(&coeffs);
        let mut rng = StdRng::seed_from_u64(17);
        let pattern = SamplePattern::random(10, 10, 0.3, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = omp(&op, &y, &OmpConfig::default());
        for (i, (&c, &r)) in coeffs.iter().zip(res.coefficients.iter()).enumerate() {
            assert!((c - r).abs() < 1e-6, "coef {i}: {c} vs {r}");
        }
        assert!(res.residual_norm < 1e-6);
    }

    #[test]
    fn omp_selects_true_support_first() {
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        coeffs[20] = 10.0;
        let full = dct.inverse(&coeffs);
        let mut rng = StdRng::seed_from_u64(3);
        let pattern = SamplePattern::random(8, 8, 0.5, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = omp(&op, &y, &OmpConfig::default());
        assert_eq!(res.support[0], 20);
    }

    #[test]
    fn max_atoms_bounds_support() {
        let dct = Dct2d::new(8, 8);
        let mut coeffs = vec![0.0; 64];
        for i in 0..10 {
            coeffs[i * 6] = 1.0 + i as f64;
        }
        let full = dct.inverse(&coeffs);
        let mut rng = StdRng::seed_from_u64(4);
        let pattern = SamplePattern::random(8, 8, 0.8, &mut rng);
        let y = pattern.gather(&full);
        let op = MeasurementOperator::new(&dct, &pattern);
        let res = omp(
            &op,
            &y,
            &OmpConfig {
                max_atoms: 3,
                residual_tol: 0.0,
            },
        );
        assert!(res.support.len() <= 3);
    }

    #[test]
    #[should_panic(expected = "max_atoms must be positive")]
    fn rejects_zero_atoms() {
        let dct = Dct2d::new(4, 4);
        let pattern = SamplePattern::from_indices(4, 4, vec![0]);
        let op = MeasurementOperator::new(&dct, &pattern);
        let _ = omp(
            &op,
            &[1.0],
            &OmpConfig {
                max_atoms: 0,
                residual_tol: 0.0,
            },
        );
    }
}
