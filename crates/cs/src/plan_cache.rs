//! Process-wide cache of FFT-backed DCT plans, keyed by transform
//! length.
//!
//! Planning a [`DctPlan`] is much more expensive than applying it: the
//! radix-2 path precomputes a bit-reversal table and twiddle factors,
//! the mixed-radix path builds a per-stage twiddle table from the
//! size's factorization, and the Bluestein path additionally runs a
//! full-size FFT over the chirp filter. A stream of reconstruction
//! jobs at the same grid side (the common case for `oscar-runtime`
//! batches — the paper's grids are 50×100 and 144×225) would otherwise
//! replan identical tables per job. Each cached plan uses the cheapest
//! decomposition for its size (`DctPlan::new` picks it), so every
//! consumer of the cache gets e.g. the dedicated 2·3·5 butterflies at
//! the paper's sides for free.
//!
//! [`plan`] returns an `Arc<DctPlan>` shared by every transform of the
//! same length in the process. Plans are immutable after construction
//! and applies keep all mutable state in caller-owned scratch, so
//! sharing one plan across concurrently running jobs is safe and
//! lock-free at apply time (the cache lock is only taken at
//! construction).
//!
//! The cache is unbounded by design: entries are keyed by grid side, of
//! which a deployment sees a handful, and each entry is O(n) floats.
//! [`clear`] exists for tests and long-lived processes that churn
//! through many distinct sizes.

use crate::fft::DctPlan;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans currently cached.
    pub entries: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
}

struct State {
    plans: HashMap<usize, Arc<DctPlan>>,
    hits: u64,
    misses: u64,
}

/// Locks the cache state, recovering from poison: the map and counters
/// are valid after any unwind, so a worker that panicked while holding
/// the lock must not cascade into every later transform.
fn lock_state() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(PoisonError::into_inner)
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            plans: HashMap::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// Returns the shared plan for length `n`, planning it on first use.
///
/// Robust to a panicking worker: the cache holds only plain maps and
/// counters that every lock/unlock leaves valid, so a poisoned mutex is
/// recovered (`PoisonError::into_inner`) instead of cascading the
/// original panic into every later transform in the process.
///
/// # Panics
///
/// Panics if `n == 0` (propagated from [`DctPlan::new`]).
pub fn plan(n: usize) -> Arc<DctPlan> {
    {
        let mut s = lock_state();
        if let Some(p) = s.plans.get(&n).map(Arc::clone) {
            s.hits += 1;
            return p;
        }
        s.misses += 1;
    }
    // Plan outside the lock: Bluestein planning at large n is slow, and
    // concurrent first requests for *different* sizes should not
    // serialize. Concurrent first requests for the same size may both
    // plan; the first insert wins and the duplicate is dropped.
    let fresh = Arc::new(DctPlan::new(n));
    let mut s = lock_state();
    Arc::clone(s.plans.entry(n).or_insert(fresh))
}

/// Snapshot of the cache counters.
pub fn stats() -> PlanCacheStats {
    let s = lock_state();
    PlanCacheStats {
        entries: s.plans.len(),
        hits: s.hits,
        misses: s.misses,
    }
}

/// Drops every cached plan and resets the counters. Outstanding
/// `Arc<DctPlan>` handles stay valid; subsequent lookups replan.
pub fn clear() {
    let mut s = lock_state();
    s.plans.clear();
    s.hits = 0;
    s.misses = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_length_shares_one_plan() {
        let a = plan(4096);
        let b = plan(4096);
        assert!(Arc::ptr_eq(&a, &b), "same-size plans must be shared");
        assert_eq!(a.len(), 4096);
    }

    #[test]
    fn distinct_lengths_get_distinct_plans() {
        let a = plan(2048);
        let b = plan(1024);
        assert_eq!(a.len(), 2048);
        assert_eq!(b.len(), 1024);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        // Use lengths no other test touches so counts are attributable
        // even with tests running concurrently in one process.
        let before = stats();
        let _ = plan(777);
        let _ = plan(777);
        let _ = plan(777);
        let after = stats();
        assert!(after.misses > before.misses);
        assert!(after.hits >= before.hits + 2);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        // A thread panicking while holding the cache lock poisons it;
        // every entry point must keep working afterwards instead of
        // bricking all future transforms in the process.
        let poison = std::panic::catch_unwind(|| {
            let _guard = lock_state();
            panic!("worker died while planning");
        });
        assert!(poison.is_err());
        let p = plan(444);
        assert_eq!(p.len(), 444);
        let q = plan(444);
        assert!(Arc::ptr_eq(&p, &q), "cache must still dedupe after poison");
        let _ = stats();
    }

    #[test]
    fn concurrent_lookups_converge_to_one_plan() {
        let handles: Vec<_> = (0..8).map(|_| std::thread::spawn(|| plan(555))).collect();
        let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All handles must agree with the cached winner.
        let cached = plan(555);
        for p in &plans {
            // Losers of the insert race may hold a private duplicate;
            // correctness only needs equal length and the cache settling
            // on a single entry.
            assert_eq!(p.len(), cached.len());
        }
        let s = stats();
        assert!(s.entries >= 1);
    }
}
